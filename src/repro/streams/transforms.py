"""Stream transforms: rotation, scaling, translation, composition.

Array-in / array-out helpers used by the experiment harness to build the
rotated variants of Table 1 and to compose multi-phase streams.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "rotate",
    "scale",
    "translate",
    "concatenate",
    "interleave",
    "shuffle",
    "bounded_shuffle",
    "as_tuples",
]


def rotate(points: np.ndarray, angle: float) -> np.ndarray:
    """Rotate every point counter-clockwise by ``angle`` radians."""
    c, s = math.cos(angle), math.sin(angle)
    rot = np.array([[c, -s], [s, c]])
    return points @ rot.T


def scale(points: np.ndarray, sx: float, sy: float | None = None) -> np.ndarray:
    """Scale x by ``sx`` and y by ``sy`` (``sx`` when omitted)."""
    if sy is None:
        sy = sx
    return points * np.array([sx, sy])


def translate(points: np.ndarray, dx: float, dy: float) -> np.ndarray:
    """Translate every point by ``(dx, dy)``."""
    return points + np.array([dx, dy])


def concatenate(*streams: np.ndarray) -> np.ndarray:
    """Play streams back to back (phased workloads)."""
    return np.vstack(streams)


def interleave(*streams: np.ndarray) -> np.ndarray:
    """Round-robin merge of equal-length streams (concurrent sources)."""
    if not streams:
        return np.empty((0, 2))
    n = min(len(s) for s in streams)
    out = np.empty((n * len(streams), 2))
    for i, s in enumerate(streams):
        out[i :: len(streams)] = s[:n]
    return out


def shuffle(points: np.ndarray, seed: int = 0) -> np.ndarray:
    """Random arrival-order permutation (the order is adversarial in the
    model; shuffling checks order-insensitivity of final summaries)."""
    g = np.random.default_rng(seed)
    idx = g.permutation(len(points))
    return points[idx]


def bounded_shuffle(
    ts: np.ndarray, max_delay: float, seed: int = 0
) -> np.ndarray:
    """An arrival-order permutation displaced less than ``max_delay``.

    Given non-decreasing event times ``ts``, returns indices such that
    every record still arrives before the running maximum event time
    gets more than ``max_delay`` ahead of it — i.e. an out-of-order
    arrival order a bounded-lateness engine
    (:class:`~repro.window.WindowConfig` with ``max_delay``) admits
    *without a single late drop*.  The model is each record riding a
    network/queueing delay drawn uniformly from ``[0, max_delay)``:
    sorting by ``ts + delay`` displaces record ``i`` behind a newer
    record ``j`` only when ``ts[j] - ts[i] < max_delay``, so the
    prefix-max lateness test stays strictly within the bound.  The
    standard harness for the shuffled-vs-sorted bit-parity property
    (and for demos that want realistic sensor-feed disorder).
    """
    ts = np.asarray(ts, dtype=np.float64)
    if max_delay <= 0.0 or not math.isfinite(max_delay):
        raise ValueError("max_delay must be positive and finite")
    g = np.random.default_rng(seed)
    return np.argsort(ts + g.uniform(0.0, max_delay, len(ts)), kind="stable")


def as_tuples(points: Iterable) -> Iterator[tuple]:
    """Adapter from array rows to the library's ``(x, y)`` tuples."""
    for row in points:
        yield (float(row[0]), float(row[1]))

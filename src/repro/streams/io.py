"""Stream persistence and replay.

Production plumbing around the generators: save synthetic workloads,
load recorded point streams (CSV or ``.npy``), and replay them with
rate bookkeeping.  Keeps the experiment harness reproducible across
machines without re-deriving streams from seeds.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator, Tuple, Union

import numpy as np

__all__ = ["save_stream", "load_stream", "replay"]

PathLike = Union[str, Path]


def save_stream(points: np.ndarray, path: PathLike) -> Path:
    """Save an ``(n, 2)`` array as ``.npy`` or ``.csv`` (by extension).

    Raises:
        ValueError: for a wrong-shaped array or unknown extension.
    """
    arr = np.asarray(points, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected an (n, 2) array, got shape {arr.shape}")
    path = Path(path)
    if path.suffix == ".npy":
        np.save(path, arr)
    elif path.suffix == ".csv":
        with open(path, "w", newline="", encoding="utf-8") as f:
            writer = csv.writer(f)
            writer.writerow(["x", "y"])
            writer.writerows(arr.tolist())
    else:
        raise ValueError(f"unknown stream format {path.suffix!r} (.npy or .csv)")
    return path


def load_stream(path: PathLike) -> np.ndarray:
    """Load a point stream saved by :func:`save_stream`.

    CSV files may or may not carry the ``x,y`` header row.

    Raises:
        ValueError: on malformed content or unknown extension.
        FileNotFoundError: when the file does not exist.
    """
    path = Path(path)
    if path.suffix == ".npy":
        arr = np.load(path)
    elif path.suffix == ".csv":
        rows = []
        with open(path, newline="", encoding="utf-8") as f:
            for row in csv.reader(f):
                if not row:
                    continue
                try:
                    rows.append((float(row[0]), float(row[1])))
                except ValueError:
                    # Header row; anything else malformed raises below.
                    if rows:
                        raise
                    continue
        arr = np.asarray(rows, dtype=float)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
    else:
        raise ValueError(f"unknown stream format {path.suffix!r} (.npy or .csv)")
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"{path} does not contain an (n, 2) point stream")
    return arr


def replay(
    points: np.ndarray, chunk: int = 1
) -> Iterator[Tuple[int, Tuple[float, float]]]:
    """Replay a stored stream as ``(index, (x, y))`` pairs.

    ``chunk`` > 1 yields only every chunk-th point — cheap downsampling
    for quick-look runs on large recordings.
    """
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    for i in range(0, len(points), chunk):
        row = points[i]
        yield i, (float(row[0]), float(row[1]))

"""Stream and summary persistence.

Production plumbing around the generators and summaries: save synthetic
workloads, load recorded point streams (CSV or ``.npy``), replay them
with rate bookkeeping, and — new with the multi-stream engine —
serialise hull summaries to a JSON snapshot format so long-running
services can checkpoint and restore thousands of keyed summaries.

Snapshot format (version 1)::

    {"format": "repro.summary", "version": 1,
     "class": "AdaptiveHull", "config": {...constructor kwargs...},
     "state": {...scheme-specific state_dict...}}

The core schemes (:class:`~repro.core.uniform_hull.UniformHull`,
:class:`~repro.core.adaptive_hull.AdaptiveHull`,
:class:`~repro.core.fixed_size.FixedSizeAdaptiveHull`) serialise their
full internal state field-for-field — extrema, supports, refinement
forest, operation counters — so a restored summary has the identical
hull and keeps streaming under the identical policy.  Baselines fall
back to replaying their samples (exact for schemes whose state is a
function of their samples, such as the exact hull).  Values may include
IEEE infinities (pre-first-point supports); Python's ``json`` module
round-trips them natively.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterator, Tuple, Union

import numpy as np

__all__ = [
    "save_stream",
    "load_stream",
    "replay",
    "scheme_registry",
    "summary_state",
    "summary_from_state",
    "save_summary",
    "load_summary",
]

PathLike = Union[str, Path]

SUMMARY_FORMAT = "repro.summary"
SUMMARY_FORMAT_VERSION = 1


def save_stream(points: np.ndarray, path: PathLike) -> Path:
    """Save an ``(n, 2)`` array as ``.npy`` or ``.csv`` (by extension).

    Raises:
        ValueError: for a wrong-shaped array or unknown extension.
    """
    arr = np.asarray(points, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected an (n, 2) array, got shape {arr.shape}")
    path = Path(path)
    if path.suffix == ".npy":
        np.save(path, arr)
    elif path.suffix == ".csv":
        with open(path, "w", newline="", encoding="utf-8") as f:
            writer = csv.writer(f)
            writer.writerow(["x", "y"])
            writer.writerows(arr.tolist())
    else:
        raise ValueError(f"unknown stream format {path.suffix!r} (.npy or .csv)")
    return path


def load_stream(path: PathLike) -> np.ndarray:
    """Load a point stream saved by :func:`save_stream`.

    CSV files may or may not carry the ``x,y`` header row.

    Raises:
        ValueError: on malformed content or unknown extension.
        FileNotFoundError: when the file does not exist.
    """
    path = Path(path)
    if path.suffix == ".npy":
        arr = np.load(path)
    elif path.suffix == ".csv":
        rows = []
        with open(path, newline="", encoding="utf-8") as f:
            for row in csv.reader(f):
                if not row:
                    continue
                try:
                    rows.append((float(row[0]), float(row[1])))
                except ValueError:
                    # Header row; anything else malformed raises below.
                    if rows:
                        raise
                    continue
        arr = np.asarray(rows, dtype=float)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
    else:
        raise ValueError(f"unknown stream format {path.suffix!r} (.npy or .csv)")
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"{path} does not contain an (n, 2) point stream")
    return arr


def scheme_registry() -> Dict[str, type]:
    """Summary classes addressable by name (lazy import: io must stay
    importable without dragging the whole algorithm stack in).

    Shared by snapshot restore and the shard layer's picklable summary
    specs — anywhere a scheme must travel as data instead of a factory
    closure."""
    from ..baselines import (
        DudleyKernelHull,
        ExactHull,
        PartiallyAdaptiveHull,
        RadialHistogramHull,
        RandomSampleHull,
    )
    from ..core import AdaptiveHull, FixedSizeAdaptiveHull, UniformHull
    from ..window import WindowedHullSummary

    return {
        cls.__name__: cls
        for cls in (
            UniformHull,
            AdaptiveHull,
            FixedSizeAdaptiveHull,
            ExactHull,
            DudleyKernelHull,
            PartiallyAdaptiveHull,
            RadialHistogramHull,
            RandomSampleHull,
            WindowedHullSummary,
        )
    }


def summary_state(summary) -> Dict:
    """Serialise a hull summary to a JSON-compatible snapshot dict."""
    return {
        "format": SUMMARY_FORMAT,
        "version": SUMMARY_FORMAT_VERSION,
        "class": type(summary).__name__,
        "config": summary.get_config(),
        "state": summary.state_dict(),
    }


def summary_from_state(snapshot: Dict, factory=None):
    """Reconstruct a summary from a :func:`summary_state` snapshot.

    ``factory`` (a zero-argument callable) takes precedence when given:
    the engine restores through the same factory that created its
    summaries, and the snapshot's class name is used as a consistency
    check.  Without a factory, the class is looked up by name in the
    scheme registry and constructed from the stored config.

    Raises:
        ValueError: on unknown formats, unknown classes, or a factory
            whose product does not match the snapshot's class.
    """
    if snapshot.get("format") != SUMMARY_FORMAT:
        raise ValueError(f"not a summary snapshot: {snapshot.get('format')!r}")
    if snapshot.get("version") != SUMMARY_FORMAT_VERSION:
        raise ValueError(f"unsupported snapshot version {snapshot.get('version')!r}")
    name = snapshot["class"]
    if factory is not None:
        summary = factory()
        if type(summary).__name__ != name:
            raise ValueError(
                f"snapshot holds a {name}, factory produced "
                f"{type(summary).__name__}"
            )
        config = summary.get_config()
        if config != snapshot["config"]:
            raise ValueError(
                f"snapshot {name} config {snapshot['config']!r} does not "
                f"match factory config {config!r}; the restored summary "
                "would stream under a different policy"
            )
    else:
        registry = scheme_registry()
        if name not in registry:
            raise ValueError(f"unknown summary class {name!r}")
        summary = registry[name](**snapshot["config"])
    summary.load_state(snapshot["state"])
    return summary


def save_summary(summary, path: PathLike) -> Path:
    """Write a summary snapshot as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(summary_state(summary)), encoding="utf-8")
    return path


def load_summary(path: PathLike, factory=None):
    """Load a summary snapshot written by :func:`save_summary`."""
    snapshot = json.loads(Path(path).read_text(encoding="utf-8"))
    return summary_from_state(snapshot, factory=factory)


def replay(
    points: np.ndarray, chunk: int = 1
) -> Iterator[Tuple[int, Tuple[float, float]]]:
    """Replay a stored stream as ``(index, (x, y))`` pairs.

    ``chunk`` > 1 yields only every chunk-th point — cheap downsampling
    for quick-look runs on large recordings.
    """
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    for i in range(0, len(points), chunk):
        row = points[i]
        yield i, (float(row[0]), float(row[1]))

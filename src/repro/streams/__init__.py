"""Synthetic stream generators and transforms (Section 7 workloads)."""

from .generators import (
    changing_ellipse_stream,
    circle_points,
    clusters_stream,
    convex_position_stream,
    disk_stream,
    drifting_clusters_stream,
    ellipse_stream,
    gaussian_stream,
    spiral_stream,
    square_stream,
)
from .io import load_stream, replay, save_stream
from .transforms import (
    as_tuples,
    bounded_shuffle,
    concatenate,
    interleave,
    rotate,
    scale,
    shuffle,
    translate,
)

__all__ = [
    "disk_stream", "square_stream", "ellipse_stream", "circle_points",
    "gaussian_stream", "clusters_stream", "drifting_clusters_stream",
    "changing_ellipse_stream", "spiral_stream", "convex_position_stream",
    "rotate", "scale", "translate", "concatenate", "interleave",
    "shuffle", "bounded_shuffle", "as_tuples",
    "save_stream", "load_stream", "replay",
]

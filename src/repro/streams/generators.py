"""Synthetic point-stream generators (Section 7 workloads and more).

All generators return NumPy arrays of shape ``(n, 2)`` and are seeded,
so every experiment in the benchmark harness is reproducible.  The
paper's evaluation draws points uniformly at random from a disk, a
square, and an ellipse of aspect ratio 16 (optionally rotated by
fractions of ``theta0``), plus a two-phase "changing ellipse" stream;
we add the circle construction of the lower bound (Theorem 5.5), a
Gaussian cloud, a multi-cluster mixture, and an adversarial outward
spiral that maximises hull churn.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

__all__ = [
    "disk_stream",
    "square_stream",
    "ellipse_stream",
    "circle_points",
    "gaussian_stream",
    "clusters_stream",
    "drifting_clusters_stream",
    "changing_ellipse_stream",
    "spiral_stream",
    "convex_position_stream",
]


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def disk_stream(
    n: int, radius: float = 1.0, seed: int = 0
) -> np.ndarray:
    """``n`` points uniform in a disk of the given radius.

    The rotationally symmetric case: uniform sampling directions are
    ideally matched, so this is the adaptive scheme's *worst* relative
    setting (first row of Table 1).
    """
    g = _rng(seed)
    t = g.uniform(0.0, 2.0 * math.pi, n)
    r = radius * np.sqrt(g.uniform(0.0, 1.0, n))
    return np.column_stack((r * np.cos(t), r * np.sin(t)))


def square_stream(
    n: int, half_side: float = 1.0, rotation: float = 0.0, seed: int = 0
) -> np.ndarray:
    """``n`` points uniform in a square of side ``2 * half_side``,
    rotated by ``rotation`` radians about the origin (Table 1, rows 2-5:
    rotations of 0, theta0/4, theta0/3, theta0/2)."""
    g = _rng(seed)
    pts = g.uniform(-half_side, half_side, (n, 2))
    return _rotate(pts, rotation)


def ellipse_stream(
    n: int,
    a: float = 16.0,
    b: float = 1.0,
    rotation: float = 0.0,
    seed: int = 0,
) -> np.ndarray:
    """``n`` points uniform in an ellipse with semi-axes ``a`` (x) and
    ``b`` (y), rotated by ``rotation`` radians.

    Aspect ratio 16 with small rotations reproduces the paper's hardest
    static workload (Table 1, third section; Fig. 10).
    """
    g = _rng(seed)
    t = g.uniform(0.0, 2.0 * math.pi, n)
    r = np.sqrt(g.uniform(0.0, 1.0, n))
    pts = np.column_stack((a * r * np.cos(t), b * r * np.sin(t)))
    return _rotate(pts, rotation)


def changing_ellipse_stream(
    n_each: int,
    aspect: float = 16.0,
    tilt: float = 0.0,
    seed: int = 0,
) -> np.ndarray:
    """The paper's distribution-shift stream (Table 1, fourth section).

    ``n_each`` points from a near-vertical aspect-``aspect`` ellipse
    (semi-axes ``(1, aspect)``), followed by ``n_each`` points from a
    near-horizontal ellipse of the same aspect ratio (semi-axes
    ``(1.1 * aspect**2, 1.1 * aspect)``) that completely contains the
    first (both semi-axes dominate, so the vertical ellipse lies inside).
    ``tilt`` rotates both phases (the theta0 fractions of the
    experiment).
    """
    first = ellipse_stream(n_each, a=1.0, b=aspect, rotation=tilt, seed=seed)
    second = ellipse_stream(
        n_each,
        a=1.1 * aspect * aspect,
        b=1.1 * aspect,
        rotation=tilt,
        seed=seed + 1,
    )
    return np.vstack((first, second))


def circle_points(m: int, radius: float = 1.0, phase: float = 0.0) -> np.ndarray:
    """``m`` points evenly spaced on a circle — the lower-bound
    construction of Theorem 5.5 (any r-point subsample of 2r such points
    errs by Omega(D / r^2))."""
    t = phase + 2.0 * math.pi * np.arange(m) / m
    return np.column_stack((radius * np.cos(t), radius * np.sin(t)))


def gaussian_stream(
    n: int, sigma_x: float = 1.0, sigma_y: float = 1.0, seed: int = 0
) -> np.ndarray:
    """``n`` points from an axis-aligned Gaussian (unbounded support:
    the hull keeps growing, exercising continuous refinement)."""
    g = _rng(seed)
    return np.column_stack(
        (g.normal(0.0, sigma_x, n), g.normal(0.0, sigma_y, n))
    )


def clusters_stream(
    n: int,
    centers: Sequence[Sequence[float]] = ((0.0, 0.0), (10.0, 0.0), (5.0, 8.0)),
    sigma: float = 0.5,
    seed: int = 0,
) -> np.ndarray:
    """``n`` points from a mixture of Gaussian clusters (Section 8's
    motivating case for the ClusterHull extension)."""
    g = _rng(seed)
    centers_arr = np.asarray(centers, dtype=float)
    idx = g.integers(0, len(centers_arr), n)
    noise = g.normal(0.0, sigma, (n, 2))
    return centers_arr[idx] + noise


def drifting_clusters_stream(
    n: int,
    n_clusters: int = 3,
    drift: float = 0.05,
    sigma: float = 0.5,
    spread: float = 10.0,
    seed: int = 0,
) -> np.ndarray:
    """``n`` points from Gaussian clusters whose centers random-walk.

    Each point is drawn around one of ``n_clusters`` centers (chosen
    uniformly); after every point each center takes an independent
    Gaussian step of scale ``drift``.  Over the stream the occupied
    region migrates, so early extremes become stale — the motivating
    workload for the sliding-window summaries: an all-time hull keeps
    growing while the hull of the *recent* window tracks the clusters'
    current position.  Initial centers are uniform in
    ``[-spread, spread]^2``.
    """
    if n_clusters < 1:
        raise ValueError("drifting_clusters_stream needs n_clusters >= 1")
    g = _rng(seed)
    centers = g.uniform(-spread, spread, (n_clusters, 2))
    idx = g.integers(0, n_clusters, n)
    noise = g.normal(0.0, sigma, (n, 2))
    # Center trajectories: cumulative random walks, sampled at the
    # point's arrival index — vectorised over the whole stream.
    steps = g.normal(0.0, drift, (n, n_clusters, 2))
    walks = centers[None, :, :] + np.cumsum(steps, axis=0)
    return walks[np.arange(n), idx] + noise


def spiral_stream(
    n: int, turns: float = 4.0, growth: float = 1.0, seed: int = 0
) -> np.ndarray:
    """Adversarial outward spiral: every point is outside the hull of
    its predecessors, maximising summary churn (worst-case processing)."""
    g = _rng(seed)
    t = np.linspace(0.0, turns * 2.0 * math.pi, n) + g.uniform(0, 1e-9, n)
    r = 1.0 + growth * t
    return np.column_stack((r * np.cos(t), r * np.sin(t)))


def convex_position_stream(n: int, seed: int = 0) -> np.ndarray:
    """``n`` points in convex position (on an ellipse boundary), in
    random arrival order: the true hull has n vertices, the summary must
    drop all but O(r)."""
    g = _rng(seed)
    t = g.uniform(0.0, 2.0 * math.pi, n)
    return np.column_stack((3.0 * np.cos(t), np.sin(t)))


def _rotate(pts: np.ndarray, angle: float) -> np.ndarray:
    if angle == 0.0:
        return pts
    c, s = math.cos(angle), math.sin(angle)
    rot = np.array([[c, -s], [s, c]])
    return pts @ rot.T

"""Container substrates: skip list, threshold queues, circular map."""

from .skiplist import SkipList
from .bucket_queue import (
    HeapThresholdQueue,
    Pow2BucketQueue,
    make_threshold_queue,
)
from .circular_map import CircularMap

__all__ = [
    "SkipList",
    "HeapThresholdQueue",
    "Pow2BucketQueue",
    "make_threshold_queue",
    "CircularMap",
]

"""A sorted, searchable skip list.

The paper (Section 3.1) stores hull vertices in "a searchable,
concatenable list structure, implemented as a balanced binary tree, a
skip list, or (concretely) as a C++ STL set".  This module is our
substitute for the STL set: a deterministic-seeded skip list with
O(log n) expected search, insert, and delete, plus the neighbour
(predecessor/successor) queries the hull maintenance needs.

Keys must be totally ordered; values are arbitrary.  Duplicate keys are
rejected (it is a map, not a multimap).
"""

from __future__ import annotations

import random
from typing import Any, Iterator, List, Optional, Tuple

__all__ = ["SkipList"]

_MAX_LEVEL = 32
_P = 0.5


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Any, value: Any, level: int):
        self.key = key
        self.value = value
        self.forward: List[Optional["_Node"]] = [None] * level


class SkipList:
    """Sorted map with O(log n) expected-time operations.

    Args:
        seed: seed for the level-generation RNG, making structure (and
            therefore performance) reproducible across runs.
    """

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self._head = _Node(None, None, _MAX_LEVEL)
        self._level = 1
        self._size = 0

    # -- size / iteration ----------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[Any]:
        node = self._head.forward[0]
        while node is not None:
            yield node.key
            node = node.forward[0]

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Iterate ``(key, value)`` pairs in ascending key order."""
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def keys(self) -> Iterator[Any]:
        """Iterate keys in ascending order."""
        return iter(self)

    def values(self) -> Iterator[Any]:
        """Iterate values in ascending key order."""
        for _, v in self.items():
            yield v

    # -- internals -------------------------------------------------------

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < _P:
            level += 1
        return level

    def _find_update(self, key: Any) -> List[_Node]:
        """Per-level predecessors of ``key`` (the splice points)."""
        update = [self._head] * _MAX_LEVEL
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            nxt = node.forward[lvl]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[lvl]
            update[lvl] = node
        return update

    # -- map operations ----------------------------------------------------

    def insert(self, key: Any, value: Any = None) -> None:
        """Insert ``key`` with ``value``.

        Raises:
            KeyError: if the key is already present (use
                :meth:`replace` to overwrite).
        """
        update = self._find_update(key)
        nxt = update[0].forward[0]
        if nxt is not None and nxt.key == key:
            raise KeyError(f"duplicate key {key!r}")
        level = self._random_level()
        if level > self._level:
            self._level = level
        node = _Node(key, value, level)
        for lvl in range(level):
            node.forward[lvl] = update[lvl].forward[lvl]
            update[lvl].forward[lvl] = node
        self._size += 1

    def replace(self, key: Any, value: Any) -> None:
        """Insert or overwrite the value at ``key``."""
        update = self._find_update(key)
        nxt = update[0].forward[0]
        if nxt is not None and nxt.key == key:
            nxt.value = value
        else:
            self.insert(key, value)

    def delete(self, key: Any) -> Any:
        """Remove ``key`` and return its value.

        Raises:
            KeyError: if the key is absent.
        """
        update = self._find_update(key)
        node = update[0].forward[0]
        if node is None or node.key != key:
            raise KeyError(key)
        for lvl in range(len(node.forward)):
            if update[lvl].forward[lvl] is node:
                update[lvl].forward[lvl] = node.forward[lvl]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._size -= 1
        return node.value

    def get(self, key: Any, default: Any = None) -> Any:
        """Value at ``key``, or ``default`` when absent."""
        node = self._find_update(key)[0].forward[0]
        if node is not None and node.key == key:
            return node.value
        return default

    def __contains__(self, key: Any) -> bool:
        node = self._find_update(key)[0].forward[0]
        return node is not None and node.key == key

    # -- order queries -----------------------------------------------------

    def min(self) -> Tuple[Any, Any]:
        """Smallest ``(key, value)``; raises KeyError when empty."""
        node = self._head.forward[0]
        if node is None:
            raise KeyError("min of empty SkipList")
        return node.key, node.value

    def max(self) -> Tuple[Any, Any]:
        """Largest ``(key, value)``; raises KeyError when empty."""
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            while node.forward[lvl] is not None:
                node = node.forward[lvl]
        if node is self._head:
            raise KeyError("max of empty SkipList")
        return node.key, node.value

    def predecessor(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Largest ``(key, value)`` with key strictly less than ``key``."""
        node = self._find_update(key)[0]
        if node is self._head:
            return None
        return node.key, node.value

    def successor(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Smallest ``(key, value)`` with key strictly greater than ``key``."""
        node = self._find_update(key)[0].forward[0]
        if node is not None and node.key == key:
            node = node.forward[0]
        if node is None:
            return None
        return node.key, node.value

    def floor(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Largest ``(key, value)`` with key less than or equal to ``key``."""
        update = self._find_update(key)
        nxt = update[0].forward[0]
        if nxt is not None and nxt.key == key:
            return nxt.key, nxt.value
        if update[0] is self._head:
            return None
        return update[0].key, update[0].value

    def ceiling(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Smallest ``(key, value)`` with key greater than or equal to
        ``key``."""
        nxt = self._find_update(key)[0].forward[0]
        if nxt is None:
            return None
        return nxt.key, nxt.value

    def range(self, lo: Any, hi: Any) -> Iterator[Tuple[Any, Any]]:
        """Iterate ``(key, value)`` with ``lo <= key <= hi`` ascending."""
        node = self._find_update(lo)[0].forward[0]
        while node is not None and node.key <= hi:
            yield node.key, node.value
            node = node.forward[0]

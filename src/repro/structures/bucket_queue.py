"""Unrefinement threshold queues.

Section 5.3 of the paper keeps each refined (internal) tree node in a
priority queue indexed by the perimeter threshold at which the node
must be unrefined.  Two implementations are provided:

* :class:`HeapThresholdQueue` — an exact binary heap;
  ``PriQ(r) = O(log r)`` per operation (the "standard priority queue"
  of the paper's analysis).
* :class:`Pow2BucketQueue` — the Matias power-of-two bucket array:
  thresholds are rounded down to ``2**floor(log2 t)`` so that a node may
  be unrefined slightly early, buying ``PriQ(r) = O(1)`` amortized.
  The paper shows the approximation quality is asymptotically unchanged.

Both queues are *monotone*: the driving value (the uniformly sampled
hull's perimeter P) only grows, so popping is one-directional.  Entries
are handled lazily — a popped entry may be stale (its node was deleted
or its threshold recomputed); the caller revalidates.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Dict, Iterator, List, Tuple

__all__ = ["HeapThresholdQueue", "Pow2BucketQueue", "make_threshold_queue"]


class HeapThresholdQueue:
    """Exact min-heap of (threshold, item); O(log n) push/pop."""

    def __init__(self):
        self._heap: List[Tuple[float, int, Any]] = []
        self._counter = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, threshold: float, item: Any) -> None:
        """Queue ``item`` to surface once the driver reaches ``threshold``."""
        self._counter += 1
        heapq.heappush(self._heap, (threshold, self._counter, item))

    def pop_due(self, driver: float) -> Iterator[Any]:
        """Yield every item whose threshold is <= ``driver``."""
        while self._heap and self._heap[0][0] <= driver:
            yield heapq.heappop(self._heap)[2]

    def drain_due(self, driver: float) -> List[Any]:
        """All due items as a list, in the exact :meth:`pop_due` order
        (threshold order, insertion-counter tiebreak) — one bulk call
        for the hot unrefinement sweep instead of a generator round trip
        per item."""
        heap = self._heap
        out: List[Any] = []
        while heap and heap[0][0] <= driver:
            out.append(heapq.heappop(heap)[2])
        return out

    def effective_threshold(self, threshold: float) -> float:
        """The threshold actually used (exact for the heap queue)."""
        return threshold


class Pow2BucketQueue:
    """Bucketed queue keyed by ``floor(log2 threshold)``; O(1) amortized.

    An item with threshold ``t`` is stored in bucket ``floor(log2 t)``
    and surfaces as soon as the driver reaches ``2**floor(log2 t)`` —
    i.e. possibly a factor <2 early, never late.  That is exactly the
    paper's Matias trick (Section 5.3): the priority queue becomes an
    array of ~log2(r) live buckets and each operation is O(1).
    """

    def __init__(self):
        self._buckets: Dict[int, List[Any]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @staticmethod
    def _bucket_of(threshold: float) -> int:
        if threshold <= 0.0 or not math.isfinite(threshold):
            # Non-positive thresholds are due immediately; park them in
            # a sentinel bucket below everything.
            return -(2**30) if threshold <= 0.0 else 2**30
        return math.floor(math.log2(threshold))

    def push(self, threshold: float, item: Any) -> None:
        """Queue ``item`` under the power-of-two rounding of ``threshold``."""
        b = self._bucket_of(threshold)
        self._buckets.setdefault(b, []).append(item)
        self._size += 1

    def pop_due(self, driver: float) -> Iterator[Any]:
        """Yield items whose rounded threshold is <= ``driver``.

        An item surfaces when ``driver >= 2**bucket`` — i.e. when the
        driver has reached the power of two at or below the item's true
        threshold (early by at most a factor of 2).
        """
        if driver <= 0.0:
            return
        cut = math.floor(math.log2(driver)) if driver >= 1.0 else (
            math.floor(math.log2(driver))
        )
        due = [b for b in self._buckets if b <= cut]
        for b in sorted(due):
            items = self._buckets.pop(b)
            self._size -= len(items)
            yield from items

    def drain_due(self, driver: float) -> List[Any]:
        """All due items as a list, in the exact :meth:`pop_due` order
        (bucket order, insertion order within a bucket)."""
        if driver <= 0.0:
            return []
        cut = math.floor(math.log2(driver))
        due = [b for b in self._buckets if b <= cut]
        out: List[Any] = []
        for b in sorted(due):
            items = self._buckets.pop(b)
            self._size -= len(items)
            out.extend(items)
        return out

    def effective_threshold(self, threshold: float) -> float:
        """The power-of-two value at which the item will actually surface."""
        if threshold <= 0.0:
            return 0.0
        return 2.0 ** math.floor(math.log2(threshold))


def make_threshold_queue(mode: str):
    """Factory: ``mode`` is ``"exact"`` (heap) or ``"pow2"`` (buckets)."""
    if mode == "exact":
        return HeapThresholdQueue()
    if mode == "pow2":
        return Pow2BucketQueue()
    raise ValueError(f"unknown threshold queue mode {mode!r}")

"""Circular ordered map over directions.

Hull summaries index their sample vertices by the direction in which
each vertex is extreme.  Directions live on a circle, so ordinary
floor/ceiling queries must wrap around; this adapter provides the
circular variants on top of :class:`repro.structures.skiplist.SkipList`
while keeping the O(log n) bounds.

Keys may be any totally ordered angular type — the library uses both
plain floats in ``[0, 2*pi)`` and
:class:`repro.geometry.directions.DyadicDirection`.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

from .skiplist import SkipList

__all__ = ["CircularMap"]


class CircularMap:
    """Sorted circular map with wrap-around neighbour queries."""

    def __init__(self, seed: int = 0):
        self._list = SkipList(seed=seed)

    def __len__(self) -> int:
        return len(self._list)

    def __contains__(self, key: Any) -> bool:
        return key in self._list

    def __iter__(self) -> Iterator[Any]:
        return iter(self._list)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All ``(key, value)`` pairs in ascending key order."""
        return self._list.items()

    def insert(self, key: Any, value: Any = None) -> None:
        """Insert a new key (KeyError on duplicates)."""
        self._list.insert(key, value)

    def replace(self, key: Any, value: Any) -> None:
        """Insert or overwrite."""
        self._list.replace(key, value)

    def delete(self, key: Any) -> Any:
        """Remove a key, returning its value (KeyError when absent)."""
        return self._list.delete(key)

    def get(self, key: Any, default: Any = None) -> Any:
        """Value at ``key`` or ``default``."""
        return self._list.get(key, default)

    # -- circular order queries ------------------------------------------

    def floor_circular(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Largest entry <= key, wrapping to the global max below the min.

        Returns None only when the map is empty.
        """
        if not self._list:
            return None
        hit = self._list.floor(key)
        if hit is not None:
            return hit
        return self._list.max()

    def ceiling_circular(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Smallest entry >= key, wrapping to the global min above the max."""
        if not self._list:
            return None
        hit = self._list.ceiling(key)
        if hit is not None:
            return hit
        return self._list.min()

    def successor_circular(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Next entry strictly after ``key`` in circular order."""
        if not self._list:
            return None
        hit = self._list.successor(key)
        if hit is not None:
            return hit
        return self._list.min()

    def predecessor_circular(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Previous entry strictly before ``key`` in circular order."""
        if not self._list:
            return None
        hit = self._list.predecessor(key)
        if hit is not None:
            return hit
        return self._list.max()

    def neighbours(self, key: Any) -> Tuple[Tuple[Any, Any], Tuple[Any, Any]]:
        """The entries bracketing ``key``: (floor-or-wrap, ceiling-or-wrap).

        Raises:
            KeyError: when the map is empty.
        """
        lo = self.floor_circular(key)
        hi = self.ceiling_circular(key)
        if lo is None or hi is None:
            raise KeyError("neighbours of a key in an empty CircularMap")
        return lo, hi

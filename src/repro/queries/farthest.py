"""Farthest-neighbor and enclosing-circle queries (Section 6's "many
other natural geometric quantities").

The farthest point of a convex region from any query point is a vertex,
so the farthest neighbor query scans the O(r) summary vertices.  The
smallest enclosing circle of the stream is approximated by Welzl's
algorithm on the summary vertices (expected O(r)); its radius is
underestimated by at most the summary's Hausdorff error O(D/r^2).
"""

from __future__ import annotations

from typing import Tuple

from ..core.base import HullSummary
from ..geometry.calipers import farthest_vertex_from
from ..geometry.circle import Circle, smallest_enclosing_circle
from ..geometry.vec import Point

__all__ = ["farthest_neighbor", "enclosing_circle"]


def farthest_neighbor(summary: HullSummary, p: Point) -> Tuple[float, Point]:
    """Approximate farthest stream point from ``p``: (distance, witness).

    The witness is a stored sample (a true input point), so the distance
    is a lower bound on the true farthest distance, within the summary's
    error of it.
    """
    return farthest_vertex_from(summary.hull(), p)


def enclosing_circle(summary: HullSummary) -> Circle:
    """Approximate smallest enclosing circle ``(center, radius)``.

    Computed exactly on the sample hull; the true stream may extend up
    to the summary's Hausdorff error beyond the reported circle.
    """
    hull = summary.hull()
    if not hull:
        raise ValueError("enclosing circle of an empty summary is undefined")
    return smallest_enclosing_circle(hull)

"""Multi-stream trackers (Section 6: separation, containment, overlap).

Each tracker owns one hull summary per stream and exposes the paper's
standing queries:

* :class:`SeparationTracker` — minimum distance between the hulls of two
  streams; linear-separability with a separating-line certificate; a
  non-separation certificate (a point in both hulls) when they meet.
* :class:`ContainmentTracker` — report when all points of stream A are
  surrounded by (the hull of) stream B, within the summary error.
* :class:`OverlapTracker` — quantify the overlap of two streams' spatial
  extents (intersection polygon / area of the approximate hulls).

Trackers are agnostic to the summary scheme: pass a factory (for
example ``lambda: AdaptiveHull(32)``) and feed points per stream.  All
answers carry the summaries' one-sided error: approximate hulls lie
inside the true hulls, so reported distances over-estimate true
distances by at most the summed Hausdorff errors, and "contained" means
contained up to O(D/r^2).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Tuple

from ..core.base import HullSummary
from ..geometry.distance import (
    linearly_separable,
    point_polygon_distance,
    polygon_distance,
    separating_line,
)
from ..geometry.intersection import intersect_convex, overlap_area
from ..geometry.polygon import contains_point
from ..geometry.vec import Point, Vector

__all__ = ["MultiStreamTracker", "SeparationTracker", "ContainmentTracker", "OverlapTracker"]

SummaryFactory = Callable[[], HullSummary]


class MultiStreamTracker:
    """Base: one summary per named stream, created on first use."""

    def __init__(self, factory: SummaryFactory):
        self._factory = factory
        self._streams: Dict[Hashable, HullSummary] = {}

    def _summary_for(self, stream: Hashable) -> HullSummary:
        summary = self._streams.get(stream)
        if summary is None:
            summary = self._factory()
            self._streams[stream] = summary
        return summary

    def insert(self, stream: Hashable, p: Point) -> bool:
        """Feed one point into the named stream's summary."""
        return self._summary_for(stream).insert(p)

    def insert_many(self, stream: Hashable, points) -> int:
        """Batch-feed a stream (vectorised when the scheme supports it)."""
        return self._summary_for(stream).insert_many(points)

    def bind(self, stream: Hashable, summary: HullSummary) -> HullSummary:
        """Register an externally owned summary under a stream name.

        The wiring used by :meth:`repro.engine.StreamEngine.attach_tracker`:
        the tracker's standing queries then read the live summary the
        engine keeps fed, instead of one the tracker owns.  Replaces
        any summary previously registered for the stream.
        """
        self._streams[stream] = summary
        return summary

    def summary(self, stream: Hashable) -> HullSummary:
        """The summary for a stream (KeyError if never fed)."""
        return self._streams[stream]

    def hull(self, stream: Hashable) -> List[Point]:
        """Approximate hull of a stream ([] if never fed)."""
        summary = self._streams.get(stream)
        return summary.hull() if summary is not None else []

    def streams(self) -> List[Hashable]:
        """Names of all streams seen so far."""
        return list(self._streams)


class SeparationTracker(MultiStreamTracker):
    """Track the minimum distance / linear separability of two streams."""

    def distance(self, a: Hashable, b: Hashable) -> float:
        """Approximate minimum distance between the two streams' hulls.

        Over-estimates the true hull distance by at most the two
        summaries' combined error; 0 when the approximate hulls meet.
        """
        pa, pb = self.hull(a), self.hull(b)
        if not pa or not pb:
            raise ValueError("both streams need data before querying")
        return polygon_distance(pa, pb)[0]

    def separable(self, a: Hashable, b: Hashable) -> bool:
        """Are the approximate hulls still linearly separable?"""
        pa, pb = self.hull(a), self.hull(b)
        if not pa or not pb:
            return True
        return linearly_separable(pa, pb)

    def certificate(
        self, a: Hashable, b: Hashable
    ) -> Optional[Tuple[Point, Vector]]:
        """A separating line ``(point, direction)`` or None when the
        hulls intersect (certificate of non-separation is available via
        :meth:`witness_overlap_point`)."""
        pa, pb = self.hull(a), self.hull(b)
        if not pa or not pb:
            return None
        return separating_line(pa, pb)

    def witness_overlap_point(
        self, a: Hashable, b: Hashable
    ) -> Optional[Point]:
        """A point lying in both approximate hulls (the paper's
        certificate of non-separation), or None while separable."""
        inter = intersect_convex(self.hull(a), self.hull(b))
        return inter[0] if inter else None


class ContainmentTracker(MultiStreamTracker):
    """Track whether stream ``inner`` is surrounded by stream ``outer``."""

    def contained(self, inner: Hashable, outer: Hashable) -> bool:
        """True when every sample of ``inner`` lies in ``outer``'s
        approximate hull.  One-sided error: a True answer can be wrong
        by at most ``outer``'s uncertainty O(D/r^2) near its boundary;
        use ``margin`` via :meth:`containment_margin` for a quantified
        answer."""
        inner_hull = self.hull(inner)
        outer_hull = self.hull(outer)
        if not inner_hull or not outer_hull:
            return False
        return all(contains_point(outer_hull, v) for v in inner_hull)

    def containment_margin(self, inner: Hashable, outer: Hashable) -> float:
        """Signed margin: positive = deepest containment slack (distance
        from the most exposed inner vertex to outer's boundary, inward),
        negative = how far the worst inner vertex pokes outside."""
        inner_hull = self.hull(inner)
        outer_hull = self.hull(outer)
        if not inner_hull or not outer_hull:
            raise ValueError("both streams need data before querying")
        worst = float("inf")
        for v in inner_hull:
            if contains_point(outer_hull, v):
                # Inside: slack is the distance to the boundary (the
                # region distance would be 0).
                worst = min(worst, _boundary_distance(outer_hull, v))
            else:
                worst = min(worst, -point_polygon_distance(outer_hull, v))
        return worst


def _boundary_distance(poly: List[Point], p: Point) -> float:
    """Distance from ``p`` to the polygon boundary (not the region)."""
    from ..geometry.segment import point_segment_distance
    from ..geometry.polygon import edges

    n = len(poly)
    if n == 1:
        from ..geometry.vec import dist

        return dist(p, poly[0])
    return min(point_segment_distance(p, a, b) for a, b in edges(poly))


class OverlapTracker(MultiStreamTracker):
    """Quantify the spatial overlap of two streams' extents."""

    def overlap_polygon(self, a: Hashable, b: Hashable) -> List[Point]:
        """Intersection of the two approximate hulls (possibly empty)."""
        return intersect_convex(self.hull(a), self.hull(b))

    def overlap_area(self, a: Hashable, b: Hashable) -> float:
        """Area of the approximate overlap region."""
        return overlap_area(self.hull(a), self.hull(b))

    def jaccard(self, a: Hashable, b: Hashable) -> float:
        """Overlap area over union area (0 when disjoint, 1 when equal).

        A scale-free overlap score convenient for monitoring dashboards.
        """
        from ..geometry.polygon import area as polygon_area

        pa, pb = self.hull(a), self.hull(b)
        inter = overlap_area(pa, pb)
        if inter == 0.0:
            return 0.0
        union = abs(polygon_area(pa)) + abs(polygon_area(pb)) - inter
        if union <= 0.0:
            return 0.0
        return inter / union

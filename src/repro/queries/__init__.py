"""Extremal queries on hull summaries (Section 6)."""

from .diameter import diameter, diameter_witness
from .width import extent, extent_in_angle, width
from .farthest import enclosing_circle, farthest_neighbor
from .direction_index import DirectionalExtentIndex
from .trackers import (
    ContainmentTracker,
    MultiStreamTracker,
    OverlapTracker,
    SeparationTracker,
)

__all__ = [
    "diameter", "diameter_witness",
    "width", "extent", "extent_in_angle",
    "farthest_neighbor", "enclosing_circle",
    "DirectionalExtentIndex",
    "MultiStreamTracker", "SeparationTracker", "ContainmentTracker",
    "OverlapTracker",
]

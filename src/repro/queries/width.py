"""Width and directional-extent queries (Section 6, "Width or
Directional Extent").

The width (minimum distance between enclosing parallel lines) is an
O(r) rotating-calipers computation on the summary hull.  The extent in
a *given* direction is a projection of the O(r) hull vertices; on the
adaptive summary both inherit the additive O(D/r^2) error — which, as
the paper warns, can be an arbitrarily poor *relative* approximation
when the true width is much smaller than the diameter (the ellipse
benchmark quantifies this).
"""

from __future__ import annotations

import math

from ..core.base import HullSummary
from ..geometry.calipers import width as polygon_width
from ..geometry.polygon import extent as polygon_extent
from ..geometry.vec import Vector, unit

__all__ = ["width", "extent", "extent_in_angle"]


def width(summary: HullSummary) -> float:
    """Approximate width of the summarised stream (O(r))."""
    return polygon_width(summary.hull())


def extent(summary: HullSummary, direction: Vector) -> float:
    """Approximate extent of the stream along ``direction`` (O(r) on the
    generic polygon; ``direction`` need not be unit length — the result
    scales with its norm)."""
    return polygon_extent(summary.hull(), direction)


def extent_in_angle(summary: HullSummary, theta: float) -> float:
    """Extent along the direction with polar angle ``theta`` (radians)."""
    return polygon_extent(summary.hull(), unit(theta))

"""Diameter queries on hull summaries (Section 6, "Diameter").

The diameter of the adaptively sampled hull estimates the stream
diameter within additive error O(D/r^2) (Corollary 5.2); the uniform
hull achieves the same bound for the *diameter specifically* even though
its hull error is only O(D/r) (Lemma 3.1 — the large uncertainty
triangles only occur on near-diametral edges).  The query runs rotating
calipers on the O(r)-vertex summary hull: O(r) time.
"""

from __future__ import annotations

from typing import Tuple

from ..core.base import HullSummary
from ..geometry.calipers import diameter as polygon_diameter
from ..geometry.vec import Point

__all__ = ["diameter", "diameter_witness"]


def diameter(summary: HullSummary) -> float:
    """Approximate diameter of the summarised stream (O(r))."""
    return polygon_diameter(summary.hull())[0]


def diameter_witness(summary: HullSummary) -> Tuple[float, Tuple[Point, Point]]:
    """Approximate diameter plus the realising sample-point pair.

    Both witness points are genuine input points (samples are always
    input points), so the reported distance is a *lower* bound on the
    true diameter, within additive O(D/r^2) of it for the adaptive
    summary.
    """
    return polygon_diameter(summary.hull())

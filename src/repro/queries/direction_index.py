"""O(log r) directional queries via a direction-sorted index (Section 6).

The paper answers "extent in a given direction" in O(log r) time by
searching the summary's vertices in direction order.  This module
builds that index: a snapshot of a summary's sampling directions and
their extrema in a :class:`~repro.structures.circular_map.CircularMap`
(skip-list backed), supporting:

* ``support(theta)`` — an inner bound on the stream's support function
  from the nearest sampled direction, with the Lemma 3.1 guarantee
  ``support(theta) >= cos(delta) * true_support`` for gap ``delta``;
* ``extent(theta)`` — directional extent from the two opposite supports,
  a ``cos(theta0/2)``-factor approximation like the sampled diameter;
* ``extreme_vertex(theta)`` — the stored witness point.

Each query is one circular floor/ceiling search: O(log r).  The index
is built from a snapshot of the summary, but it is *not* allowed to go
silently stale: it remembers the summary's
:attr:`~repro.core.base.HullSummary.generation` at build time and every
query re-checks it (one integer comparison), rebuilding the map
(O(r log r)) when an ``insert``/``merge``/``load_state`` has mutated
the summary since.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ..core.adaptive_hull import AdaptiveHull
from ..core.base import HullSummary
from ..core.uniform_hull import UniformHull
from ..geometry.vec import Point, dot, unit
from ..structures.circular_map import CircularMap

__all__ = ["DirectionalExtentIndex"]

_TWO_PI = 2.0 * math.pi


class DirectionalExtentIndex:
    """Snapshot index of (sampling direction -> extremum) for a summary.

    Args:
        summary: a hull summary.  Uniform and adaptive hulls expose
            their true sampling directions; for any other summary the
            index falls back to the hull vertices' outward-normal fan
            (every vertex is extreme in the directions between its
            adjacent edge normals, so indexing vertices by an interior
            normal is exact for the *sample hull*).
    """

    def __init__(self, summary: HullSummary):
        self._summary = summary
        self._built_generation = -1
        self._build()

    def _build(self) -> None:
        self._map = CircularMap()
        self._n = 0
        for theta, point in self._collect(self._summary):
            if point is None:
                continue
            # Keep the farthest point per direction key.
            existing = self._map.get(theta)
            if existing is None or dot(point, unit(theta)) > dot(
                existing, unit(theta)
            ):
                self._map.replace(theta, point)
        self._n = len(self._map)
        if self._n == 0:
            raise ValueError(
                "cannot index an empty summary (a windowed summary may "
                "have expired every bucket; the index recovers once the "
                "summary holds points again)"
            )
        self._built_generation = self._summary.generation

    def _refresh(self) -> None:
        """Rebuild when the indexed summary has mutated since build.

        If the summary has become *empty* (windowed summaries reach
        that state routinely via expiry) the rebuild raises the same
        ValueError construction does — directional queries have no
        answer on an empty summary — and the next query after the
        summary refills rebuilds successfully."""
        if self._summary.generation != self._built_generation:
            self._build()

    @staticmethod
    def _collect(summary: HullSummary) -> List[Tuple[float, Optional[Point]]]:
        out: List[Tuple[float, Optional[Point]]] = []
        if isinstance(summary, AdaptiveHull):
            uni = summary.uniform_layer
            for j in range(uni.r):
                out.append((uni.direction(j), uni.extreme(j)))
            for root in summary._roots:
                if root is None:
                    continue
                for node in root.iter_internal():
                    out.append((node.mid_vector, node.t))
            return [(DirectionalExtentIndex._angle(v), p) for v, p in out]
        if isinstance(summary, UniformHull):
            return [
                (j * summary.theta0, summary.extreme(j))
                for j in range(summary.r)
            ]
        # Generic fallback: hull vertices indexed by an interior normal
        # of their supporting-direction range.
        hull = summary.hull()
        entries: List[Tuple[float, Optional[Point]]] = []
        n = len(hull)
        if n == 1:
            return [(0.0, hull[0])]
        for i, v in enumerate(hull):
            prev_v = hull[(i - 1) % n]
            next_v = hull[(i + 1) % n]
            n1 = DirectionalExtentIndex._angle(
                (v[1] - prev_v[1], prev_v[0] - v[0])
            )
            n2 = DirectionalExtentIndex._angle(
                (next_v[1] - v[1], v[0] - next_v[0])
            )
            span = (n2 - n1) % _TWO_PI
            entries.append(((n1 + span / 2.0) % _TWO_PI, v))
        return entries

    @staticmethod
    def _angle(v) -> float:
        return math.atan2(v[1], v[0]) % _TWO_PI

    def __len__(self) -> int:
        self._refresh()
        return self._n

    # -- queries (each one circular-map search: O(log r)) -----------------

    def extreme_vertex(self, theta: float) -> Point:
        """Stored extremum of the sampled direction nearest to ``theta``."""
        self._refresh()
        theta %= _TWO_PI
        lo, hi = self._map.neighbours(theta)
        gap_lo = (theta - lo[0]) % _TWO_PI
        gap_hi = (hi[0] - theta) % _TWO_PI
        return lo[1] if gap_lo <= gap_hi else hi[1]

    def support(self, theta: float) -> float:
        """Inner bound on the stream support function at angle ``theta``.

        Evaluates the nearest sampled direction's extremum against
        ``theta`` itself, so the value never exceeds the true support
        and is within a ``cos(gap)`` factor of it (Lemma 3.1's argument).
        """
        return dot(self.extreme_vertex(theta), unit(theta))

    def extent(self, theta: float) -> float:
        """Directional extent at angle ``theta`` (two support queries)."""
        return self.support(theta) + self.support(theta + math.pi)

    def max_gap(self) -> float:
        """Largest angular gap between indexed directions (quality of
        the support approximation: error factor ``1 - cos(gap/2)``)."""
        self._refresh()
        angles = sorted(self._map)
        if len(angles) == 1:
            return _TWO_PI
        worst = 0.0
        for a, b in zip(angles, angles[1:] + [angles[0] + _TWO_PI]):
            worst = max(worst, b - a)
        return worst

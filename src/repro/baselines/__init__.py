"""Baselines: every scheme the paper compares against or builds on.

* :class:`UniformHull` (re-exported from core) — Feigenbaum-Kannan-Zhang
  style fixed-direction extrema, the principal comparator of Section 7.
* :class:`PartiallyAdaptiveHull` — Section 7's train-then-freeze straw man.
* :class:`RadialHistogramHull` — Cormode-Muthukrishnan radial histogram.
* :class:`DudleyKernelHull` — Dudley / core-set construction.
* :class:`ExactHull` — unbounded-space ground truth.
* :class:`RandomSampleHull` — reservoir sampling (why extremal sampling
  is necessary).
"""

from ..core.uniform_hull import UniformHull
from .partial_adaptive import PartiallyAdaptiveHull
from .radial_histogram import RadialHistogramHull
from .dudley import DudleyKernelHull
from .exact import ExactHull
from .random_sample import RandomSampleHull

__all__ = [
    "UniformHull",
    "PartiallyAdaptiveHull",
    "RadialHistogramHull",
    "DudleyKernelHull",
    "ExactHull",
    "RandomSampleHull",
]

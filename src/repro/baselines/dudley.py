"""Dudley-style epsilon-kernel baseline (Agarwal, Har-Peled,
Varadarajan [1]; Dudley [8]).

Core-set constructions approximate the extent of a point set by a small
witness subset.  Dudley's classical recipe: circumscribe a circle around
the data, place O(r) evenly spaced anchor points on it, and for each
anchor keep the input point nearest to it.  The hull of the kept points
is an O(D/r^2) Hausdorff approximation of the true hull — matching the
paper's error bound, but (as the paper notes) through a less local
technique with worse constants for streaming updates.

A true streaming Dudley kernel needs a bounding circle known in advance;
following the usual practice (and our substitution policy), the circle
is fixed from a ``warmup`` prefix of the stream and grown by rebuild
whenever a point escapes it.  Each rebuild rescans only the stored
samples (single-pass property preserved); escaped geometry beyond the
stored samples is irrecoverable, which is exactly the robustness gap the
paper's adaptive scheme avoids.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..core.base import HullSummary
from ..geometry.hull import convex_hull
from ..geometry.vec import Point, dist

__all__ = ["DudleyKernelHull"]


class DudleyKernelHull(HullSummary):
    """Nearest input point per circumscribed-circle anchor.

    Args:
        r: number of anchors on the circumscribed circle (space O(r)).
        warmup: number of initial points used to fix the first bounding
            circle.
        growth: factor by which the circle radius is inflated on rebuild
            (headroom against repeated escapes).
    """

    name = "dudley"

    def __init__(self, r: int, warmup: int = 32, growth: float = 2.0):
        if r < 3:
            raise ValueError("DudleyKernelHull requires r >= 3 anchors")
        self.r = r
        self.warmup = warmup
        self.growth = growth
        self._buffer: List[Point] = []
        self._center: Optional[Point] = None
        self._radius = 0.0
        self._anchors: List[Point] = []
        self._nearest: List[Optional[Point]] = []
        self._near_dist: List[float] = []
        self._hull: List[Point] = []
        self.points_seen = 0
        self.rebuilds = 0

    def get_config(self):
        """Constructor kwargs that recreate an equivalent empty summary."""
        return {"r": self.r, "warmup": self.warmup, "growth": self.growth}

    def insert(self, p: Point) -> bool:
        self.points_seen += 1
        self._bump_generation()  # conservative: any offer may mutate
        if self._center is None:
            self._buffer.append(p)
            if len(self._buffer) >= self.warmup:
                self._init_circle(self._buffer)
                buffered, self._buffer = self._buffer, []
                for q in buffered:
                    self._assign(q)
                self._rebuild_hull()
            else:
                self._hull = convex_hull(self._buffer)
            return True
        if dist(p, self._center) > self._radius:
            # The point escaped the circumscribed circle: grow it and
            # re-anchor using the stored samples plus the new point.
            kept = self.samples() + [p]
            self._init_circle(kept, inflate=self.growth)
            for q in kept:
                self._assign(q)
            self.rebuilds += 1
            self._rebuild_hull()
            return True
        changed = self._assign(p)
        if changed:
            self._rebuild_hull()
        return changed

    def hull(self) -> List[Point]:
        return self._hull

    def samples(self) -> List[Point]:
        if self._center is None:
            return list(dict.fromkeys(self._buffer))
        return list(
            dict.fromkeys(q for q in self._nearest if q is not None)
        )

    # -- internals ---------------------------------------------------------

    def _init_circle(self, pts: List[Point], inflate: float = 1.5) -> None:
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        cx = (min(xs) + max(xs)) / 2.0
        cy = (min(ys) + max(ys)) / 2.0
        rad = max((dist((cx, cy), p) for p in pts), default=0.0)
        rad = max(rad * inflate, 1e-9)
        self._center = (cx, cy)
        self._radius = rad
        self._anchors = [
            (
                cx + rad * math.cos(2.0 * math.pi * i / self.r),
                cy + rad * math.sin(2.0 * math.pi * i / self.r),
            )
            for i in range(self.r)
        ]
        self._nearest = [None] * self.r
        self._near_dist = [math.inf] * self.r

    def _assign(self, p: Point) -> bool:
        changed = False
        for i, anchor in enumerate(self._anchors):
            d = dist(p, anchor)
            if d < self._near_dist[i]:
                self._near_dist[i] = d
                self._nearest[i] = p
                changed = True
        return changed

    def _rebuild_hull(self) -> None:
        self._hull = convex_hull(self.samples())

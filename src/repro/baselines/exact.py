"""Exact (unbounded-space) hull baseline.

Stores every hull vertex via the incremental
:class:`~repro.geometry.hull.OnlineHull`.  Zero error, but the space is
the hull size — up to the full stream for points in convex position —
which is precisely the cost the paper's bounded summaries eliminate.
Used as ground truth in the experiment harness.
"""

from __future__ import annotations

from typing import List

from ..core.base import HullSummary
from ..geometry.hull import OnlineHull
from ..geometry.vec import Point

__all__ = ["ExactHull"]


class ExactHull(HullSummary):
    """Keep-everything exact convex hull (ground truth)."""

    name = "exact"

    def __init__(self):
        self._online = OnlineHull()

    def insert(self, p: Point) -> bool:
        changed = self._online.insert(p)
        if changed:
            self._bump_generation()
        return changed

    def hull(self) -> List[Point]:
        return self._online.vertices()

    def samples(self) -> List[Point]:
        return self._online.vertices()

    @property
    def points_seen(self) -> int:
        """Total points inserted."""
        return self._online.points_seen

    # -- merging -------------------------------------------------------------

    def _set_merged_points_seen(self, total: int) -> None:
        """``points_seen`` is derived from the online hull here; a merge
        writes the union-stream length straight into it.  The merge
        itself is exact: re-ingesting the other operand's hull vertices
        reproduces the hull of the union (``hull(A ∪ B) =
        hull(hull(A) ∪ hull(B))``)."""
        self._online._n = int(total)

    # -- persistence ---------------------------------------------------------

    def state_dict(self):
        """Replaying the hull vertices reconstructs the hull exactly —
        they are the entire state; the stream-length counter rides
        along explicitly (it is a derived read-only property here)."""
        return {
            "replay_samples": [[p[0], p[1]] for p in self.samples()],
            "points_seen": self.points_seen,
        }

    def load_state(self, state) -> None:
        for p in state["replay_samples"]:
            self.insert((float(p[0]), float(p[1])))
        self._online._n = int(state["points_seen"])

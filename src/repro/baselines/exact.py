"""Exact (unbounded-space) hull baseline.

Stores every hull vertex via the incremental
:class:`~repro.geometry.hull.OnlineHull`.  Zero error, but the space is
the hull size — up to the full stream for points in convex position —
which is precisely the cost the paper's bounded summaries eliminate.
Used as ground truth in the experiment harness.
"""

from __future__ import annotations

from typing import List

from ..core.base import HullSummary
from ..geometry.hull import OnlineHull
from ..geometry.vec import Point

__all__ = ["ExactHull"]


class ExactHull(HullSummary):
    """Keep-everything exact convex hull (ground truth)."""

    name = "exact"

    def __init__(self):
        self._online = OnlineHull()

    def insert(self, p: Point) -> bool:
        return self._online.insert(p)

    def hull(self) -> List[Point]:
        return self._online.vertices()

    def samples(self) -> List[Point]:
        return self._online.vertices()

    @property
    def points_seen(self) -> int:
        """Total points inserted."""
        return self._online.points_seen

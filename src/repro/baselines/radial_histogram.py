"""Radial histogram baseline (Cormode & Muthukrishnan [7]).

The radial histogram summarises a point stream relative to a fixed
origin: the plane is cut into ``r`` equal angular sectors around the
first stream point, and each sector keeps the arrived point farthest
from the origin.  The convex hull of the kept points approximates the
true hull with error O(D/r) — the bound the paper's adaptive scheme
improves to O(D/r^2).

This is a faithful single-level rendition of the technique the paper
cites as prior work ("Cormode-Muthukrishnan's radial hull can also be
viewed as a two-level variation" of uniform direction sampling); it is
included as a comparator in the baseline benchmark.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..core.base import HullSummary
from ..geometry.hull import convex_hull
from ..geometry.vec import Point, dist

__all__ = ["RadialHistogramHull"]


class RadialHistogramHull(HullSummary):
    """Farthest point per angular sector around a stream-chosen origin.

    Args:
        r: number of angular sectors (space O(r)).
    """

    name = "radial"

    def __init__(self, r: int):
        if r < 3:
            raise ValueError("RadialHistogramHull requires r >= 3 sectors")
        self.r = r
        self._origin: Optional[Point] = None
        self._farthest: List[Optional[Point]] = [None] * r
        self._radius: List[float] = [-1.0] * r
        self._hull: List[Point] = []
        self.points_seen = 0

    def get_config(self):
        """Constructor kwargs that recreate an equivalent empty summary."""
        return {"r": self.r}

    def insert(self, p: Point) -> bool:
        self.points_seen += 1
        self._bump_generation()  # conservative: any offer may mutate
        if self._origin is None:
            # Anchor the histogram at the first stream point.
            self._origin = p
            self._hull = [p]
            return True
        d = dist(p, self._origin)
        if d == 0.0:
            return False
        angle = math.atan2(p[1] - self._origin[1], p[0] - self._origin[0])
        sector = int(((angle % (2.0 * math.pi)) / (2.0 * math.pi)) * self.r)
        sector = min(sector, self.r - 1)
        if d > self._radius[sector]:
            self._radius[sector] = d
            self._farthest[sector] = p
            self._rebuild()
            return True
        return False

    def hull(self) -> List[Point]:
        return self._hull

    def samples(self) -> List[Point]:
        pts = [p for p in self._farthest if p is not None]
        if self._origin is not None:
            pts.append(self._origin)
        return list(dict.fromkeys(pts))

    def _rebuild(self) -> None:
        self._hull = convex_hull(self.samples())

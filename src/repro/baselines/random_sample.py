"""Reservoir-sampled hull — the naive comparator.

Keeps a uniform random sample of ``r`` stream points (classic reservoir
sampling) and reports the hull of the sample.  For extremal problems
this is hopeless — hull vertices are by definition atypical points, so
a uniform sample misses them — and the baseline benchmark quantifies
just how hopeless, motivating extremal (directional) sampling.
"""

from __future__ import annotations

import random
from typing import List

from ..core.base import HullSummary
from ..geometry.hull import convex_hull
from ..geometry.vec import Point

__all__ = ["RandomSampleHull"]


class RandomSampleHull(HullSummary):
    """Uniform reservoir sample of size ``r`` with hull-on-demand.

    Args:
        r: reservoir capacity.
        seed: RNG seed (reproducible experiments).
    """

    name = "random"

    def __init__(self, r: int, seed: int = 0):
        if r < 1:
            raise ValueError("RandomSampleHull requires r >= 1")
        self.r = r
        self.seed = seed
        self._rng = random.Random(seed)
        self._reservoir: List[Point] = []
        self._hull: List[Point] = []
        self._dirty = False
        self.points_seen = 0

    def get_config(self):
        """Constructor kwargs that recreate an equivalent empty summary
        (the RNG restarts from the stored seed; the replay-based state
        snapshot is documented as lossy for this scheme)."""
        return {"r": self.r, "seed": self.seed}

    def insert(self, p: Point) -> bool:
        self.points_seen += 1
        self._bump_generation()  # conservative: any offer may mutate
        if len(self._reservoir) < self.r:
            self._reservoir.append(p)
            self._dirty = True
            return True
        j = self._rng.randrange(self.points_seen)
        if j < self.r:
            self._reservoir[j] = p
            self._dirty = True
            return True
        return False

    def hull(self) -> List[Point]:
        if self._dirty:
            self._hull = convex_hull(self._reservoir)
            self._dirty = False
        return self._hull

    def samples(self) -> List[Point]:
        return list(dict.fromkeys(self._reservoir))

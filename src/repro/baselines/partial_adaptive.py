"""The "partially adaptive" straw man of Section 7.

The paper's changing-distribution experiment compares the fully adaptive
hull against a scheme "inspired by (a particularly bad example of)
machine learning": adapt on the first half of the stream as a training
set, then freeze the chosen directions while processing the second half.
When the distribution shifts after training, the frozen directions point
the wrong way and the approximation degrades to roughly a uniform hull
of half the resolution — exactly the behaviour Table 1's fourth section
documents.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.base import HullSummary
from ..core.fixed_size import FixedSizeAdaptiveHull
from ..geometry.hull import convex_hull
from ..geometry.polygon import contains_point
from ..geometry.vec import Point, Vector, dot

__all__ = ["PartiallyAdaptiveHull"]


class PartiallyAdaptiveHull(HullSummary):
    """Train-then-freeze adaptive hull (Section 7, "Partial").

    Args:
        r: uniform direction count (total budget 2r, as in the adaptive
            comparator).
        train_size: number of initial stream points used to adapt; after
            that the sampling directions are frozen and only the extrema
            are updated.
    """

    name = "partial"

    def __init__(self, r: int, train_size: int):
        if train_size <= 0:
            raise ValueError("train_size must be positive")
        self.r = r
        self.train_size = train_size
        self._trainer: Optional[FixedSizeAdaptiveHull] = FixedSizeAdaptiveHull(r)
        self._dirs: List[Vector] = []
        self._extreme: List[Optional[Point]] = []
        self._support: List[float] = []
        self._hull: List[Point] = []
        self.points_seen = 0
        self.frozen = False

    def get_config(self):
        """Constructor kwargs that recreate an equivalent empty summary."""
        return {"r": self.r, "train_size": self.train_size}

    def insert(self, p: Point) -> bool:
        self.points_seen += 1
        self._bump_generation()  # conservative: any offer may mutate
        if not self.frozen:
            assert self._trainer is not None
            changed = self._trainer.insert(p)
            self._hull = self._trainer.hull()
            if self.points_seen >= self.train_size:
                self._freeze()
            return changed
        if self._hull and contains_point(self._hull, p):
            return False
        changed = False
        for i, d in enumerate(self._dirs):
            s = p[0] * d[0] + p[1] * d[1]
            if s > self._support[i]:
                self._support[i] = s
                self._extreme[i] = p
                changed = True
        if changed:
            self._hull = convex_hull(
                e for e in self._extreme if e is not None
            )
        return changed

    def hull(self) -> List[Point]:
        return self._hull

    def samples(self) -> List[Point]:
        if not self.frozen:
            assert self._trainer is not None
            return self._trainer.samples()
        return list(
            dict.fromkeys(e for e in self._extreme if e is not None)
        )

    def edge_triangles(self):
        """Uncertainty triangles of the frozen-direction hull.

        After freezing, each stored extremum is supported by its frozen
        direction; consecutive (by angle) distinct extrema bound an edge
        whose triangle is built from the two supporting lines — the same
        construction as the uniform hull's ring.  Before freezing,
        delegates to the trainer's leaf triangles.
        """
        from ..core.uncertainty import triangle_for_edge

        if not self.frozen:
            assert self._trainer is not None
            yield from self._trainer.leaf_triangles()
            return
        import math

        order = sorted(
            (
                (math.atan2(d[1], d[0]) % (2.0 * math.pi), d, e)
                for d, e in zip(self._dirs, self._extreme)
                if e is not None
            ),
            key=lambda t: t[0],
        )
        m = len(order)
        for i in range(m):
            _, d1, e1 = order[i]
            _, d2, e2 = order[(i + 1) % m]
            if e1 == e2:
                continue
            yield triangle_for_edge(e1, e2, d1, d2)

    @property
    def direction_count(self) -> int:
        """Number of (frozen or live) sampling directions."""
        if not self.frozen:
            assert self._trainer is not None
            return self._trainer.active_direction_count
        return len(self._dirs)

    def _freeze(self) -> None:
        """Capture the trainer's active directions and extrema, then
        drop the adaptive machinery."""
        assert self._trainer is not None
        trainer = self._trainer
        pairs: List[Tuple[Vector, Optional[Point]]] = []
        uni = trainer.uniform_layer
        for j in range(trainer.r):
            pairs.append((uni.direction(j), uni.extreme(j)))
        for root in trainer._roots:
            if root is None:
                continue
            for node in root.iter_internal():
                pairs.append((node.mid_vector, node.t))
        self._dirs = [d for d, _ in pairs]
        self._extreme = [e for _, e in pairs]
        self._support = [
            dot(e, d) if e is not None else float("-inf")
            for d, e in pairs
        ]
        self._hull = trainer.hull()
        self._trainer = None
        self.frozen = True

"""Markdown report generation for reproduction runs.

Turns harness outputs (Table 1 rows, scaling sweeps, lower-bound
sweeps) into the markdown tables used in EXPERIMENTS.md, so the
paper-vs-measured record can be regenerated from scratch:

    python -m repro.experiments.report --n 100000 > EXPERIMENTS_fresh.md
"""

from __future__ import annotations

from typing import List, Sequence

from .lower_bound import LowerBoundPoint
from .scaling import ScalingPoint, loglog_slope
from .table1 import Table1Row

__all__ = [
    "table1_markdown",
    "scaling_markdown",
    "lower_bound_markdown",
    "full_report",
]


def table1_markdown(rows: Sequence[Table1Row], unit: float = 1e-4) -> str:
    """Render Table 1 rows as a markdown table (lengths in ``unit``)."""
    scale = 1.0 / unit
    out = [
        "| workload | max h (base/ada) | avg h (base/ada) "
        "| max d (base/ada) | % out (base/ada) |",
        "|---|---|---|---|---|",
    ]
    for row in rows:
        b = row.baseline.scaled(scale)
        a = row.adaptive.scaled(scale)
        out.append(
            f"| {row.workload} "
            f"| {b.max_triangle_height:.0f} / {a.max_triangle_height:.0f} "
            f"| {b.avg_triangle_height:.0f} / {a.avg_triangle_height:.0f} "
            f"| {b.max_outside_distance:.0f} / {a.max_outside_distance:.0f} "
            f"| {row.baseline.pct_outside:.2f} / {row.adaptive.pct_outside:.2f} |"
        )
    return "\n".join(out)


def scaling_markdown(points: Sequence[ScalingPoint]) -> str:
    """Render an error-scaling sweep with fitted slopes."""
    out = [
        "| r | uniform error | adaptive error |",
        "|---|---|---|",
    ]
    by_r = {}
    for p in points:
        by_r.setdefault(p.r, {})[p.scheme] = p.error
    for r in sorted(by_r):
        row = by_r[r]
        out.append(
            f"| {r} | {row.get('uniform', float('nan')):.6f} "
            f"| {row.get('adaptive', float('nan')):.6f} |"
        )
    out.append("")
    out.append(
        f"Fitted log-log slopes: adaptive "
        f"{loglog_slope(points, 'adaptive'):+.2f} (theory -2), uniform "
        f"{loglog_slope(points, 'uniform'):+.2f} (theory -1)."
    )
    return "\n".join(out)


def lower_bound_markdown(points: Sequence[LowerBoundPoint]) -> str:
    """Render a Theorem 5.5 sweep."""
    out = [
        "| r | optimal subsample error | adaptive measured | D/r^2 |",
        "|---|---|---|---|",
    ]
    for p in points:
        out.append(
            f"| {p.r} | {p.optimal_error:.3e} | {p.adaptive_error:.3e} "
            f"| {p.theory:.3e} |"
        )
    return "\n".join(out)


def full_report(n: int = 20_000, seed: int = 0) -> str:
    """Run all experiments and produce one markdown document."""
    from .lower_bound import lower_bound_sweep
    from .scaling import error_scaling
    from .table1 import run_table1

    sections: List[str] = ["# Reproduction report", ""]
    sections.append(f"Stream length per workload: {n}; base seed: {seed}.")
    sections.append("")
    sections.append("## Table 1")
    sections.append("")
    sections.append(table1_markdown(run_table1(n=n, seed=seed)))
    sections.append("")
    sections.append("## Error scaling (Theorem 5.4)")
    sections.append("")
    sections.append(
        scaling_markdown(error_scaling([8, 16, 32, 64], n=min(n, 30_000)))
    )
    sections.append("")
    sections.append("## Lower bound (Theorem 5.5)")
    sections.append("")
    sections.append(lower_bound_markdown(lower_bound_sweep([8, 16, 32, 64])))
    sections.append("")
    return "\n".join(sections)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    print(full_report(n=args.n, seed=args.seed))

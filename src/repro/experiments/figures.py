"""Figure 10 reproduction: adaptive vs uniform hull pictures.

The paper's only data figure shows, for the "ellipse rotated by
theta0/4" workload, the sample hulls with their sample directions and
uncertainty triangles — adaptive on top, uniform below.  This module
regenerates both panels as SVG files (no plotting dependency).
"""

from __future__ import annotations

import math
import os
from typing import Optional, Tuple

from ..core.fixed_size import FixedSizeAdaptiveHull
from ..core.uniform_hull import UniformHull
from ..streams.generators import ellipse_stream
from ..streams.transforms import as_tuples
from ..viz.svg import SvgCanvas, render_summary
from .table1 import DEFAULT_R, THETA0

__all__ = ["make_fig10"]


def make_fig10(
    out_dir: str,
    n: int = 20_000,
    r: int = DEFAULT_R,
    rotation: Optional[float] = None,
    seed: int = 0,
) -> Tuple[str, str]:
    """Generate the two Fig. 10 panels; returns the two file paths.

    Args:
        out_dir: directory for ``fig10_adaptive.svg`` and
            ``fig10_uniform.svg`` (created if missing).
        n: stream length (the paper used 10^5; the default here keeps
            test runs fast — the picture is indistinguishable).
        r: adaptive parameter (uniform gets 2r directions).
        rotation: ellipse rotation; defaults to theta0/4 as in the paper.
    """
    if rotation is None:
        rotation = THETA0 / 4.0
    os.makedirs(out_dir, exist_ok=True)
    pts = list(as_tuples(ellipse_stream(n, a=16.0, b=1.0, rotation=rotation, seed=seed)))

    adaptive = FixedSizeAdaptiveHull(r)
    uniform = UniformHull(2 * r)
    for p in pts:
        adaptive.insert(p)
        uniform.insert(p)

    paths = []
    for summary, fname in (
        (adaptive, "fig10_adaptive.svg"),
        (uniform, "fig10_uniform.svg"),
    ):
        canvas = SvgCanvas(width=1000, height=320)
        render_summary(summary, pts, canvas=canvas)
        canvas.text(
            (pts[0][0], pts[0][1]),
            "",
        )
        path = os.path.join(out_dir, fname)
        canvas.save(path)
        paths.append(path)
    return paths[0], paths[1]

"""Table 1 reproduction harness (Section 7).

The paper's experimental table compares, at equal sample size:

* the uniformly sampled hull with ``2r = 32`` directions, against
* the fixed-size adaptive hull with parameter ``r = 16`` (which also
  maintains exactly ``2r = 32`` directions),

on 10^5 points drawn from a disk, a square (rotated by 0, theta0/4,
theta0/3, theta0/2, with theta0 = 2*pi/r = pi/8), an ellipse of aspect
ratio 16 (same rotations), and — for the fourth section — a
distribution-shift stream where a "partially adaptive" hull (trained on
the first half, frozen for the second) is compared against the fully
adaptive one.

Each row reports the paper's metrics (max/avg uncertainty-triangle
height, max distance from the hull to an outside point, % points
outside).  ``run_table1`` returns structured rows; ``format_table1``
renders them in the layout of the paper's Table 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines.partial_adaptive import PartiallyAdaptiveHull
from ..core.base import HullSummary
from ..core.fixed_size import FixedSizeAdaptiveHull
from ..core.uniform_hull import UniformHull
from ..streams.generators import (
    changing_ellipse_stream,
    disk_stream,
    ellipse_stream,
    square_stream,
)
from ..streams.transforms import as_tuples
from .metrics import QualityMetrics, evaluate_summary

__all__ = [
    "Table1Row",
    "table1_workloads",
    "run_workload",
    "run_table1",
    "format_table1",
    "DEFAULT_R",
    "DEFAULT_N",
]

DEFAULT_R = 16          # adaptive parameter; uniform runs with 2r = 32
DEFAULT_N = 100_000     # paper's stream length
THETA0 = 2.0 * math.pi / DEFAULT_R  # pi/8, the rotation unit of Table 1

#: The rotation fractions used in Table 1's square and ellipse sections.
ROTATIONS: List[Tuple[str, float]] = [
    ("0", 0.0),
    ("theta0/4", THETA0 / 4.0),
    ("theta0/3", THETA0 / 3.0),
    ("theta0/2", THETA0 / 2.0),
]


@dataclass
class Table1Row:
    """One comparison row: a workload and its two schemes' metrics."""

    section: str
    workload: str
    baseline: QualityMetrics   # uniform (or partial, in the 4th section)
    adaptive: QualityMetrics


def table1_workloads(
    n: int = DEFAULT_N, seed: int = 0
) -> List[Tuple[str, str, np.ndarray, str]]:
    """All Table 1 workloads as (section, label, points, baseline_kind).

    ``baseline_kind`` is ``"uniform"`` for the first three sections and
    ``"partial"`` for the changing-distribution section.
    """
    out: List[Tuple[str, str, np.ndarray, str]] = []
    out.append(("disk", "disk", disk_stream(n, seed=seed), "uniform"))
    for label, angle in ROTATIONS:
        out.append(
            (
                "square",
                f"square rotated by {label}",
                square_stream(n, rotation=angle, seed=seed + 1),
                "uniform",
            )
        )
    for label, angle in ROTATIONS:
        out.append(
            (
                "ellipse",
                f"ellipse rotated by {label}",
                ellipse_stream(n, a=16.0, b=1.0, rotation=angle, seed=seed + 2),
                "uniform",
            )
        )
    for label, angle in ROTATIONS:
        out.append(
            (
                "changing",
                f"changing ellipse rotated by {label}",
                changing_ellipse_stream(n // 2, tilt=angle, seed=seed + 3),
                "partial",
            )
        )
    return out


def _make_schemes(
    baseline_kind: str, r: int, n: int
) -> Tuple[HullSummary, HullSummary]:
    if baseline_kind == "uniform":
        baseline: HullSummary = UniformHull(2 * r)
    elif baseline_kind == "partial":
        baseline = PartiallyAdaptiveHull(r, train_size=n // 2)
    else:
        raise ValueError(f"unknown baseline kind {baseline_kind!r}")
    return baseline, FixedSizeAdaptiveHull(r)


def run_workload(
    section: str,
    label: str,
    points: np.ndarray,
    baseline_kind: str = "uniform",
    r: int = DEFAULT_R,
) -> Table1Row:
    """Run both schemes over one workload and collect the metrics."""
    pts = list(as_tuples(points))
    baseline, adaptive = _make_schemes(baseline_kind, r, len(pts))
    for p in pts:
        baseline.insert(p)
        adaptive.insert(p)
    return Table1Row(
        section=section,
        workload=label,
        baseline=evaluate_summary(baseline, pts),
        adaptive=evaluate_summary(adaptive, pts),
    )


def run_table1(
    n: int = DEFAULT_N,
    r: int = DEFAULT_R,
    seed: int = 0,
    sections: Optional[Sequence[str]] = None,
) -> List[Table1Row]:
    """Reproduce Table 1 (optionally restricted to some sections).

    Args:
        n: stream length per workload (the paper uses 10^5).
        r: adaptive parameter (uniform uses 2r directions).
        seed: workload generator seed.
        sections: subset of {"disk", "square", "ellipse", "changing"}.
    """
    rows = []
    for section, label, points, kind in table1_workloads(n=n, seed=seed):
        if sections is not None and section not in sections:
            continue
        rows.append(run_workload(section, label, points, kind, r=r))
    return rows


def format_table1(rows: Sequence[Table1Row], unit: float = 1e-4) -> str:
    """Render rows in the layout of the paper's Table 1.

    Lengths are reported in multiples of ``unit`` (default 1e-4 of the
    input coordinate unit), mirroring the paper's integer presentation.
    """
    scale = 1.0 / unit
    lines = []
    header = (
        f"{'workload':<34}"
        f"{'max h':>8}{'max h':>8}"
        f"{'avg h':>8}{'avg h':>8}"
        f"{'max d':>8}{'max d':>8}"
        f"{'% out':>8}{'% out':>8}"
    )
    sub = (
        f"{'':<34}"
        + "".join(f"{s:>8}" for s in ["base", "adapt"] * 4)
    )
    lines.append(header)
    lines.append(sub)
    lines.append("-" * len(header))
    for row in rows:
        b = row.baseline.scaled(scale)
        a = row.adaptive.scaled(scale)
        lines.append(
            f"{row.workload:<34}"
            f"{b.max_triangle_height:>8.0f}{a.max_triangle_height:>8.0f}"
            f"{b.avg_triangle_height:>8.0f}{a.avg_triangle_height:>8.0f}"
            f"{b.max_outside_distance:>8.0f}{a.max_outside_distance:>8.0f}"
            f"{row.baseline.pct_outside:>8.2f}{row.adaptive.pct_outside:>8.2f}"
        )
    return "\n".join(lines)

"""Approximation-quality metrics (the columns of Table 1).

For a finished summary and the full point set (kept aside by the
experiment harness — the algorithms themselves never store it), we
measure exactly what the paper measures:

* max / average height of the summary's uncertainty triangles,
* max distance from the approximate hull to a data point outside it,
* the percentage of stream points falling outside the approximate hull,

plus the one-sided Hausdorff distance from the true hull to the
approximate hull (the paper's formal error measure, Theorem 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from ..core.adaptive_hull import AdaptiveHull
from ..core.base import HullSummary
from ..core.uniform_hull import UniformHull
from ..geometry.distance import point_polygon_distance
from ..geometry.hull import convex_hull
from ..geometry.polygon import contains_point
from ..geometry.vec import Point

__all__ = [
    "QualityMetrics",
    "triangle_heights",
    "hull_distance",
    "outside_stats",
    "evaluate_summary",
]


@dataclass
class QualityMetrics:
    """One row of experiment output (units of the input coordinates)."""

    scheme: str
    sample_size: int
    max_triangle_height: float
    avg_triangle_height: float
    max_outside_distance: float
    pct_outside: float
    hull_distance: float

    def scaled(self, factor: float) -> "QualityMetrics":
        """Return a copy with all length metrics multiplied by ``factor``
        (used to present results in 1e-4 units as in Table 1)."""
        return QualityMetrics(
            scheme=self.scheme,
            sample_size=self.sample_size,
            max_triangle_height=self.max_triangle_height * factor,
            avg_triangle_height=self.avg_triangle_height * factor,
            max_outside_distance=self.max_outside_distance * factor,
            pct_outside=self.pct_outside,
            hull_distance=self.hull_distance * factor,
        )


def triangle_heights(summary: HullSummary) -> List[float]:
    """Uncertainty-triangle heights for summaries that expose them.

    Adaptive hulls expose leaf triangles; uniform hulls expose edge
    triangles.  Other baselines have no uncertainty structure and yield
    an empty list (their rows report 0 — distances outside the hull are
    the comparable metric there).
    """
    if isinstance(summary, AdaptiveHull):
        return [t.height for t in summary.leaf_triangles()]
    if isinstance(summary, UniformHull):
        return [t.height for t in summary.edge_triangles()]
    edge_triangles = getattr(summary, "edge_triangles", None)
    if callable(edge_triangles):
        return [t.height for t in edge_triangles()]
    return []


def hull_distance(true_hull: Sequence[Point], approx_hull: Sequence[Point]) -> float:
    """One-sided Hausdorff distance from the true hull to the approximate
    hull (the approximate hull lies inside, so this is the paper's error
    measure: max over true hull vertices of the distance to the
    approximation)."""
    if not true_hull or not approx_hull:
        return 0.0
    return max(point_polygon_distance(approx_hull, v) for v in true_hull)


def outside_stats(
    hull: Sequence[Point], points: Iterable[Point]
) -> tuple:
    """(max distance outside, fraction outside) of points vs a hull."""
    max_d = 0.0
    outside = 0
    total = 0
    for p in points:
        total += 1
        if hull and contains_point(hull, p):
            continue
        outside += 1
        if hull:
            d = point_polygon_distance(hull, p)
            if d > max_d:
                max_d = d
    frac = outside / total if total else 0.0
    return max_d, frac


def evaluate_summary(
    summary: HullSummary, points: Sequence[Point]
) -> QualityMetrics:
    """Run the full Table 1 metric set for a finished summary.

    ``points`` is the complete stream (the harness keeps it; the summary
    never did).  The true hull is recomputed exactly for the Hausdorff
    column.
    """
    heights = triangle_heights(summary)
    approx = summary.hull()
    max_out, frac_out = outside_stats(approx, points)
    true_hull = convex_hull(points)
    return QualityMetrics(
        scheme=summary.name,
        sample_size=summary.sample_size,
        max_triangle_height=max(heights) if heights else 0.0,
        avg_triangle_height=(sum(heights) / len(heights)) if heights else 0.0,
        max_outside_distance=max_out,
        pct_outside=100.0 * frac_out,
        hull_distance=hull_distance(true_hull, approx),
    )

"""Error- and time-scaling experiments (Theorem 5.4 shape checks).

The paper's headline claims are asymptotic:

* adaptive hull error O(D / r^2) vs uniform hull error O(D / r) —
  verified by sweeping r and fitting the log-log slope of the measured
  Hausdorff error (expected about -2 vs about -1);
* amortized O(log r) processing per point — verified by counting the
  summary's actual work (tree-node visits + direction updates) per
  stream point as r grows.

These are the "figure-shaped" results backing the theory sections; the
benchmark harness prints the series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from ..core.adaptive_hull import AdaptiveHull
from ..core.fixed_size import FixedSizeAdaptiveHull
from ..core.uniform_hull import UniformHull
from ..geometry.hull import convex_hull
from ..streams.generators import ellipse_stream
from ..streams.transforms import as_tuples
from .metrics import hull_distance

__all__ = [
    "ScalingPoint",
    "error_scaling",
    "loglog_slope",
    "work_per_point",
]


@dataclass
class ScalingPoint:
    """Error of one scheme at one r (plus its actual sample size)."""

    r: int
    scheme: str
    error: float
    sample_size: int


def error_scaling(
    r_values: Sequence[int],
    n: int = 20_000,
    seed: int = 0,
    make_stream: Callable[[int, int], np.ndarray] | None = None,
) -> List[ScalingPoint]:
    """Hausdorff error vs r for the uniform and adaptive schemes.

    Both schemes are compared at equal direction budget: uniform with
    ``2r`` directions vs fixed-size adaptive with parameter ``r``.
    """
    if make_stream is None:
        make_stream = lambda n_, seed_: ellipse_stream(
            n_, a=16.0, b=1.0, rotation=0.1, seed=seed_
        )
    pts = list(as_tuples(make_stream(n, seed)))
    true_hull = convex_hull(pts)
    out: List[ScalingPoint] = []
    for r in r_values:
        uni = UniformHull(2 * r)
        ada = FixedSizeAdaptiveHull(r)
        for p in pts:
            uni.insert(p)
            ada.insert(p)
        out.append(
            ScalingPoint(r, "uniform", hull_distance(true_hull, uni.hull()), uni.sample_size)
        )
        out.append(
            ScalingPoint(r, "adaptive", hull_distance(true_hull, ada.hull()), ada.sample_size)
        )
    return out


def loglog_slope(points: Sequence[ScalingPoint], scheme: str) -> float:
    """Least-squares slope of log(error) against log(r) for one scheme.

    Expected: about -1 for uniform, about -2 for adaptive (the paper's
    O(D/r) vs O(D/r^2) bounds).  Zero-error points are skipped.
    """
    xs = []
    ys = []
    for pt in points:
        if pt.scheme == scheme and pt.error > 0.0:
            xs.append(math.log(pt.r))
            ys.append(math.log(pt.error))
    if len(xs) < 2:
        raise ValueError(f"not enough positive-error points for {scheme!r}")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    return sxy / sxx


@dataclass
class WorkPoint:
    """Amortized work counters for one (r, n) run."""

    r: int
    n: int
    processed_fraction: float
    nodes_visited_per_point: float
    refinements: int
    unrefinements: int


def work_per_point(
    r_values: Sequence[int],
    n: int = 20_000,
    seed: int = 0,
) -> List[WorkPoint]:
    """Operation counts per stream point as r grows (Theorem 5.4's
    amortized O(log r) regime: the per-point work should grow far slower
    than linearly in r)."""
    pts = list(as_tuples(ellipse_stream(n, a=4.0, b=1.0, rotation=0.07, seed=seed)))
    out: List[WorkPoint] = []
    for r in r_values:
        ada = AdaptiveHull(r)
        for p in pts:
            ada.insert(p)
        out.append(
            WorkPoint(
                r=r,
                n=n,
                processed_fraction=ada.points_processed / max(1, ada.points_seen),
                nodes_visited_per_point=ada.nodes_visited / max(1, ada.points_seen),
                refinements=ada.refinements,
                unrefinements=ada.unrefinements,
            )
        )
    return out

"""The Omega(D / r^2) lower bound (Theorem 5.5).

If 2r points lie evenly spaced on a circle and only r of them can be
kept, some dropped point lies at distance Theta(D / r^2) from the hull
of any kept subset.  This module computes, for the best possible
sample (alternate points — by symmetry the optimal choice), the exact
error, and compares it against what the adaptive summary achieves on
the same stream: both must scale as 1/r^2, demonstrating that the
upper bound of Theorem 5.4 is tight.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..core.fixed_size import FixedSizeAdaptiveHull
from ..geometry.distance import point_polygon_distance
from ..geometry.hull import convex_hull
from ..streams.generators import circle_points
from ..streams.transforms import as_tuples, shuffle

__all__ = ["LowerBoundPoint", "optimal_subsample_error", "lower_bound_sweep"]


@dataclass
class LowerBoundPoint:
    """Lower-bound error vs adaptive error at one r."""

    r: int
    diameter: float
    optimal_error: float      # best r-point subsample of the 2r circle points
    adaptive_error: float     # what the streaming adaptive hull achieves
    theory: float             # D / r^2 reference value


def optimal_subsample_error(r: int, radius: float = 1.0) -> float:
    """Exact error of the best r-point subsample of 2r circle points.

    Keeping every other point is optimal by symmetry; each dropped point
    then sits at distance ``radius * (1 - cos(pi / (2r)))`` =
    Theta(D / r^2) from the sample hull (D = 2 * radius).
    """
    if r < 2:
        raise ValueError("the construction needs r >= 2")
    return radius * (1.0 - math.cos(math.pi / (2.0 * r)))


def lower_bound_sweep(
    r_values: Sequence[int], radius: float = 1.0, seed: int = 0
) -> List[LowerBoundPoint]:
    """Compare the construction's optimal error with the adaptive
    summary's measured error on the same 2r-point circle stream."""
    out: List[LowerBoundPoint] = []
    for r in r_values:
        pts_arr = shuffle(circle_points(2 * r, radius=radius), seed=seed)
        pts = list(as_tuples(pts_arr))
        ada = FixedSizeAdaptiveHull(max(8, r))
        for p in pts:
            ada.insert(p)
        hull = ada.hull()
        err = max(point_polygon_distance(hull, p) for p in pts)
        out.append(
            LowerBoundPoint(
                r=r,
                diameter=2.0 * radius,
                optimal_error=optimal_subsample_error(r, radius),
                adaptive_error=err,
                theory=2.0 * radius / (r * r),
            )
        )
    return out

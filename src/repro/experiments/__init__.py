"""Experiment harness: Table 1, scaling laws, lower bound, figures."""

from .metrics import (
    QualityMetrics,
    evaluate_summary,
    hull_distance,
    outside_stats,
    triangle_heights,
)
from .table1 import (
    DEFAULT_N,
    DEFAULT_R,
    ROTATIONS,
    THETA0,
    Table1Row,
    format_table1,
    run_table1,
    run_workload,
    table1_workloads,
)
from .scaling import (
    ScalingPoint,
    WorkPoint,
    error_scaling,
    loglog_slope,
    work_per_point,
)
from .lower_bound import (
    LowerBoundPoint,
    lower_bound_sweep,
    optimal_subsample_error,
)
from .figures import make_fig10
from .report import (
    full_report,
    lower_bound_markdown,
    scaling_markdown,
    table1_markdown,
)

__all__ = [
    "QualityMetrics", "evaluate_summary", "hull_distance", "outside_stats",
    "triangle_heights",
    "Table1Row", "run_table1", "run_workload", "table1_workloads",
    "format_table1", "DEFAULT_N", "DEFAULT_R", "ROTATIONS", "THETA0",
    "ScalingPoint", "WorkPoint", "error_scaling", "loglog_slope",
    "work_per_point",
    "LowerBoundPoint", "lower_bound_sweep", "optimal_subsample_error",
    "make_fig10",
    "table1_markdown", "scaling_markdown", "lower_bound_markdown",
    "full_report",
]

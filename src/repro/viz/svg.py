"""Dependency-free SVG rendering of hulls and uncertainty triangles.

Reproduces the Fig. 10 style of the paper: the data cloud, the sample
hull, the radial sample directions, and the uncertainty triangles drawn
on top.  Writes plain SVG text so the repository needs no plotting
dependency.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.adaptive_hull import AdaptiveHull
from ..core.uniform_hull import UniformHull
from ..core.uncertainty import UncertaintyTriangle
from ..geometry.vec import Point

__all__ = ["SvgCanvas", "render_summary"]


class SvgCanvas:
    """Minimal SVG document builder with a fitted world-to-view transform."""

    def __init__(self, width: int = 900, height: int = 450, margin: float = 20.0):
        self.width = width
        self.height = height
        self.margin = margin
        self._elements: List[str] = []
        self._bounds: Optional[Tuple[float, float, float, float]] = None

    def fit(self, points: Iterable[Point]) -> None:
        """Fit the view box to the given world points."""
        xs, ys = [], []
        for p in points:
            xs.append(p[0])
            ys.append(p[1])
        if not xs:
            raise ValueError("cannot fit an empty point set")
        self._bounds = (min(xs), min(ys), max(xs), max(ys))

    def _tx(self, p: Point) -> Tuple[float, float]:
        if self._bounds is None:
            raise ValueError("call fit() before drawing")
        x0, y0, x1, y1 = self._bounds
        sx = (self.width - 2 * self.margin) / max(x1 - x0, 1e-12)
        sy = (self.height - 2 * self.margin) / max(y1 - y0, 1e-12)
        s = min(sx, sy)
        # y is flipped: SVG's y axis points down.
        return (
            self.margin + (p[0] - x0) * s,
            self.height - self.margin - (p[1] - y0) * s,
        )

    def circle(self, p: Point, radius: float = 1.0, fill: str = "#888") -> None:
        """Draw a fixed-pixel-radius dot at world point ``p``."""
        x, y = self._tx(p)
        self._elements.append(
            f'<circle cx="{x:.2f}" cy="{y:.2f}" r="{radius}" fill="{fill}"/>'
        )

    def polyline(
        self,
        pts: Sequence[Point],
        stroke: str = "#000",
        width: float = 1.0,
        close: bool = False,
        fill: str = "none",
    ) -> None:
        """Draw a world-space polyline/polygon."""
        if len(pts) < 2:
            return
        coords = " ".join(
            "{:.2f},{:.2f}".format(*self._tx(p)) for p in pts
        )
        tag = "polygon" if close else "polyline"
        self._elements.append(
            f'<{tag} points="{coords}" fill="{fill}" '
            f'stroke="{stroke}" stroke-width="{width}"/>'
        )

    def segment(
        self, a: Point, b: Point, stroke: str = "#999", width: float = 0.5
    ) -> None:
        """Draw a world-space line segment."""
        xa, ya = self._tx(a)
        xb, yb = self._tx(b)
        self._elements.append(
            f'<line x1="{xa:.2f}" y1="{ya:.2f}" x2="{xb:.2f}" y2="{yb:.2f}" '
            f'stroke="{stroke}" stroke-width="{width}"/>'
        )

    def text(self, p: Point, s: str, size: int = 12, fill: str = "#000") -> None:
        """Draw a text label anchored at world point ``p``."""
        x, y = self._tx(p)
        self._elements.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size}" '
            f'fill="{fill}" font-family="sans-serif">{s}</text>'
        )

    def to_svg(self) -> str:
        """Serialise the document."""
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n'
            f'  <rect width="100%" height="100%" fill="white"/>\n'
            f"  {body}\n</svg>\n"
        )

    def save(self, path: str) -> None:
        """Write the SVG file."""
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.to_svg())


def _triangles_of(summary) -> List[UncertaintyTriangle]:
    if isinstance(summary, AdaptiveHull):
        return list(summary.leaf_triangles())
    if isinstance(summary, UniformHull):
        return list(summary.edge_triangles())
    return []


def render_summary(
    summary,
    points: Sequence[Point],
    canvas: Optional[SvgCanvas] = None,
    max_points: int = 4000,
    show_directions: bool = True,
) -> SvgCanvas:
    """Render a summary over its data in the style of the paper's Fig. 10.

    Draws (a subsample of) the data points, the sample hull, the radial
    sample directions from the hull centroid, and the uncertainty
    triangles on top.
    """
    canvas = canvas or SvgCanvas()
    tris = _triangles_of(summary)
    extra = [t.apex for t in tris if t.apex is not None]
    canvas.fit(list(points) + list(summary.hull()) + extra)
    step = max(1, len(points) // max_points)
    for p in points[::step]:
        canvas.circle(p, radius=0.8, fill="#bbb")
    hull = summary.hull()
    if show_directions and hull:
        cx = sum(p[0] for p in hull) / len(hull)
        cy = sum(p[1] for p in hull) / len(hull)
        for v in summary.samples():
            canvas.segment((cx, cy), v, stroke="#ccc", width=0.5)
    for t in tris:
        if t.apex is not None:
            canvas.polyline(
                [t.a, t.apex, t.b], close=True, fill="#f4c2c2",
                stroke="#c33", width=0.7,
            )
    canvas.polyline(hull, close=True, stroke="#06c", width=1.5)
    for v in summary.samples():
        canvas.circle(v, radius=2.2, fill="#06c")
    return canvas

"""Dependency-free SVG visualisation (Fig. 10 style renderings)."""

from .svg import SvgCanvas, render_summary

__all__ = ["SvgCanvas", "render_summary"]

"""Picklable summary specifications.

The single-process layers pass summary *factories* around as closures
(``lambda: AdaptiveHull(32)``).  Closures do not cross process
boundaries, so the shard layer describes a scheme as data instead: a
:class:`SummarySpec` names a registered summary class and its
constructor kwargs, travels over a worker pipe as a plain dataclass,
and rebuilds the factory on the other side through the same scheme
registry the snapshot format uses
(:func:`repro.streams.io.scheme_registry`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..core.base import HullSummary
from ..streams.io import scheme_registry

__all__ = ["SummarySpec"]


@dataclass(frozen=True)
class SummarySpec:
    """A summary scheme as data: registered class name + constructor kwargs.

    Examples::

        SummarySpec("AdaptiveHull", {"r": 32})
        SummarySpec.of(AdaptiveHull, r=32)
        SummarySpec.for_summary(existing_summary)

    The spec doubles as a zero-argument factory (:meth:`build`), so it
    plugs directly into every factory-taking API —
    ``StreamEngine(spec.build)``, trackers, snapshot restore.
    """

    scheme: str
    config: Dict = field(default_factory=dict)

    def __post_init__(self):
        registry = scheme_registry()
        if self.scheme not in registry:
            known = ", ".join(sorted(registry))
            raise ValueError(
                f"unknown summary scheme {self.scheme!r} (known: {known})"
            )
        # Memoise the resolved class: build() sits on the per-key hot
        # path of every worker engine, and the registry lookup per
        # instantiation is pure overhead once the spec is validated.
        object.__setattr__(self, "_cls", registry[self.scheme])

    @classmethod
    def of(cls, scheme, **config) -> "SummarySpec":
        """Build a spec from a class (or its name) plus constructor kwargs."""
        name = scheme if isinstance(scheme, str) else scheme.__name__
        return cls(name, dict(config))

    @classmethod
    def for_summary(cls, summary: HullSummary) -> "SummarySpec":
        """The spec that recreates an equivalent empty summary."""
        return cls(type(summary).__name__, summary.get_config())

    @classmethod
    def coerce(cls, spec) -> "SummarySpec":
        """Accept a spec, a summary class, or a live summary instance."""
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, HullSummary):
            return cls.for_summary(spec)
        if isinstance(spec, type) and issubclass(spec, HullSummary):
            return cls.of(spec)
        raise TypeError(
            f"expected a SummarySpec, HullSummary class, or instance; "
            f"got {type(spec).__name__}"
        )

    def build(self) -> HullSummary:
        """Instantiate a fresh summary (the factory the spec describes)."""
        return self._cls(**self.config)

    def to_doc(self) -> Dict:
        """JSON-compatible form for the whole-ring snapshot header."""
        return {"class": self.scheme, "config": dict(self.config)}

    @classmethod
    def from_doc(cls, doc: Dict) -> "SummarySpec":
        """Inverse of :meth:`to_doc`."""
        return cls(doc["class"], dict(doc["config"]))

"""The shard worker: one :class:`~repro.engine.StreamEngine` per process.

Each worker owns the summaries for the keys its shard was assigned and
speaks a small request/reply protocol over a :mod:`multiprocessing`
pipe: every message is a ``(op, *args)`` tuple, every reply is
``("ok", result)`` or ``("err", message)``.

**Frame protocol.**  Messages cross the pipe through the zero-copy
transport layer (:mod:`repro.shard.transport`): a header frame (magic,
buffer lengths, pickled skeleton of the small structural parts) is
followed by one raw length-prefixed frame per NumPy buffer — batch
slices arrive as ``np.frombuffer`` views over the received bytes, and
on the ``shm`` transport large slices arrive via a named shared-memory
segment referenced from the header instead.  Replies travel the same
framed format (summary payloads use the :mod:`repro.streams.io`
snapshot documents — the same JSON-compatible form the on-disk
checkpoints use, so the IPC layer adds no second serialisation story).
``transport="pickle"`` falls back to the legacy one-pickle-per-message
``Connection.send`` path, kept as the measurable baseline.

**Worker-push partial reductions.**  Besides answering requests, the
worker maintains a *shard-level partial*: the canonical-order fold of
all its per-key summaries (exactly :meth:`StreamEngine.merged_summary`,
so parity with the in-process tier is structural, not coincidental).
The partial moves through three states:

* ``cold`` — no global query has ever hit this worker; ingest never
  pays a fold it may not need;
* ``dirty`` — a global query happened at some point, but the engine
  mutated since the partial was last folded;
* ``warm`` — the serialized partial is current; ``merged_state``
  queries return it without touching the engine.

The promotion from ``dirty`` to ``warm`` is *opportunistic*: whenever
the request pipe is idle (no pending message) the main loop folds the
partial before blocking on ``recv`` — ingest idle time pays for query
latency, and the parent's global ``merged_summary`` fetches one small
pre-reduced state per shard instead of waiting for every worker to
fold its whole key set on the query path.

The worker is deliberately dumb: it never touches the hash ring and
trusts the parent's routing.  Global answers are produced by the parent
tree-reducing the per-shard ``merged_state`` replies.
"""

from __future__ import annotations

import time
from dataclasses import asdict
from typing import Optional

from ..engine import StreamEngine
from ..obs import metrics as OBS
from ..obs import registry as obs_registry
from ..obs.trace import resume as trace_resume
from ..obs.trace import span as trace_span
from ..streams.io import summary_from_state, summary_state
from .spec import SummarySpec
from .transport import TransportError, make_worker_pipe

__all__ = ["shard_worker_main"]


class _ShardServer:
    """Dispatches protocol ops against the worker's engine."""

    def __init__(
        self,
        spec: SummarySpec,
        max_streams: Optional[int] = None,
        window=None,
        push: bool = True,
    ):
        self.spec = spec
        self.max_streams = max_streams
        self.window = window
        self.engine = StreamEngine(
            spec.build, max_streams=max_streams, window=window
        )
        # Worker-push partial reduction state (see module docstring):
        # ``_partial`` is the serialized canonical-order fold of every
        # local summary, ``_partial_wanted`` flips on the first global
        # query (cold -> dirty), ``_partial`` is None while dirty.
        self._push = push
        self._partial: Optional[dict] = None
        self._partial_wanted = False
        self.partials_reduced = 0  # idle-time folds
        self.partials_served = 0  # queries answered from the warm partial
        # Chaos/testing hook: seconds slept before handling each op.
        self.latency = 0.0

    # Each op_* method is one protocol verb; the result travels back as
    # the "ok" payload through the frame transport (summaries as
    # streams.io state documents, arrays as raw buffer frames).

    def _mutated(self) -> None:
        """Engine state changed: a warm partial is stale (dirty)."""
        self._partial = None

    def idle_reduce(self) -> bool:
        """Fold the shard-level partial while the pipe is idle; returns
        True when a fold actually ran (dirty -> warm)."""
        if not (self._push and self._partial_wanted):
            return False
        if self._partial is not None:
            return False
        self._partial = summary_state(self.engine.merged_summary(None))
        self.partials_reduced += 1
        return True

    def op_ingest_arrays(self, keys, points, ts=None, watermark=None):
        # ``watermark`` rides along on bounded-lateness rings: the
        # parent pre-screened the slice and computed the global
        # watermark, so every shard releases its reorder buffers at
        # the same deterministic cut.
        self._mutated()
        return self.engine.ingest_arrays(
            keys, points, ts=ts, watermark=watermark
        )

    def op_insert(self, key, x, y, ts=None, watermark=None):
        self._mutated()
        return self.engine.insert(key, x, y, ts=ts, watermark=watermark)

    def op_advance_time(self, now, watermark=None):
        # The parent's subscribers need the keys whose windows expired
        # buckets, exactly as local subscribers would see them.
        self._mutated()
        return self.engine.advance_time_detail(now, watermark=watermark)

    def op_keys(self):
        return self.engine.keys()

    def op_hull(self, key):
        return self.engine.hull(key)

    def op_summary_state(self, key, create=False):
        if create:
            # May create an empty summary — the key set changed.
            self._mutated()
            summary = self.engine.summary(key)
        else:
            summary = self.engine.get(key)
        return None if summary is None else summary_state(summary)

    def op_merged_state(self, keys=None):
        if keys is None:
            self._partial_wanted = True
            if self._push and self._partial is not None:
                self.partials_served += 1
                OBS.PARTIAL_CACHE_HIT.inc()
                return self._partial
            OBS.PARTIAL_CACHE_MISS.inc()
            state = summary_state(self.engine.merged_summary(None))
            if self._push:
                self._partial = state
            return state
        return summary_state(self.engine.merged_summary(keys))

    def op_stats(self):
        return {
            **asdict(self.engine.stats()),
            "partials_reduced": self.partials_reduced,
            "partials_served": self.partials_served,
        }

    def op_set_latency(self, seconds):
        # Chaos/testing hook: makes this worker slow without making it
        # wrong — every subsequent op sleeps first, so the test layer
        # can prove queries in flight survive a straggler shard.
        self.latency = float(seconds)
        return True

    def op_snapshot_state(self):
        return self.engine.snapshot_state()

    def op_load_snapshot(self, doc):
        self._mutated()
        self.engine = StreamEngine.from_snapshot_state(
            doc,
            self.spec.build,
            max_streams=self.max_streams,
            window=self.window,
        )
        return len(self.engine)

    def op_adopt_buffer(self, key, buffer_doc):
        # Re-sharded restore: not-yet-released reorder-buffer records
        # follow their key onto this shard's engine.
        self._mutated()
        self.engine.adopt_pending(key, buffer_doc)
        return True

    def op_extract(self, keys):
        # Live resharding: hand the listed keys' whole state (summary
        # snapshot + pending reorder buffer) to the parent, removing
        # them here.  Keys with no local state are skipped.
        out = []
        for key in keys:
            got = self.engine.extract(key)
            if got is None:
                continue
            summary, buffer_doc = got
            state = None if summary is None else summary_state(summary)
            out.append([key, state, buffer_doc])
        if out:
            self._mutated()
        return out

    def op_adopt(self, key, snapshot):
        self._mutated()
        summary = summary_from_state(
            snapshot, factory=self.engine.summary_factory
        )
        self.engine.adopt(key, summary)
        # Re-derive this engine's ingest counter from the adopted
        # summary's own stream length, so per-shard stats stay truthful
        # after a re-sharded restore re-deals the keys.
        self.engine.points_ingested += int(getattr(summary, "points_seen", 0) or 0)
        return True


def shard_worker_main(
    conn,
    spec: SummarySpec,
    max_streams: Optional[int] = None,
    window=None,
    transport: str = "frames",
    push: bool = True,
) -> None:
    """Worker process entry point: serve requests until ``stop`` or EOF.

    Errors raised by an op are caught and reported as ``("err", msg)``
    replies — a malformed batch must not take the whole shard down.  A
    *transport*-level error is different: the frame stream may be
    desynchronised, so the worker reports it once and shuts down rather
    than guess at frame boundaries.  An EOF on the pipe (parent died or
    closed) shuts the worker down cleanly.  ``window`` (a
    :class:`~repro.window.WindowConfig`) makes this shard's engine
    windowed, exactly like the parent's config; ``transport`` selects
    the pipe protocol (``frames``/``shm``/``pickle``); ``push`` enables
    the idle-time partial reductions.
    """
    pipe = make_worker_pipe(conn, transport)
    # On fork start methods the child inherits the parent's metric
    # counts; zero them so this worker's registry describes only its
    # own work (the parent merges worker snapshots back via ``stats``).
    obs_registry().reset()
    server = _ShardServer(spec, max_streams=max_streams, window=window, push=push)
    try:
        while True:
            # Opportunistic work: only when no request is waiting.
            if not pipe.poll(0) and server.idle_reduce():
                continue  # re-check the pipe between folds
            try:
                msg = pipe.recv()
            except EOFError:
                return
            except TransportError as exc:
                try:
                    pipe.send(("err", f"transport desync: {exc}"))
                finally:
                    return
            if server.latency:
                time.sleep(server.latency)
            op, args = msg[0], msg[1:]
            trace_ctx = None
            if op == "~trace":
                # Parent-side tracing wrapped the real message so this
                # worker's spans join the caller's trace tree.
                trace_ctx, inner = args[0], args[1]
                op, args = inner[0], tuple(inner[1:])
            if op == "stop":
                pipe.send(("ok", None))
                return
            handler = getattr(server, f"op_{op}", None)
            if handler is None:
                pipe.send(("err", f"unknown shard op {op!r}"))
                continue
            try:
                if trace_ctx is not None:
                    with trace_resume(trace_ctx):
                        with trace_span(f"shard.{op}"):
                            result = handler(*args)
                else:
                    result = handler(*args)
            except Exception as exc:  # noqa: BLE001 - protocol boundary
                pipe.send(("err", f"{type(exc).__name__}: {exc}"))
            else:
                pipe.send(("ok", result))
    finally:
        pipe.close()

"""The shard worker: one :class:`~repro.engine.StreamEngine` per process.

Each worker owns the summaries for the keys its shard was assigned and
speaks a small request/reply protocol over a :mod:`multiprocessing`
pipe: every message is a ``(op, *args)`` tuple, every reply is
``("ok", result)`` or ``("err", message)``.  Summaries cross the pipe
exclusively through the :mod:`repro.streams.io` snapshot format — the
same JSON-compatible documents the on-disk checkpoints use — so the
IPC layer adds no second serialisation story.

The worker is deliberately dumb: it never touches the hash ring and
trusts the parent's routing.  Global answers are produced by the parent
tree-reducing the per-shard ``merged_state`` replies.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Optional

from ..engine import StreamEngine
from ..streams.io import summary_from_state, summary_state
from .spec import SummarySpec

__all__ = ["shard_worker_main"]


class _ShardServer:
    """Dispatches protocol ops against the worker's engine."""

    def __init__(
        self,
        spec: SummarySpec,
        max_streams: Optional[int] = None,
        window=None,
    ):
        self.spec = spec
        self.max_streams = max_streams
        self.window = window
        self.engine = StreamEngine(
            spec.build, max_streams=max_streams, window=window
        )

    # Each op_* method is one protocol verb; the result is pickled back
    # verbatim as the "ok" payload.

    def op_ingest_arrays(self, keys, points, ts=None, watermark=None):
        # ``watermark`` rides along on bounded-lateness rings: the
        # parent pre-screened the slice and computed the global
        # watermark, so every shard releases its reorder buffers at
        # the same deterministic cut.
        return self.engine.ingest_arrays(
            keys, points, ts=ts, watermark=watermark
        )

    def op_insert(self, key, x, y, ts=None, watermark=None):
        return self.engine.insert(key, x, y, ts=ts, watermark=watermark)

    def op_advance_time(self, now, watermark=None):
        # The parent's subscribers need the keys whose windows expired
        # buckets, exactly as local subscribers would see them.
        return self.engine.advance_time_detail(now, watermark=watermark)

    def op_keys(self):
        return self.engine.keys()

    def op_hull(self, key):
        return self.engine.hull(key)

    def op_summary_state(self, key, create=False):
        summary = self.engine.summary(key) if create else self.engine.get(key)
        return None if summary is None else summary_state(summary)

    def op_merged_state(self, keys=None):
        return summary_state(self.engine.merged_summary(keys))

    def op_stats(self):
        return asdict(self.engine.stats())

    def op_snapshot_state(self):
        return self.engine.snapshot_state()

    def op_load_snapshot(self, doc):
        self.engine = StreamEngine.from_snapshot_state(
            doc,
            self.spec.build,
            max_streams=self.max_streams,
            window=self.window,
        )
        return len(self.engine)

    def op_adopt_buffer(self, key, buffer_doc):
        # Re-sharded restore: not-yet-released reorder-buffer records
        # follow their key onto this shard's engine.
        self.engine.adopt_pending(key, buffer_doc)
        return True

    def op_adopt(self, key, snapshot):
        summary = summary_from_state(
            snapshot, factory=self.engine.summary_factory
        )
        self.engine.adopt(key, summary)
        # Re-derive this engine's ingest counter from the adopted
        # summary's own stream length, so per-shard stats stay truthful
        # after a re-sharded restore re-deals the keys.
        self.engine.points_ingested += int(getattr(summary, "points_seen", 0) or 0)
        return True


def shard_worker_main(
    conn,
    spec: SummarySpec,
    max_streams: Optional[int] = None,
    window=None,
) -> None:
    """Worker process entry point: serve requests until ``stop`` or EOF.

    Errors raised by an op are caught and reported as ``("err", msg)``
    replies — a malformed batch must not take the whole shard down.  An
    EOF on the pipe (parent died or closed) shuts the worker down
    cleanly.  ``window`` (a :class:`~repro.window.WindowConfig`) makes
    this shard's engine windowed, exactly like the parent's config.
    """
    server = _ShardServer(spec, max_streams=max_streams, window=window)
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                return
            op, args = msg[0], msg[1:]
            if op == "stop":
                conn.send(("ok", None))
                return
            handler = getattr(server, f"op_{op}", None)
            if handler is None:
                conn.send(("err", f"unknown shard op {op!r}"))
                continue
            try:
                result = handler(*args)
            except Exception as exc:  # noqa: BLE001 - protocol boundary
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
            else:
                conn.send(("ok", result))
    finally:
        conn.close()

"""The sharded multi-process ingestion engine.

:class:`ShardedEngine` is the parallel tier above
:class:`~repro.engine.StreamEngine`: keys are routed across N shards by
consistent hashing (:class:`~repro.shard.hashing.HashRing`), each shard
runs a full engine in its own worker process
(:func:`~repro.shard.worker.shard_worker_main`), and batches fan out to
all owning workers concurrently — the parent sends every shard its
slice before collecting any reply, so W workers ingest W sub-batches in
parallel.

Because every key lives on exactly one shard and arrives there in
stream order, **per-key results are bit-for-bit identical** to a single
:class:`StreamEngine` fed the same records.  Global answers — the
all-keys hull, diameter, width — come from the merge layer: each worker
folds its local summaries into one per-shard summary
(:meth:`StreamEngine.merged_summary`), and the parent tree-reduces the
K shard summaries (:func:`~repro.core.base.tree_merge`), preserving the
schemes' error bounds.

Snapshot/restore covers the whole ring: one JSON document holds every
shard engine's state (the :mod:`repro.streams.io` summary format all
the way down).  Restoring onto the *same* worker count reloads each
engine wholesale; restoring onto a *different* count re-routes each
key's summary through the new ring — consistent hashing keeps the
reshuffle proportional to the resize.

The ring implements the same
:class:`~repro.engine.protocol.EngineProtocol` surface as the
in-process tier — single-record ``insert``, parent-side standing-query
``subscribe``, ``snapshot_state``/``from_snapshot_state``, and the
``merged_hull``/``diameter``/``width`` query folds — through the shared
mixins in :mod:`repro.engine.common`, so the two tiers are drop-in
interchangeable behind one contract.

**Failure domain.**  ``standbys=`` runs each shard as a *lane group*:
one primary worker plus N standby workers, every request teed to all
live lanes.  The workers are deterministic, so a standby that applied
the same slices holds bit-identical state — when the primary dies at
the pipe layer the first surviving lane is promoted in place and the
ring keeps serving instead of failing the shard.  ``durability=``
attaches a write-ahead log (:mod:`repro.durable`) at the parent, where
batches are framed once for the whole ring; :meth:`resize` grows or
shrinks the worker count online, migrating only the proportional key
slice consistent hashing displaces.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..core.base import HullSummary, coerce_point, tree_merge
from ..core.batch import as_key_array, as_point_array, as_ts_array
from ..engine.common import (
    BaseStats,
    EventTimeAPI,
    ExtentQueryAPI,
    SubscriberAPI,
    Subscription,
    check_snapshot_doc,
    split_records,
    unique_key_inverse,
    validate_ts_batch,
)
from ..engine.time import EventClock, TimePolicy, late_split
from ..geometry.vec import Point
from ..obs import merge_snapshots
from ..obs import metrics as OBS
from ..obs import registry as obs_registry
from ..obs.trace import current_context, span, tracing
from ..streams.io import summary_from_state
from ..window import WindowConfig, windowed_factory
from .hashing import HashRing
from .spec import SummarySpec
from .transport import (
    TRANSPORTS,
    TransportError,
    make_parent_pipe,
    shm_available,
)
from .worker import shard_worker_main

__all__ = ["ShardedEngine", "ShardStats", "ShardError"]

PathLike = Union[str, Path]

SHARD_FORMAT = "repro.shard"
SHARD_FORMAT_VERSION = 1


class ShardError(RuntimeError):
    """A shard worker reported an error or died mid-request."""


@dataclass
class ShardStats(BaseStats):
    """Aggregate bookkeeping across the whole ring.

    The shared fields (and the late/buffered ``__str__`` suffix) come
    from :class:`~repro.engine.common.BaseStats` so the two tiers'
    stats cannot drift; the bucket fields aggregate the shards'
    sliding-window layers and stay zero on unwindowed rings (see
    :class:`~repro.engine.EngineStats`).  ``obs`` holds the parent
    registry snapshot merged with every worker's, so one document
    carries the whole ring's metrics."""

    shards: int = 0
    per_shard: List[Dict] = field(default_factory=list)
    #: Worker-push partial reductions: idle-time folds across the ring
    #: and global queries answered from a warm per-shard partial.
    partials_reduced: int = 0
    partials_served: int = 0
    #: Replica lanes: standby workers currently alive across the ring,
    #: and how many primary deaths have been absorbed by promotion.
    standbys: int = 0
    promotions: int = 0

    def __str__(self) -> str:
        loads = "/".join(str(s["streams"]) for s in self.per_shard)
        base = (
            f"shards={self.shards} streams={self.streams} "
            f"points={self.points_ingested:,} batches={self.batches_ingested} "
            f"stored={self.sample_points} load={loads}"
        ) + self._suffix()
        if self.partials_reduced or self.partials_served:
            base += (
                f" partials={self.partials_reduced}"
                f"/{self.partials_served} served"
            )
        if self.standbys or self.promotions:
            base += (
                f" standbys={self.standbys} promotions={self.promotions}"
            )
        return base


def _default_context():
    """Prefer fork (fast start, inherits the imported package); fall
    back to spawn where fork is unavailable."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class _Lane:
    """One worker process serving a shard slot.

    A shard is a *lane group*: lane 0 is the primary (its replies are
    the shard's answers), later lanes are standbys applying the same
    deterministic requests so their engines hold bit-identical state.
    ``pending`` counts requests sent but not yet collected on this
    lane's pipe — the unit the reply drain must respect per lane."""

    __slots__ = ("conn", "pipe", "proc", "pending")

    def __init__(self, conn, pipe, proc):
        self.conn = conn
        self.pipe = pipe
        self.proc = proc
        self.pending = 0


class ShardedEngine(SubscriberAPI, ExtentQueryAPI, EventTimeAPI):
    """Keyed hull summaries sharded across worker processes.

    Args:
        spec: which summary scheme each key gets — a
            :class:`~repro.shard.spec.SummarySpec` (e.g.
            ``SummarySpec.of(AdaptiveHull, r=32)``); a plain
            ``HullSummary`` subclass or instance is coerced.
        shards: number of worker processes (>= 1).
        replicas: virtual nodes per shard on the hash ring.
        max_streams: optional per-shard LRU bound (passed to each
            worker's engine).
        start_method: multiprocessing start method override
            ("fork"/"spawn"/"forkserver"); default picks fork when
            available.
        window: optional :class:`~repro.window.WindowConfig` (or kwargs
            dict), propagated to every worker: each key then gets a
            windowed summary, ingestion accepts timestamps,
            :meth:`advance_time` broadcasts expiry, and global queries
            tree-reduce the per-shard *windowed views*.  Timestamped
            batches must be globally time-ordered (each batch
            non-decreasing and no earlier than the previous batch /
            ``advance_time``) so the parent can reject violations
            atomically before any shard ingests — unless the config
            sets ``max_delay``, which opts the ring into
            bounded-lateness event time: the parent judges lateness
            in arrival order, counts-and-drops records beyond the
            watermark, and ships the global watermark with every
            slice so the workers' reorder buffers release at one
            deterministic cut (per-key results stay bit-identical to
            a single engine fed the same arrivals).
        transport: the pipe protocol — ``"frames"`` (default,
            zero-copy raw-frame messaging), ``"shm"`` (frames plus a
            shared-memory double-buffer ring for large batch slices),
            or ``"pickle"`` (the legacy one-pickle-per-message
            baseline).  Results are bit-identical across transports;
            only the wire cost differs.
        worker_push: enable worker-push partial reductions — once a
            global query has been seen, each worker folds its shard-
            level partial during ingest idle time, so
            :meth:`merged_summary` (and the hull/diameter/width folds
            on top of it) fetch one small pre-reduced state per shard
            instead of paying the whole fold on the query path.
            ``False`` recomputes per query (the cold tree-reduce).
        standbys: replica workers per shard (default 0).  Each shard's
            requests tee to ``1 + standbys`` lanes; determinism keeps
            the lanes bit-identical, so when a primary dies at the pipe
            layer the first surviving standby is promoted in place and
            the shard keeps serving (promotions are recorded in
            :attr:`promotions` and in the ring stats).  With
            ``standbys=0`` a dead worker fails its shard fast, exactly
            as before.
        durability: optional :class:`~repro.durable.DurabilityConfig`
            (or a bare WAL directory path).  Batches are framed into a
            write-ahead log at the parent *before* fan-out, so a crash
            of the whole process recovers via
            :func:`~repro.durable.recover_sharded_engine` — snapshot
            plus tail replay, bit-identical by determinism.

    The engine is a context manager; on exit the workers are stopped
    and joined.  All public methods raise :class:`ShardError` when a
    worker reports a failure or has died.  Per-batch parent-side costs
    are split out in :attr:`timings` (``partition_s`` routing/slicing,
    ``send_s`` wire writes, ``collect_s`` waiting on acks).
    """

    def __init__(
        self,
        spec,
        *,
        shards: int = 2,
        replicas: int = 64,
        max_streams: Optional[int] = None,
        start_method: Optional[str] = None,
        window=None,
        transport: str = "frames",
        worker_push: bool = True,
        on_late=None,
        standbys: int = 0,
        durability=None,
    ):
        if shards < 1:
            raise ValueError("ShardedEngine needs at least one shard")
        if standbys < 0:
            raise ValueError("standbys must be >= 0")
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r} "
                f"(known: {', '.join(TRANSPORTS)})"
            )
        if transport == "shm" and not shm_available():
            raise ValueError(
                "the shm transport needs multiprocessing.shared_memory, "
                "which this platform lacks — use transport='frames'"
            )
        self.transport = transport
        self.worker_push = bool(worker_push)
        self.spec = SummarySpec.coerce(spec)
        self.window = WindowConfig.coerce(window)
        self._clock: Optional[float] = None  # high-water event time (strict)
        # Event-time policy: under bounded lateness the *parent* owns
        # the watermark clock and the late-drop accounting — judging
        # lateness and computing the watermark here, before any shard
        # sees a record, is what keeps release order deterministic
        # across shard layouts and batch rejections atomic.
        self.time_policy = (
            self.window.time_policy
            if self.window is not None and self.window.timed
            else TimePolicy.strict()
        )
        self._event_clock: Optional[EventClock] = (
            EventClock(self.time_policy.max_delay)
            if self.time_policy.bounded
            else None
        )
        hook = on_late if on_late is not None else (
            self.window.on_late if self.window is not None else None
        )
        if hook is not None and not self.time_policy.bounded:
            raise ValueError(
                "on_late requires a bounded-lateness window (max_delay)"
            )
        self._on_late = hook
        self._late_drops: Dict[Hashable, int] = {}
        self.num_shards = shards
        self.ring = HashRing(shards, replicas=replicas)
        self.points_ingested = 0
        self.batches_ingested = 0
        self._subscriptions: List[Subscription] = []
        # Route decisions are memoised per key: consistent hashing costs
        # one BLAKE2 digest per *distinct* key, not per record.  The
        # memo is bounded (workers may LRU-evict keys, but the parent
        # would otherwise remember every key ever seen): on overflow it
        # is simply cleared — recomputing a route is pure and cheap.
        self._route_cache: Dict[Hashable, int] = {}
        # Batch-level routing cache: monitoring streams send the same
        # key population batch after batch, so the (unique keys ->
        # shard ids) mapping from the previous batch usually applies
        # verbatim — one array comparison replaces the per-key ring
        # walk, keeping per-batch partitioning off the parent hot path.
        self._batch_route: Optional[Tuple[np.ndarray, np.ndarray, List]] = None
        #: Parent-side cost split, accumulated per ingest batch.
        self.timings: Dict[str, float] = {
            "partition_s": 0.0,
            "send_s": 0.0,
            "collect_s": 0.0,
        }
        # Per-shard metric children resolved once (hot-path increments
        # then skip the label lookup).
        self._send_hist = [
            OBS.SHARD_SEND_SECONDS.labels(str(i)) for i in range(shards)
        ]
        self._collect_hist = [
            OBS.SHARD_COLLECT_SECONDS.labels(str(i)) for i in range(shards)
        ]
        self._inflight = [
            OBS.SHARD_INFLIGHT.labels(str(i)) for i in range(shards)
        ]
        self._closed = False
        self._ctx = (
            multiprocessing.get_context(start_method)
            if start_method is not None
            else _default_context()
        )
        # Callbacks are parent-side policy: lateness is judged (and
        # dead-lettered) before any worker sees a record, so the config
        # shipped to workers must not carry the hook (it may not even
        # pickle under spawn).
        self._worker_window = (
            replace(self.window, on_late=None)
            if self.window is not None and self.window.on_late is not None
            else self.window
        )
        self._max_streams = max_streams
        self.standbys = int(standbys)
        #: Promotion events, oldest first: {"shard", "standbys_left"}.
        self.promotions: List[Dict] = []
        #: Resize events, oldest first (see :meth:`resize`).
        self.resize_events: List[Dict] = []
        self._wal = None
        self._dead_letter_log = None
        # Lane groups per shard; _conns/_pipes/_procs mirror the current
        # primaries (index = shard) for callers that reach into the ring.
        self._lanes: List[List[_Lane]] = []
        self._conns: List = []
        self._pipes: List = []
        self._procs: List = []
        try:
            for i in range(shards):
                self._lanes.append(
                    [self._spawn_lane(i, role) for role in range(standbys + 1)]
                )
            self._sync_primary_views()
            if durability is not None:
                self.attach_durability(durability, require_empty=True)
        except Exception:
            self.close()
            raise

    def _spawn_lane(self, shard: int, role: int = 0) -> _Lane:
        """Start one worker process for ``shard`` (role 0 = primary)."""
        parent_conn, child_conn = self._ctx.Pipe()
        name = f"repro-shard-{shard}" + (f"-standby{role}" if role else "")
        proc = self._ctx.Process(
            target=shard_worker_main,
            args=(
                child_conn,
                self.spec,
                self._max_streams,
                self._worker_window,
                self.transport,
                self.worker_push,
            ),
            name=name,
            daemon=True,
        )
        proc.start()
        child_conn.close()  # parent keeps only its end: EOF propagates
        return _Lane(
            parent_conn, make_parent_pipe(parent_conn, self.transport), proc
        )

    def _sync_primary_views(self) -> None:
        """Refresh the primary-lane mirrors after promotion or resize.
        A shard whose lanes are all dead keeps its stale (dead) entries
        so per-shard indexing stays valid for external probes."""
        conns, pipes, procs = [], [], []
        for i, lanes in enumerate(self._lanes):
            if lanes:
                conns.append(lanes[0].conn)
                pipes.append(lanes[0].pipe)
                procs.append(lanes[0].proc)
            else:
                conns.append(self._conns[i] if i < len(self._conns) else None)
                pipes.append(self._pipes[i] if i < len(self._pipes) else None)
                procs.append(self._procs[i] if i < len(self._procs) else None)
        self._conns, self._pipes, self._procs = conns, pipes, procs

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def close(self) -> None:
        """Stop every worker (standby lanes included), join its process,
        and seal the write-ahead / dead-letter logs (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._stop_lanes(
            [lane for lanes in getattr(self, "_lanes", []) for lane in lanes]
        )
        if getattr(self, "_wal", None) is not None:
            self._wal.close()
        if getattr(self, "_dead_letter_log", None) is not None:
            self._dead_letter_log.close()

    @staticmethod
    def _stop_lanes(lanes: Sequence[_Lane]) -> None:
        """Stop-message, drain, close, and join a set of lanes."""
        for lane in lanes:
            try:
                lane.pipe.send(("stop",))
            except (BrokenPipeError, OSError, TransportError):
                pass
        for lane in lanes:
            try:
                if lane.pipe.poll(1.0):
                    lane.pipe.recv()
            except (EOFError, OSError, TransportError):
                pass
            # Closes the connection and releases any shared-memory
            # segments the transport owns.
            lane.pipe.close()
        for lane in lanes:
            lane.proc.join(timeout=5.0)
            if lane.proc.is_alive():  # pragma: no cover - stuck worker
                lane.proc.terminate()
                lane.proc.join(timeout=1.0)

    # -- durability --------------------------------------------------------

    @property
    def wal(self):
        """The attached :class:`~repro.durable.WalWriter`, or None."""
        return self._wal

    def _wal_meta(self) -> dict:
        return {
            "tier": "shard",
            "spec": self.spec.to_doc(),
            "window": self.window.to_doc() if self.window else None,
            "shards": self.num_shards,
        }

    def attach_durability(self, durability, *, require_empty: bool = False):
        """Attach a write-ahead log (and dead-letter queue) to the ring.

        Batches are framed once, parent-side, before fan-out — one log
        covers the whole ring regardless of shard layout, and recovery
        (:func:`~repro.durable.recover_sharded_engine`) may replay it
        onto any worker count.  ``require_empty`` refuses a directory
        that already holds a log (the constructor path: silently
        appending to someone else's log is never right there)."""
        from ..durable.deadletter import attach_dead_letters
        from ..durable.wal import DurabilityConfig, WalError, WalWriter

        if self._wal is not None:
            raise WalError("engine already has a write-ahead log attached")
        if not isinstance(durability, DurabilityConfig):
            durability = DurabilityConfig(durability)
        self._wal = WalWriter(
            durability, meta=self._wal_meta(), require_empty=require_empty
        )
        if durability.dead_letters:
            self._dead_letter_log = attach_dead_letters(
                self, durability.wal_dir
            )
        return self._wal

    def _maybe_compact(self) -> None:
        if self._wal is not None and self._wal.should_compact():
            self._wal.write_snapshot(self.snapshot_state())

    # -- worker RPC --------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ShardError("ShardedEngine is closed")

    def _drop_lane(self, shard: int, lane: _Lane) -> None:
        """Write a dead lane off the shard.  When the dead lane was the
        primary and standbys survive, the first survivor is promoted in
        place — its engine holds bit-identical state (same deterministic
        requests), so the shard keeps serving without replay."""
        lanes = self._lanes[shard]
        if lane not in lanes:
            return
        was_primary = lanes[0] is lane
        lanes.remove(lane)
        try:
            lane.pipe.close()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
        if lane.proc.is_alive():
            lane.proc.terminate()
        lane.proc.join(timeout=1.0)
        if was_primary and lanes:
            self._sync_primary_views()
            OBS.REPLICA_PROMOTIONS.labels(str(shard)).inc()
            self.promotions.append(
                {"shard": shard, "standbys_left": len(lanes) - 1}
            )

    def _request(self, shard: int, op: str, *args) -> None:
        """Tee one request to every live lane of ``shard``.  A lane
        whose send fails is dropped (possibly promoting a standby);
        the request only errors when *no* lane accepted it."""
        msg = (op,) + args
        if tracing():
            # Propagate the active trace/span ids across the pipe so a
            # worker's spans share the batch's trace id (the worker
            # unwraps "~trace" and resumes the context before dispatch).
            ctx = current_context()
            if ctx is not None:
                msg = ("~trace", ctx, msg)
        t0 = time.perf_counter()
        sent = 0
        last_exc: Optional[BaseException] = None
        for lane in list(self._lanes[shard]):
            try:
                lane.pipe.send(msg)
            except (BrokenPipeError, OSError) as exc:
                last_exc = exc
                self._drop_lane(shard, lane)
            else:
                lane.pending += 1
                sent += 1
        if not sent:
            raise ShardError(
                f"shard {shard} is gone: {last_exc or 'no live workers'}"
            ) from last_exc
        self._send_hist[shard].observe(time.perf_counter() - t0)
        self._inflight[shard].inc()

    def _collect(self, shard: int):
        """Collect one reply from every pending lane of ``shard``.  The
        first live lane's reply (the primary's, when it survives) is
        the shard's answer; a lane that dies mid-reply is dropped —
        only when *every* lane died does the shard error surface."""
        t0 = time.perf_counter()
        result = None
        got = False
        last_exc: Optional[BaseException] = None
        desync: Optional[TransportError] = None
        try:
            for lane in [l for l in self._lanes[shard] if l.pending > 0]:
                lane.pending -= 1
                try:
                    reply = lane.pipe.recv()
                except (EOFError, OSError) as exc:
                    if last_exc is None:
                        last_exc = exc
                    self._drop_lane(shard, lane)
                    continue
                except TransportError as exc:
                    # The reply stream is unreadable — a desynchronised
                    # frame cannot be skipped safely, so this lane is
                    # written off.
                    if desync is None:
                        desync = exc
                    self._drop_lane(shard, lane)
                    continue
                if not got:
                    result = reply
                    got = True
        finally:
            self._collect_hist[shard].observe(time.perf_counter() - t0)
            self._inflight[shard].dec()
        if not got:
            if desync is not None:
                raise ShardError(
                    f"shard {shard} reply stream desynchronised: {desync}"
                ) from desync
            raise ShardError(f"shard {shard} died mid-request") from last_exc
        status, payload = result
        if status != "ok":
            raise ShardError(f"shard {shard}: {payload}")
        return payload

    def _call(self, shard: int, op: str, *args):
        self._check_open()
        self._request(shard, op, *args)
        return self._collect(shard)

    def _collect_all(self, shards: Sequence[int]) -> List:
        """Collect one reply per listed shard, draining every pending
        reply even when one errors: abandoning a queued reply would
        permanently desynchronise that shard's request/reply pipe.  The
        first error is raised after the drain."""
        payloads = []
        first_error: Optional[Exception] = None
        for i in shards:
            try:
                payloads.append(self._collect(i))
            except ShardError as exc:
                payloads.append(None)
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return payloads

    def _send_all(
        self, requests: Sequence[Tuple[int, tuple]]
    ) -> Tuple[List[int], Optional[Exception]]:
        """Send every request, never aborting mid-loop: a dead shard
        must not leave the *live* shards with requests unsent or (worse)
        replies pending but uncollected — that would desynchronise
        pipes that are still healthy.  Returns the shards actually sent
        to and the first send failure."""
        sent: List[int] = []
        first_error: Optional[Exception] = None
        for shard, msg in requests:
            try:
                self._request(shard, *msg)
                sent.append(shard)
            except ShardError as exc:
                if first_error is None:
                    first_error = exc
        return sent, first_error

    def _broadcast(self, op: str, *args) -> List:
        """Send ``op`` to every shard, then collect — requests overlap.
        On a dead shard the healthy replies are still drained before
        the error surfaces, so the survivors stay usable."""
        self._check_open()
        msg = (op,) + args
        sent, first_error = self._send_all(
            [(i, msg) for i in range(self.num_shards)]
        )
        try:
            payloads = self._collect_all(sent)
        except ShardError as exc:
            if first_error is None:
                first_error = exc
            payloads = []
        if first_error is not None:
            raise first_error
        return payloads

    # -- routing -----------------------------------------------------------

    #: Distinct keys memoised before the route cache resets.
    _ROUTE_CACHE_LIMIT = 1 << 18

    def shard_for(self, key: Hashable) -> int:
        """Which shard owns ``key`` (stable across processes/sessions)."""
        if isinstance(key, np.generic):
            key = key.item()
        shard = self._route_cache.get(key)
        if shard is None:
            shard = self.ring.shard_for(key)
            if len(self._route_cache) >= self._ROUTE_CACHE_LIMIT:
                self._route_cache.clear()
            self._route_cache[key] = shard
        return shard

    # -- ingestion ---------------------------------------------------------

    def _check_ring_ts(
        self, ts_arr: Optional[np.ndarray], n: int
    ) -> None:
        """Parent-side timestamp policy for a windowed ring.  Under the
        strict (default) policy the batch must be globally
        non-decreasing and start no earlier than the high-water clock —
        a sufficient condition for every worker to accept its slice,
        which keeps a rejection atomic across shards (nothing is sent
        on failure).  Under bounded lateness ordering is no longer an
        error (the reorder layer owns it) and only finiteness is
        enforced.  Validation only: clocks advance in :meth:`_fan_out`
        once the batch is routed, so a later routing error cannot
        poison subsequent retries."""
        if ts_arr is None:
            if n and self.window is not None and self.window.timed:
                raise ValueError(
                    "time-based windows require a ts on every record"
                )
            return
        if self.window is None:
            raise ValueError("ts requires a windowed engine")
        validate_ts_batch(
            ts_arr, self._clock, "sharded ring: ", policy=self.time_policy
        )

    # ``watermark`` / ``late_drops`` / ``late_dropped`` come from
    # EventTimeAPI (shared with the in-process tier); on a bounded
    # ring the late accounting is parent-side — a late record never
    # reaches a worker.

    def insert(
        self, key: Hashable, x: float, y: float, ts: Optional[float] = None
    ) -> bool:
        """Route a single record to its shard; True if the summary
        changed.  ``ts`` is the record's event time — required on a
        ring with a time-based window, rejected on an unwindowed one.
        Validated parent-side first, so a malformed record raises here
        without touching any worker.  Under bounded lateness a record
        later than the ring watermark is counted and dropped here (the
        subscriber is notified, no worker is touched); admitted
        records ship together with the updated global watermark."""
        p = coerce_point((x, y))
        ts_arr = (
            np.asarray([float(ts)], dtype=np.float64)
            if ts is not None
            else None
        )
        self._check_ring_ts(ts_arr, 1)
        if self._wal is not None:
            # Logged before the lateness verdict: a late record replays
            # late (same parent-side judgment), so the recovered ring
            # reproduces the drop counters too.
            self._wal.append_insert(
                key,
                p[0],
                p[1],
                float(ts_arr[0]) if ts_arr is not None else None,
                None,
            )
        if self._event_clock is not None:
            ts = float(ts_arr[0])
            if ts < self._event_clock.watermark:
                self._record_late(key, 1, points=(p,), ts=(ts,))
                self._notify({key})
                return False
            # Ship the *candidate* watermark; commit the clock only
            # after the worker accepted, like the batch path.
            wm = self._event_clock.peek(ts)
            changed = bool(
                self._call(
                    self.shard_for(key), "insert", key, p[0], p[1], ts, wm
                )
            )
            self._event_clock.observe(ts)
            self.points_ingested += 1
            OBS.SHARD_INGEST_RECORDS.inc()
            self._notify({key})
            self._maybe_compact()
            return changed
        changed = bool(
            self._call(self.shard_for(key), "insert", key, p[0], p[1], ts)
        )
        if ts_arr is not None:
            self._clock = float(ts_arr[0])
        self.points_ingested += 1
        OBS.SHARD_INGEST_RECORDS.inc()
        self._notify({key})
        self._maybe_compact()
        return changed

    def ingest(
        self, records: Iterable[Tuple[Hashable, float, float]]
    ) -> int:
        """Route ``(key, x, y)`` records to their shards; returns the
        number of summary-changing records.  Each shard receives its
        slice in stream order, so per-key results match a single-engine
        ingestion of the same records exactly.  On a windowed ring
        records may be ``(key, x, y, ts)`` — all or none, globally
        time-ordered.

        Every record is validated in the parent *before* anything is
        sent, so a malformed record rejects the whole batch atomically
        across shards (a worker-side rejection would leave the other
        shards' slices already ingested)."""
        keys, pts, ts_list = split_records(
            records, windowed=self.window is not None
        )
        return self.ingest_arrays(keys, pts, ts=ts_list)

    def _route_keys(
        self, key_arr: np.ndarray
    ) -> Tuple[np.ndarray, List, np.ndarray]:
        """Vectorised routing: the batch's per-record shard ids plus
        its distinct keys.  Distinct keys map through the ring once
        (memoised in :attr:`_route_cache`), and when consecutive
        batches carry the same key population — the steady state of
        every monitoring workload — the whole (unique keys -> shard
        ids) array is reused from the previous batch, so the per-batch
        cost is one grouping pass plus one fancy index."""
        uniq_keys, inverse = unique_key_inverse(key_arr)
        cached = self._batch_route
        if (
            cached is not None
            and cached[0].dtype == key_arr.dtype
            and len(cached[2]) == len(uniq_keys)
            and cached[2] == uniq_keys
        ):
            uniq_shards = cached[1]
        else:
            uniq_shards = np.fromiter(
                (self.shard_for(k) for k in uniq_keys),
                dtype=np.int64,
                count=len(uniq_keys),
            )
            self._batch_route = (key_arr, uniq_shards, uniq_keys)
        return uniq_shards[inverse], uniq_keys, inverse

    def ingest_arrays(
        self, keys: Sequence[Hashable], points, ts=None
    ) -> int:
        """NumPy-native fan-out: a parallel ``keys`` sequence and an
        ``(n, 2)`` point block are partitioned per shard with one
        vectorised routing pass (unique keys hashed once, the whole
        routing array reused across batches with the same key
        population) and the sub-batches ship to all owning workers as
        zero-copy buffer frames, ingesting concurrently.  On a
        windowed ring ``ts`` may carry event time (scalar or parallel
        array, globally non-decreasing)."""
        arr = as_point_array(points)
        key_arr = as_key_array(keys, len(arr))
        ts_arr = as_ts_array(ts, len(arr))
        self._check_ring_ts(ts_arr, len(arr))
        if len(arr) == 0:
            return 0
        if self._wal is not None:
            # Write-ahead, whole batch, before partitioning: the log is
            # layout-independent (replay re-routes through whatever ring
            # recovers it), and records judged late below replay late.
            self._wal.append_batch(key_arr, arr, ts_arr)
        p0, b0 = self.points_ingested, self.batches_ingested
        with span("shard.ingest", records=len(arr)) as sp:
            changed = self._ingest_validated(key_arr, arr, ts_arr)
        OBS.SHARD_INGEST_BATCH_SECONDS.observe(sp.duration)
        if self.points_ingested > p0:
            OBS.SHARD_INGEST_RECORDS.inc(self.points_ingested - p0)
        if self.batches_ingested > b0:
            OBS.SHARD_INGEST_BATCHES.inc(self.batches_ingested - b0)
        self._maybe_compact()
        return changed

    def _ingest_validated(
        self,
        key_arr: np.ndarray,
        arr: np.ndarray,
        ts_arr: Optional[np.ndarray],
    ) -> int:
        t0 = time.perf_counter()
        late_counts: Optional[Dict[Hashable, int]] = None
        batch_max_ts = float(ts_arr[-1]) if ts_arr is not None else None
        slice_watermark: Optional[float] = None
        late = None
        if self._event_clock is not None:
            # Judge lateness once, parent-side, in arrival order — the
            # verdict (and the watermark every worker releases at) must
            # not depend on how keys shard.
            late, new_max = late_split(
                ts_arr, self._event_clock.max_ts, self._event_clock.max_delay
            )
            batch_max_ts = new_max
            slice_watermark = self._event_clock.peek(new_max)
        shard_ids, uniq_keys, inverse = self._route_keys(key_arr)
        touched: Set[Hashable] = set(uniq_keys)
        noted: Set[Hashable] = set()
        keep = None
        late_slices: Optional[Dict[Hashable, tuple]] = None
        if late is not None:
            late_counts = {}
            if late.any():
                keep = ~late
                n_uniq = len(uniq_keys)
                per_key_late = np.bincount(inverse[late], minlength=n_uniq)
                per_key_all = np.bincount(inverse, minlength=n_uniq)
                late_pos = (
                    np.flatnonzero(late) if self._on_late is not None else None
                )
                for j in np.flatnonzero(per_key_late):
                    key = uniq_keys[j]
                    late_counts[key] = int(per_key_late[j])
                    noted.add(key)
                    if late_pos is not None:
                        # Dead-letter hook installed: materialise this
                        # key's dropped slice for the callback.
                        sel = late_pos[inverse[late_pos] == j]
                        if late_slices is None:
                            late_slices = {}
                        late_slices[key] = (arr[sel], ts_arr[sel])
                    if per_key_late[j] == per_key_all[j]:
                        touched.discard(key)
        requests = []
        for i in range(self.num_shards):
            mask = shard_ids == i
            if keep is not None:
                mask &= keep
            idx = np.flatnonzero(mask)
            if len(idx):
                slice_ts = ts_arr[idx] if ts_arr is not None else None
                msg = ("ingest_arrays", key_arr[idx], arr[idx], slice_ts)
                if slice_watermark is not None:
                    msg = msg + (slice_watermark,)
                requests.append((i, msg))
        dt = time.perf_counter() - t0
        self.timings["partition_s"] += dt
        OBS.SHARD_PARTITION_SECONDS.observe(dt)
        total = len(arr) if keep is None else int(keep.sum())
        return self._fan_out(
            requests,
            total,
            batch_max_ts=batch_max_ts,
            touched=touched,
            late_counts=late_counts,
            noted=noted,
            late_slices=late_slices,
        )

    def _fan_out(
        self,
        requests: List[Tuple[int, tuple]],
        total: int,
        batch_max_ts: Optional[float] = None,
        touched: Optional[Set[Hashable]] = None,
        late_counts: Optional[Dict[Hashable, int]] = None,
        noted: Optional[Set[Hashable]] = None,
        late_slices: Optional[Dict[Hashable, tuple]] = None,
    ) -> int:
        """Send every shard its slice, then collect all acks.  The
        clocks (strict high-water, or the bounded-lateness event clock)
        and the late-drop counters advance here — after routing
        succeeded and the slices are on the wire — never on a rejected
        batch.  Subscribers are notified once, after the whole batch,
        with the touched keys plus the keys that had late drops."""
        self._check_open()
        t0 = time.perf_counter()
        sent, send_error = self._send_all(requests)
        self.timings["send_s"] += time.perf_counter() - t0
        if batch_max_ts is not None:
            if self._event_clock is not None:
                self._event_clock.observe(batch_max_ts)
            else:
                self._clock = batch_max_ts
        if late_counts:
            for key, n in late_counts.items():
                pts_ts = late_slices.get(key) if late_slices else None
                if pts_ts is not None:
                    self._record_late(
                        key, n, points=pts_ts[0], ts=pts_ts[1]
                    )
                else:
                    self._record_late(key, n)
        t0 = time.perf_counter()
        try:
            changed = sum(self._collect_all(sent))
        except ShardError as exc:
            if send_error is None:
                send_error = exc
            changed = 0
        finally:
            self.timings["collect_s"] += time.perf_counter() - t0
        if send_error is not None:
            raise send_error
        if total:
            self.points_ingested += total
            self.batches_ingested += 1
        notify = set(touched or ()) | set(noted or ())
        if notify:
            self._notify(notify)
        return changed

    # -- queries -----------------------------------------------------------

    def keys(self) -> List[Hashable]:
        """All live keys across the ring (per-shard order concatenated)."""
        out: List[Hashable] = []
        for shard_keys in self._broadcast("keys"):
            out.extend(shard_keys)
        return out

    def __len__(self) -> int:
        return sum(len(ks) for ks in self._broadcast("keys"))

    def hull(self, key: Hashable) -> List[Point]:
        """Approximate hull of one keyed stream ([] if never fed)."""
        return [tuple(v) for v in self._call(self.shard_for(key), "hull", key)]

    def _summary_factory(self):
        """The per-key factory a worker engine uses (window-wrapped when
        the ring is windowed)."""
        if self.window is None:
            return self.spec.build
        return windowed_factory(self.spec, self.window)

    def advance_time(self, now: float) -> int:
        """Broadcast a clock advance to every shard (time-based windows
        only); returns the total number of expired buckets across the
        ring.  Subscribers are notified with the keys whose windows
        expired buckets, exactly like the in-process tier.  Under
        bounded lateness ``now`` is the event-time heartbeat: the
        parent advances the global watermark and every worker flushes
        its reorder buffers up to it before expiring (so the keys
        whose buffered records were released notify too)."""
        if self.window is None or not self.window.timed:
            raise ValueError(
                "advance_time requires an engine with a time-based window"
            )
        now = float(now)
        if self._wal is not None:
            # Expiry mutates worker state, so the heartbeat must replay.
            self._wal.append_advance(now, None)
        if self._event_clock is not None:
            wm = self._event_clock.peek(now)
            replies = self._broadcast("advance_time", now, wm)
            self._event_clock.observe(now)
        else:
            replies = self._broadcast("advance_time", now)
            if self._clock is None or now > self._clock:
                self._clock = now
        expired = sum(r[0] for r in replies)
        touched: Set[Hashable] = set()
        for r in replies:
            touched.update(r[1])
        if touched:
            self._notify(touched)
        self._maybe_compact()
        return expired

    def get(self, key: Hashable) -> Optional[HullSummary]:
        """A *copy* of one key's summary, or None if the key is not
        live (never routes a creation — the read-only probe)."""
        state = self._call(self.shard_for(key), "summary_state", key, False)
        if state is None:
            return None
        return summary_from_state(state, factory=self._summary_factory())

    def summary(self, key: Hashable) -> HullSummary:
        """A *copy* of one key's summary, created (empty, worker-side)
        on first use like :meth:`StreamEngine.summary`.  Mutating the
        copy does not touch the worker — it is rebuilt from the shard's
        snapshot state."""
        state = self._call(self.shard_for(key), "summary_state", key, True)
        return summary_from_state(state, factory=self._summary_factory())

    def merged_summary(
        self, keys: Optional[Iterable[Hashable]] = None
    ) -> HullSummary:
        """One summary covering the union of the selected streams.

        Every worker folds its local summaries into a per-shard summary
        (on a windowed ring: a per-shard *windowed view* of the base
        scheme, covering the union of that shard's live windows); the
        parent deserialises the K shard summaries and tree-reduces
        them (:func:`~repro.core.base.tree_merge`).  The result carries
        the scheme's usual one-sided error against the union stream's
        (respectively the union window's) true hull."""
        selection = None if keys is None else list(keys)
        states = self._broadcast("merged_state", selection)
        summaries = [
            summary_from_state(s, factory=self.spec.build) for s in states
        ]
        return tree_merge(summaries)

    # ``merged_hull`` / ``diameter`` / ``width`` come from
    # ExtentQueryAPI — the same folds the in-process tier uses.

    def stats(self) -> ShardStats:
        """Aggregate counters across all shards.

        Also refreshes the per-shard obs gauges and merges every
        worker's registry snapshot (shipped inside its stats reply)
        with the parent's into the document's ``obs`` field — the one
        place the whole ring's metrics, worker-side window/engine
        families included, are visible together.
        """
        per_shard = self._broadcast("stats")
        for i, s in enumerate(per_shard):
            label = str(i)
            OBS.SHARD_STREAMS.labels(label).set(s.get("streams", 0))
            OBS.SHARD_PARTIALS_REDUCED.labels(label).set(
                s.get("partials_reduced", 0)
            )
            OBS.SHARD_PARTIALS_SERVED.labels(label).set(
                s.get("partials_served", 0)
            )
        merged_obs = obs_registry().collect()
        for s in per_shard:
            worker_obs = s.get("obs")
            if worker_obs:
                merged_obs = merge_snapshots(merged_obs, worker_obs)
        return ShardStats(
            shards=self.num_shards,
            streams=sum(s["streams"] for s in per_shard),
            points_ingested=self.points_ingested,
            batches_ingested=self.batches_ingested,
            sample_points=sum(s["sample_points"] for s in per_shard),
            per_shard=per_shard,
            evictions=sum(s.get("evictions", 0) for s in per_shard),
            buckets=sum(s.get("buckets", 0) for s in per_shard),
            bucket_merges=sum(s.get("bucket_merges", 0) for s in per_shard),
            bucket_expiries=sum(
                s.get("bucket_expiries", 0) for s in per_shard
            ),
            late_dropped=self.late_dropped
            + sum(s.get("late_dropped", 0) for s in per_shard),
            buffered=sum(s.get("buffered", 0) for s in per_shard),
            partials_reduced=sum(
                s.get("partials_reduced", 0) for s in per_shard
            ),
            partials_served=sum(
                s.get("partials_served", 0) for s in per_shard
            ),
            standbys=sum(max(len(lanes) - 1, 0) for lanes in self._lanes),
            promotions=len(self.promotions),
            obs=merged_obs,
        )

    # -- online resharding -------------------------------------------------

    def resize(self, shards: int) -> Dict:
        """Resize the ring to ``shards`` workers without stopping it.

        Consistent hashing keeps the reshuffle proportional: growing
        moves keys only *onto* the new shards, shrinking moves only the
        retired shards' keys — every other key stays where it is (the
        migrated fraction is about ``|old - new| / max(old, new)``).
        Each displaced key moves through the workers' ``extract`` /
        ``adopt`` pair — summary and any pending reorder-buffer records
        together — so nothing is lost and per-key state is preserved
        exactly.  New lanes (with the ring's ``standbys``) spawn before
        any key moves; surplus lanes stop only after their keys are
        safely adopted.  Returns the resize event, also appended to
        :attr:`resize_events`:
        ``{"from", "to", "moved_keys", "total_keys"}``.

        The write-ahead log, if attached, is untouched: the log is
        layout-independent (replay re-routes every record), so a resize
        needs no logging of its own.
        """
        self._check_open()
        shards = int(shards)
        if shards < 1:
            raise ValueError("resize needs at least one shard")
        old = self.num_shards
        if shards == old:
            return {
                "from": old,
                "to": old,
                "moved_keys": 0,
                "total_keys": len(self),
            }
        new_ring = HashRing(shards, replicas=self.ring.replicas)

        def route(key):
            if isinstance(key, np.generic):
                key = key.item()
            return new_ring.shard_for(key)

        # Grow first: destinations must be serving before keys move.
        for i in range(old, shards):
            self._lanes.append(
                [self._spawn_lane(i, role) for role in range(self.standbys + 1)]
            )
        for i in range(len(self._send_hist), shards):
            label = str(i)
            self._send_hist.append(OBS.SHARD_SEND_SECONDS.labels(label))
            self._collect_hist.append(OBS.SHARD_COLLECT_SECONDS.labels(label))
            self._inflight.append(OBS.SHARD_INFLIGHT.labels(label))
        self._sync_primary_views()
        moved = total_keys = 0
        for src in range(old):
            shard_keys = self._call(src, "keys")
            total_keys += len(shard_keys)
            movers = [k for k in shard_keys if route(k) != src]
            if not movers:
                continue
            extracted = self._call(src, "extract", movers)
            for key, state, buffer_doc in extracted:
                dst = route(key)
                if state is not None:
                    self._call(dst, "adopt", key, state)
                if buffer_doc is not None:
                    self._call(dst, "adopt_buffer", key, buffer_doc)
            moved += len(extracted)
        retired: List[List[_Lane]] = []
        if shards < old:
            retired = self._lanes[shards:]
            del self._lanes[shards:]
            del self._send_hist[shards:]
            del self._collect_hist[shards:]
            del self._inflight[shards:]
        self.ring = new_ring
        self.num_shards = shards
        self._route_cache.clear()
        self._batch_route = None
        self._sync_primary_views()
        self._stop_lanes([lane for lanes in retired for lane in lanes])
        OBS.RESIZES.inc()
        if moved:
            OBS.RESIZE_MOVED_KEYS.inc(moved)
        event = {
            "from": old,
            "to": shards,
            "moved_keys": moved,
            "total_keys": total_keys,
        }
        self.resize_events.append(event)
        return event

    # -- snapshot / restore ------------------------------------------------

    def snapshot_state(self) -> dict:
        """The whole ring's state as one JSON-compatible document —
        every shard engine, every summary (keys must be JSON scalars,
        as for :meth:`StreamEngine.snapshot_state`)."""
        engines = self._broadcast("snapshot_state")
        doc = {
            "format": SHARD_FORMAT,
            "version": SHARD_FORMAT_VERSION,
            "shards": self.num_shards,
            "replicas": self.ring.replicas,
            "spec": self.spec.to_doc(),
            "window": self.window.to_doc() if self.window else None,
            "clock": self._clock,
            "points_ingested": self.points_ingested,
            "batches_ingested": self.batches_ingested,
            "engines": engines,
        }
        if self._event_clock is not None:
            late = []
            for key, n in self._late_drops.items():
                # Same constraint as summary keys: a key that only
                # ever appeared as a late drop must still round-trip
                # the text format (json.dumps would silently turn a
                # tuple into an unhashable list).
                if not isinstance(key, (str, int, float, bool)):
                    raise TypeError(
                        "snapshot keys must be JSON scalars, got "
                        f"{type(key).__name__}"
                    )
                late.append([key, n])
            doc["time"] = {
                **self._event_clock.to_doc(),
                "late_drops": late,
            }
        return doc

    def snapshot(self, path: PathLike) -> Path:
        """Serialise :meth:`snapshot_state` to one JSON file."""
        path = Path(path)
        path.write_text(json.dumps(self.snapshot_state()), encoding="utf-8")
        return path

    @classmethod
    def from_snapshot_state(
        cls,
        doc: dict,
        *,
        shards: Optional[int] = None,
        replicas: Optional[int] = None,
        max_streams: Optional[int] = None,
        start_method: Optional[str] = None,
        transport: str = "frames",
        worker_push: bool = True,
        on_late=None,
        standbys: int = 0,
        window=None,
        durability=None,
    ) -> "ShardedEngine":
        """Rebuild a ring from a :meth:`snapshot_state` document.

        With the snapshot's own shard count (the default) each worker
        reloads its engine wholesale — identical per-shard state and
        counters.  With a different ``shards`` (or ``replicas``) every
        key's summary is re-routed through the new ring and adopted by
        its new owner; per-key summaries are preserved exactly, while
        per-shard point counters are re-derived from the summaries' own
        ``points_seen`` (per-shard *batch* counts are not reconstructed).
        ``window=None`` keeps the snapshot's own window config;
        ``standbys``/``durability`` configure the rebuilt ring like the
        constructor (the durability directory must be fresh — recovery
        re-attaches to an existing log *after* replay instead).
        """
        check_snapshot_doc(
            doc, SHARD_FORMAT, SHARD_FORMAT_VERSION, "a shard snapshot"
        )
        spec = SummarySpec.from_doc(doc["spec"])
        if window is None:
            window_doc = doc.get("window")
            window = WindowConfig.from_doc(window_doc) if window_doc else None
        target_shards = shards if shards is not None else int(doc["shards"])
        target_replicas = (
            replicas if replicas is not None else int(doc["replicas"])
        )
        engine = cls(
            spec,
            shards=target_shards,
            replicas=target_replicas,
            max_streams=max_streams,
            start_method=start_method,
            window=window,
            transport=transport,
            worker_push=worker_push,
            on_late=on_late,
            standbys=standbys,
            durability=durability,
        )
        same_layout = (
            target_shards == int(doc["shards"])
            and target_replicas == int(doc["replicas"])
        )
        if same_layout:
            for i, engine_doc in enumerate(doc["engines"]):
                engine._request(i, "load_snapshot", engine_doc)
            for i in range(len(doc["engines"])):
                engine._collect(i)
        else:
            # One adopt round-trip per key: slower than bulk reload but
            # immune to pipe back-pressure, and restore is not a hot
            # path.  Consistent hashing keeps most keys on their old
            # shard anyway, so resizes move only the proportional slice.
            for engine_doc in doc["engines"]:
                for key, snap in engine_doc["summaries"]:
                    engine._call(engine.shard_for(key), "adopt", key, snap)
                # Not-yet-released reorder-buffer records re-route with
                # their key, so a resized ring owes exactly the same
                # pending work as the one that snapshotted.
                time_doc = engine_doc.get("time") or {}
                for key, buf_doc in time_doc.get("buffers", []):
                    engine._call(
                        engine.shard_for(key), "adopt_buffer", key, buf_doc
                    )
        engine.points_ingested = int(doc.get("points_ingested", 0))
        engine.batches_ingested = int(doc.get("batches_ingested", 0))
        clock = doc.get("clock")
        engine._clock = float(clock) if clock is not None else None
        time_doc = doc.get("time")
        if time_doc is not None:
            if engine._event_clock is None:
                raise ValueError(
                    "snapshot carries event-time state but the window has "
                    "no bounded-lateness policy"
                )
            engine._event_clock.load_doc(time_doc)
            engine._late_drops = {
                key: int(n) for key, n in time_doc.get("late_drops", [])
            }
        return engine

    @classmethod
    def restore(
        cls,
        path: PathLike,
        *,
        shards: Optional[int] = None,
        replicas: Optional[int] = None,
        max_streams: Optional[int] = None,
        start_method: Optional[str] = None,
        transport: str = "frames",
        worker_push: bool = True,
        on_late=None,
        standbys: int = 0,
        window=None,
        durability=None,
    ) -> "ShardedEngine":
        """Rebuild a ring from a :meth:`snapshot` file."""
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_snapshot_state(
            doc,
            shards=shards,
            replicas=replicas,
            max_streams=max_streams,
            start_method=start_method,
            transport=transport,
            worker_push=worker_push,
            on_late=on_late,
            standbys=standbys,
            window=window,
            durability=durability,
        )

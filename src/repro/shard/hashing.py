"""Consistent hashing of stream keys onto shards.

Routing must be *stable across processes and sessions*: Python's
built-in ``hash`` is salted per interpreter for strings, so the ring
hashes a canonical byte encoding of each key with BLAKE2 instead.  Each
shard owns ``replicas`` pseudo-random points ("virtual nodes") on a
64-bit ring; a key belongs to the shard owning the first point at or
after the key's own ring position.  Virtual nodes keep the load spread
even for small shard counts, and — the classic consistent-hashing
property — resizing the ring from N to N' shards moves only ~1/max(N,N')
of the keys, which is what makes whole-ring snapshot *re-distribution*
(restoring onto a different worker count) cheap.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, List, Tuple

__all__ = ["HashRing", "stable_key_token"]

_TOKEN_BYTES = 8
_RING_SALT = "repro.shard.v1"


def _key_bytes(key: Hashable) -> bytes:
    """Canonical byte encoding of a stream key.

    Two invariants:

    * Keys that compare equal as dict keys (``True == 1 == 1.0``) must
      route identically — a :class:`~repro.engine.StreamEngine` would
      fold them into one stream, so the ring cannot split them across
      shards.  NumPy scalars are unwrapped by the caller
      (:meth:`HashRing.shard_for`) before reaching here.
    * Encoding must depend only on the key's *value*: a ``repr``-based
      fallback would bake in object identity (``<Foo at 0x...>``) and
      give two equal keys different tokens, silently splitting one
      logical stream.  Unsupported key types are therefore rejected.

    Tuples are encoded recursively with length-prefixed elements, so
    ``("a,b",)`` and ``("a", "b")`` cannot collide.

    Raises:
        TypeError: for key types without a deterministic value encoding.
    """
    if key is None:
        return b"n"
    if isinstance(key, (bool, int)):
        return b"i:" + str(int(key)).encode("ascii")
    if isinstance(key, float):
        if key.is_integer():
            return b"i:" + str(int(key)).encode("ascii")
        return b"f:" + repr(key).encode("ascii")
    if isinstance(key, str):
        return b"s:" + key.encode("utf-8", "surrogatepass")
    if isinstance(key, bytes):
        return b"b:" + key
    if isinstance(key, tuple):
        parts = [_key_bytes(k) for k in key]
        return b"t:" + b"".join(
            str(len(p)).encode("ascii") + b"|" + p for p in parts
        )
    raise TypeError(
        f"shard keys must be str/bytes/numbers/None or tuples thereof; "
        f"{type(key).__name__} has no deterministic value encoding"
    )


def stable_key_token(key: Hashable) -> int:
    """Interpreter-salt-independent 64-bit token of a stream key."""
    digest = hashlib.blake2b(_key_bytes(key), digest_size=_TOKEN_BYTES)
    return int.from_bytes(digest.digest(), "big")


class HashRing:
    """A consistent-hash ring mapping keys to ``shards`` buckets.

    Args:
        shards: number of buckets (worker processes), >= 1.
        replicas: virtual nodes per shard; more replicas = smoother
            load at the cost of a larger (still tiny) ring.
    """

    def __init__(self, shards: int, replicas: int = 64):
        if shards < 1:
            raise ValueError("HashRing needs at least one shard")
        if replicas < 1:
            raise ValueError("HashRing needs at least one replica per shard")
        self.shards = shards
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for rep in range(replicas):
                token = stable_key_token(f"{_RING_SALT}|{shard}|{rep}")
                points.append((token, shard))
        points.sort()
        self._tokens = [t for t, _ in points]
        self._owners = [s for _, s in points]

    def shard_for(self, key: Hashable) -> int:
        """The shard owning ``key`` (deterministic across processes)."""
        try:
            import numpy as np

            if isinstance(key, np.generic):
                key = key.item()
        except ImportError:  # pragma: no cover - numpy is a hard dep
            pass
        token = stable_key_token(key)
        i = bisect.bisect_right(self._tokens, token)
        if i == len(self._tokens):
            i = 0  # wrap around the ring
        return self._owners[i]

    def distribution(self, keys) -> List[int]:
        """Per-shard key counts for an iterable of keys (diagnostics)."""
        counts = [0] * self.shards
        for k in keys:
            counts[self.shard_for(k)] += 1
        return counts

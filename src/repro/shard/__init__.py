"""repro.shard — mergeable summaries fanned out over worker processes.

The paper's summaries store *input points*, which makes them mergeable:
re-ingesting one summary's samples into another yields a valid summary
of the concatenated stream (see :meth:`repro.core.base.HullSummary.merge`
and the vectorised scheme-specific overrides).  This package turns that
algebra into horizontal scale, the way large detector collaborations
reduce per-subsystem streams into one global result:

* :class:`~repro.shard.hashing.HashRing` — consistent hashing of stream
  keys onto N shards (stable across processes; resize moves only the
  proportional slice of keys);
* :class:`~repro.shard.spec.SummarySpec` — a scheme as picklable data,
  so factories can cross process boundaries;
* :mod:`~repro.shard.transport` — the zero-copy wire layer: batch
  slices cross the worker pipes as raw length-prefixed NumPy buffer
  frames (``frames``), optionally via a shared-memory double-buffer
  ring for large slices (``shm``), with the legacy pickled-message
  path (``pickle``) kept as a measurable baseline;
* :func:`~repro.shard.worker.shard_worker_main` — one
  :class:`~repro.engine.StreamEngine` per worker process, spoken to
  over a framed pipe in the :mod:`repro.streams.io` snapshot format,
  pre-folding its shard-level partial during ingest idle time;
* :class:`~repro.shard.engine.ShardedEngine` — the front door: batch
  fan-out across all workers, per-key hulls bit-for-bit identical to a
  single engine, global hull/diameter/width through a tree reduction of
  per-shard merged summaries, and whole-ring snapshot/restore (onto the
  same or a different worker count).

Quickstart::

    from repro import ShardedEngine, SummarySpec

    with ShardedEngine(SummarySpec("AdaptiveHull", {"r": 32}), shards=4) as eng:
        eng.ingest_arrays(keys, points)          # fans out to 4 processes
        eng.hull("sensor-17")                    # per-key, exact routing
        eng.merged_hull()                        # global, tree-reduced
        eng.snapshot("ring.json")                # whole-ring checkpoint
"""

from ..core.base import tree_merge
from .engine import ShardedEngine, ShardError, ShardStats
from .hashing import HashRing, stable_key_token
from .spec import SummarySpec
from .transport import TRANSPORTS, TransportError, shm_available

__all__ = [
    "ShardedEngine",
    "ShardError",
    "ShardStats",
    "HashRing",
    "SummarySpec",
    "stable_key_token",
    "tree_merge",
    "TRANSPORTS",
    "TransportError",
    "shm_available",
]

"""Zero-copy frame transport for the shard pipe protocol.

The original shard IPC sent every message through ``Connection.send``,
i.e. one pickle per message: a 10^5-record batch slice crossed the pipe
as a pickled ``(op, keys, points, ts)`` tuple, which copies every NumPy
buffer into the pickle stream in the *parent* — exactly the serial cost
that capped ingest scaling at ~1x.  This module replaces that path with
a length-prefixed raw-frame protocol:

* **Message = skeleton + buffers.**  :func:`extract_arrays` walks a
  message and lifts every fixed-dtype :class:`numpy.ndarray` out of it,
  leaving a tiny placeholder (index + dtype string + shape) behind; the
  remaining skeleton (op names, keys lists, snapshot docs, scalars) is
  pickled, but it is small — the bulk data never touches pickle.
* **Frames mode** (:class:`FramePipe`): the header frame (magic, buffer
  count, per-buffer byte lengths, skeleton) is followed by one raw
  frame per buffer, each written straight from the array's memory via
  ``Connection.send_bytes`` — no parent-side copy.  The receiver
  validates every declared length before trusting it and rebuilds
  arrays as zero-copy ``np.frombuffer`` views over the received bytes.
* **Shared-memory mode** (:class:`ShmFramePipe`): for large slices the
  sender instead memcpy's the buffers into a double-buffered
  :mod:`multiprocessing.shared_memory` ring (two segments per pipe,
  used alternately, grown on demand) and the header carries only the
  segment name and offsets; the receiver attaches once per segment
  (cached) and copies its slices out.  The two segments alternate so a
  segment is never rewritten until the message after the message it
  carried has been acknowledged — with the shard protocol's strict
  request/reply discipline the reader is always done with segment A
  before the writer returns to it.
* **Pickle mode** (:class:`PicklePipe`): the legacy ``send``/``recv``
  path, kept as the A/B baseline for ``--transport pickle``.

Decoding is *defensive*: a frame that is truncated, oversized, declares
an impossible dtype/shape, or is plain garbage raises
:class:`TransportError` — never a silent desync.  The byte-level codec
(:func:`dumps` / :func:`loads`) is the same header/payload format in a
single buffer, which is what the property/fuzz suite in
``tests/shard/test_transport.py`` hammers.

Trust model: this transport connects a parent to worker processes *it
spawned itself* — the skeleton uses pickle, which is fine between two
halves of one program but makes the codec unsuitable for untrusted
network peers as-is.
"""

from __future__ import annotations

import itertools
import os
import pickle
import struct
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

try:  # gate, not require: some platforms lack POSIX shared memory
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic platform
    _shared_memory = None

from ..obs import metrics as _obs

__all__ = [
    "TransportError",
    "TRANSPORTS",
    "extract_arrays",
    "restore_arrays",
    "dumps",
    "loads",
    "PicklePipe",
    "FramePipe",
    "ShmFramePipe",
    "make_parent_pipe",
    "make_worker_pipe",
    "shm_available",
]

#: Supported transport modes for :class:`~repro.shard.ShardedEngine`.
TRANSPORTS = ("pickle", "frames", "shm")

MAGIC = b"RSF1"  # repro shard frames, wire format v1

#: Header mode byte: payload buffers follow as inline frames.
_MODE_INLINE = 0
#: Header mode byte: payload buffers live in a shared-memory segment.
_MODE_SHM = 1

#: Hard ceiling on a single buffer / skeleton (decoder rejects above).
MAX_FRAME_BYTES = 1 << 31
#: Hard ceiling on buffers per message (a shard op carries a handful).
MAX_BUFFERS = 256
#: Dimensions above this are certainly garbage, not geometry.
_MAX_NDIM = 32

#: Buffer bytes below which :class:`ShmFramePipe` sends inline frames
#: anyway (the memcpy + attach bookkeeping only pays off for big slices).
SHM_THRESHOLD = 1 << 16
#: Initial shared-memory segment capacity.
_SHM_MIN_SEGMENT = 1 << 20
#: Buffer start alignment inside a shared-memory segment.
_SHM_ALIGN = 64

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

_shm_counter = itertools.count()

#: Segment names created (and therefore unlinked) by this process —
#: lets a same-process receiver tell loopback segments from a remote
#: sender's (see the resource-tracker note in ``FramePipe._read_shm``).
_owned_segments: set = set()


def _untrack_shm(name: str) -> None:
    """Drop an *attached* segment from this process's resource tracker
    (best-effort; the registration APIs are internal)."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:  # pragma: no cover - interpreter-internal API
        pass


class TransportError(RuntimeError):
    """A malformed, truncated, oversized, or desynchronised frame."""


def shm_available() -> bool:
    """Whether the shared-memory transport can run on this platform."""
    return _shared_memory is not None


# -- structure <-> (skeleton, buffers) -----------------------------------


class _NDRef:
    """Placeholder a lifted array leaves in the pickled skeleton."""

    __slots__ = ("index", "dtype", "shape")

    def __init__(self, index: int, dtype: str, shape: Tuple[int, ...]):
        self.index = index
        self.dtype = dtype
        self.shape = shape

    def __getstate__(self):
        return (self.index, self.dtype, self.shape)

    def __setstate__(self, state):
        self.index, self.dtype, self.shape = state


def _bufferable(arr: np.ndarray) -> bool:
    """Arrays that can ride the raw-buffer path: fixed-width dtypes
    whose dtype string round-trips (object/structured dtypes stay in
    the pickled skeleton — keys may be arbitrary hashables)."""
    if arr.dtype.hasobject:
        return False
    try:
        return np.dtype(arr.dtype.str) == arr.dtype
    except TypeError:  # pragma: no cover - exotic dtype
        return False


def extract_arrays(msg: Any) -> Tuple[Any, List[np.ndarray]]:
    """Rebuild ``msg`` with every bufferable ndarray replaced by a
    :class:`_NDRef`; returns the skeleton and the lifted arrays (made
    C-contiguous, which is a no-op for the shard layer's slices)."""
    buffers: List[np.ndarray] = []

    def walk(obj):
        if isinstance(obj, np.ndarray) and _bufferable(obj):
            # Only copy when actually strided: ascontiguousarray would
            # also promote rank-0 arrays to 1-D (its contract is
            # ndim >= 1), silently changing the round-tripped shape.
            arr = obj if obj.flags.c_contiguous else np.ascontiguousarray(obj)
            buffers.append(arr)
            return _NDRef(len(buffers) - 1, arr.dtype.str, arr.shape)
        if isinstance(obj, tuple):
            return tuple(walk(o) for o in obj)
        if isinstance(obj, list):
            return [walk(o) for o in obj]
        if isinstance(obj, dict):
            return {k: walk(v) for k, v in obj.items()}
        return obj

    return walk(msg), buffers


def _ref_nbytes(ref: _NDRef) -> Tuple[np.dtype, int, int]:
    """Validate a decoded :class:`_NDRef`; returns (dtype, count, nbytes).

    Raises:
        TransportError: on dtypes/shapes that cannot describe a real
            buffer (the fuzz path: garbage must fail loudly here).
    """
    try:
        dt = np.dtype(ref.dtype)
    except Exception as exc:
        raise TransportError(f"undecodable dtype {ref.dtype!r}") from exc
    shape = tuple(ref.shape)
    if len(shape) > _MAX_NDIM:
        raise TransportError(f"array rank {len(shape)} exceeds {_MAX_NDIM}")
    count = 1
    for dim in shape:
        if not isinstance(dim, int) or dim < 0:
            raise TransportError(f"bad array shape {shape!r}")
        count *= dim
    nbytes = count * dt.itemsize
    if nbytes > MAX_FRAME_BYTES:
        raise TransportError(f"array of {nbytes} bytes exceeds frame limit")
    return dt, count, nbytes


def restore_arrays(skeleton: Any, buffers: Sequence[Any]) -> Any:
    """Inverse of :func:`extract_arrays`: graft the received buffers
    back into the skeleton as zero-copy ``np.frombuffer`` views.

    Raises:
        TransportError: when a placeholder's dtype/shape does not match
            its buffer's length (a truncated or mismatched frame).
    """

    def walk(obj):
        if isinstance(obj, _NDRef):
            if not 0 <= obj.index < len(buffers):
                raise TransportError(f"buffer index {obj.index} out of range")
            buf = buffers[obj.index]
            dt, count, nbytes = _ref_nbytes(obj)
            if len(memoryview(buf)) != nbytes:
                raise TransportError(
                    f"buffer {obj.index} holds {len(memoryview(buf))} bytes, "
                    f"dtype/shape promise {nbytes}"
                )
            return np.frombuffer(buf, dtype=dt, count=count).reshape(obj.shape)
        if isinstance(obj, tuple):
            return tuple(walk(o) for o in obj)
        if isinstance(obj, list):
            return [walk(o) for o in obj]
        if isinstance(obj, dict):
            return {k: walk(v) for k, v in obj.items()}
        return obj

    return walk(skeleton)


def _loads_skeleton(data: bytes) -> Any:
    """Guarded skeleton unpickle: anything it throws becomes a
    :class:`TransportError` (fuzz bytes must never leak raw pickle
    machinery errors, let alone desync the stream)."""
    try:
        return pickle.loads(data)
    except Exception as exc:
        raise TransportError(f"undecodable skeleton: {exc}") from exc


# -- header codec --------------------------------------------------------


def _build_header(
    skel_bytes: bytes,
    sizes: Sequence[int],
    shm: Optional[Tuple[str, Sequence[int]]] = None,
) -> bytes:
    """One header frame: magic, mode, buffer lengths, optional shm
    descriptor (segment name + per-buffer offsets), skeleton."""
    parts = [
        MAGIC,
        bytes([_MODE_SHM if shm is not None else _MODE_INLINE]),
        _U32.pack(len(sizes)),
    ]
    parts += [_U64.pack(n) for n in sizes]
    if shm is not None:
        name, offsets = shm
        name_b = name.encode("ascii")
        parts.append(_U32.pack(len(name_b)))
        parts.append(name_b)
        parts += [_U64.pack(off) for off in offsets]
    parts.append(_U64.pack(len(skel_bytes)))
    parts.append(skel_bytes)
    return b"".join(parts)


class _Reader:
    """Bounds-checked cursor over a received header frame."""

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if n < 0 or self.pos + n > len(self.data):
            raise TransportError(
                f"truncated frame: wanted {n} bytes at offset {self.pos}, "
                f"have {len(self.data)}"
            )
        out = self.data[self.pos : self.pos + n]
        self.pos += n
        return out

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self.take(8))[0]

    def done(self) -> None:
        if self.pos != len(self.data):
            raise TransportError(
                f"{len(self.data) - self.pos} trailing bytes after frame"
            )


def _parse_header(
    data: bytes, *, max_buffers: int = MAX_BUFFERS,
    max_bytes: int = MAX_FRAME_BYTES,
):
    """Parse one header frame.

    Returns ``(skeleton_bytes, sizes, shm_desc)`` where ``shm_desc`` is
    None for inline payload frames or ``(segment_name, offsets)``.
    The cursor is *not* required to be exhausted — :func:`loads` checks
    that separately because its payload follows in the same buffer.
    """
    r = _Reader(data)
    if r.take(len(MAGIC)) != MAGIC:
        raise TransportError("bad magic: not a shard frame")
    mode = r.take(1)[0]
    if mode not in (_MODE_INLINE, _MODE_SHM):
        raise TransportError(f"unknown frame mode {mode}")
    nbuf = r.u32()
    if nbuf > max_buffers:
        raise TransportError(f"{nbuf} buffers exceeds limit {max_buffers}")
    sizes = [r.u64() for _ in range(nbuf)]
    for n in sizes:
        if n > max_bytes:
            raise TransportError(f"buffer of {n} bytes exceeds limit")
    shm_desc = None
    if mode == _MODE_SHM:
        name_len = r.u32()
        if name_len > 255:
            raise TransportError(f"shm name of {name_len} bytes")
        try:
            name = r.take(name_len).decode("ascii")
        except UnicodeDecodeError as exc:
            raise TransportError("undecodable shm segment name") from exc
        offsets = [r.u64() for _ in range(nbuf)]
        shm_desc = (name, offsets)
    skel_len = r.u64()
    if skel_len > max_bytes:
        raise TransportError(f"skeleton of {skel_len} bytes exceeds limit")
    skel = r.take(skel_len)
    return skel, sizes, shm_desc, r


# -- byte-level codec (single buffer; the property-test surface) ---------


def dumps(msg: Any) -> bytes:
    """Encode a message into one self-contained byte string (header +
    payload buffers, each length-prefixed).  The wire pipes use the
    same header but ship payload as separate zero-copy frames; this
    single-buffer form exists for tests and for callers that want the
    codec without a :class:`~multiprocessing.connection.Connection`."""
    skeleton, arrays = extract_arrays(msg)
    if len(arrays) > MAX_BUFFERS:
        raise TransportError(
            f"{len(arrays)} buffers exceeds limit {MAX_BUFFERS}"
        )
    skel_bytes = pickle.dumps(skeleton, protocol=pickle.HIGHEST_PROTOCOL)
    head = _build_header(skel_bytes, [a.nbytes for a in arrays])
    return head + b"".join(a.tobytes() for a in arrays)


def loads(
    data: bytes, *, max_buffers: int = MAX_BUFFERS,
    max_bytes: int = MAX_FRAME_BYTES,
) -> Any:
    """Decode :func:`dumps` output.  Strict: truncated input, trailing
    garbage, oversized declarations, undecodable skeletons/dtypes all
    raise :class:`TransportError`.

    ``max_buffers`` / ``max_bytes`` exist so the rejection paths can be
    tested without materialising multi-gigabyte frames.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TransportError("frame must be a bytes-like object")
    skel, sizes, shm_desc, reader = _parse_header(
        bytes(data), max_buffers=max_buffers, max_bytes=max_bytes
    )
    if shm_desc is not None:
        raise TransportError("shm frames cannot be decoded from bytes")
    buffers = [reader.take(n) for n in sizes]
    reader.done()
    return restore_arrays(_loads_skeleton(skel), buffers)


# -- connection pipes ----------------------------------------------------


class PicklePipe:
    """The legacy transport: one pickle per message via
    ``Connection.send`` — kept as the measurable A/B baseline."""

    mode = "pickle"

    def __init__(self, conn):
        self.conn = conn

    def send(self, msg: Any) -> None:
        self.conn.send(msg)

    def recv(self) -> Any:
        return self.conn.recv()

    def poll(self, timeout: float = 0.0) -> bool:
        return self.conn.poll(timeout)

    def close(self) -> None:
        self.conn.close()


class FramePipe:
    """Raw-frame transport over a :class:`Connection`.

    Sends one header frame plus one zero-copy frame per lifted array;
    receives either form — inline frames or a shared-memory descriptor
    (so a worker on the frames transport can still read a parent that
    escalated a large slice to shared memory)."""

    mode = "frames"

    #: Attached-segment cache bound (receiver side).
    _ATTACH_CACHE = 8

    def __init__(self, conn):
        self.conn = conn
        self._attached: dict = {}

    # - sending -

    def send(self, msg: Any) -> None:
        skeleton, arrays = extract_arrays(msg)
        self._send_frames(skeleton, arrays)

    def _send_frames(self, skeleton, arrays: List[np.ndarray]) -> None:
        if len(arrays) > MAX_BUFFERS:
            raise TransportError(
                f"{len(arrays)} buffers exceeds limit {MAX_BUFFERS}"
            )
        skel_bytes = pickle.dumps(skeleton, protocol=pickle.HIGHEST_PROTOCOL)
        header = _build_header(skel_bytes, [a.nbytes for a in arrays])
        self.conn.send_bytes(header)
        for a in arrays:
            # send_bytes accepts any buffer — the array's own memory
            # goes to the pipe without an intermediate Python copy.
            self.conn.send_bytes(a if a.nbytes else b"")
        _obs.TRANSPORT_FRAMES_SEND.inc(1 + len(arrays))
        _obs.TRANSPORT_BYTES_SEND.inc(
            len(header) + sum(a.nbytes for a in arrays)
        )

    # - receiving -

    def recv(self) -> Any:
        head = self.conn.recv_bytes()
        skel, sizes, shm_desc, reader = _parse_header(head)
        reader.done()
        if shm_desc is None:
            buffers = []
            for n in sizes:
                try:
                    buf = self.conn.recv_bytes(maxlength=max(n, 1))
                except OSError as exc:
                    raise TransportError(
                        f"payload frame exceeded declared {n} bytes"
                    ) from exc
                if len(buf) != n:
                    raise TransportError(
                        f"payload frame of {len(buf)} bytes, declared {n}"
                    )
                buffers.append(buf)
        else:
            buffers = self._read_shm(shm_desc, sizes)
            _obs.TRANSPORT_SHM_RECV.inc()
        _obs.TRANSPORT_FRAMES_RECV.inc(
            1 + (len(sizes) if shm_desc is None else 0)
        )
        _obs.TRANSPORT_BYTES_RECV.inc(len(head) + sum(sizes))
        return restore_arrays(_loads_skeleton(skel), buffers)

    def _read_shm(self, shm_desc, sizes) -> List[bytes]:
        """Copy the declared slices out of the named segment.  Copies —
        not views — because the sender's double buffer will rewrite the
        segment two messages from now."""
        if _shared_memory is None:  # pragma: no cover - platform gate
            raise TransportError("shared memory unavailable on this platform")
        name, offsets = shm_desc
        seg = self._attached.get(name)
        if seg is None:
            try:
                seg = _shared_memory.SharedMemory(name=name)
            except (FileNotFoundError, OSError) as exc:
                raise TransportError(
                    f"shm segment {name!r} not attachable: {exc}"
                ) from exc
            if name not in _owned_segments:
                # Pre-3.13 attaching registers the segment with this
                # process's resource tracker just like creating it —
                # and a forked worker lazily starts its *own* tracker,
                # which would then try to unlink segments the parent
                # still owns at worker exit.  The sender's deterministic
                # unlink in close() is the single cleanup authority, so
                # drop the attach-side registration.  (Skipped when this
                # very process created the segment — the loopback case —
                # where unregistering would strip the creator's entry.)
                _untrack_shm(name)
            if len(self._attached) >= self._ATTACH_CACHE:
                # The sender retired an old segment; drop the stalest
                # handle (insertion order — segments retire in order).
                oldest = next(iter(self._attached))
                self._attached.pop(oldest).close()
            self._attached[name] = seg
        out = []
        for off, n in zip(offsets, sizes):
            if off + n > seg.size:
                raise TransportError(
                    f"shm slice [{off}:{off + n}] exceeds segment "
                    f"size {seg.size}"
                )
            out.append(bytes(seg.buf[off : off + n]))
        return out

    # - misc -

    def poll(self, timeout: float = 0.0) -> bool:
        return self.conn.poll(timeout)

    def close(self) -> None:
        for seg in self._attached.values():
            try:
                seg.close()
            except OSError:  # pragma: no cover - teardown race
                pass
        self._attached.clear()
        self.conn.close()


class ShmFramePipe(FramePipe):
    """Sender-side escalation of :class:`FramePipe`: messages whose
    lifted buffers total at least :data:`SHM_THRESHOLD` bytes go
    through a double-buffered shared-memory ring instead of inline
    frames.  Small messages (acks, queries, stop) stay inline."""

    mode = "shm"

    def __init__(self, conn, *, threshold: int = SHM_THRESHOLD):
        if _shared_memory is None:
            raise ValueError(
                "the shm transport needs multiprocessing.shared_memory"
            )
        super().__init__(conn)
        self.threshold = threshold
        self._segments: List[Optional[object]] = [None, None]
        self._turn = 0

    def send(self, msg: Any) -> None:
        skeleton, arrays = extract_arrays(msg)
        total = sum(a.nbytes for a in arrays)
        if total < self.threshold:
            self._send_frames(skeleton, arrays)
            return
        if len(arrays) > MAX_BUFFERS:
            raise TransportError(
                f"{len(arrays)} buffers exceeds limit {MAX_BUFFERS}"
            )
        seg, offsets = self._place(arrays)
        skel_bytes = pickle.dumps(skeleton, protocol=pickle.HIGHEST_PROTOCOL)
        header = _build_header(
            skel_bytes,
            [a.nbytes for a in arrays],
            shm=(seg.name, offsets),
        )
        self.conn.send_bytes(header)
        _obs.TRANSPORT_SHM_SEND.inc()
        _obs.TRANSPORT_FRAMES_SEND.inc()
        _obs.TRANSPORT_BYTES_SEND.inc(len(header) + total)

    def _place(self, arrays: List[np.ndarray]):
        """Copy the buffers into the next ring segment (aligned),
        growing the segment when the batch outgrew it."""
        need = sum(
            (a.nbytes + _SHM_ALIGN - 1) // _SHM_ALIGN * _SHM_ALIGN
            for a in arrays
        )
        idx = self._turn
        self._turn ^= 1
        seg = self._segments[idx]
        if seg is None or seg.size < need:
            if seg is not None:
                seg.close()
                try:
                    seg.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
                _owned_segments.discard(seg.name)
            cap = max(_SHM_MIN_SEGMENT, need)
            seg = _shared_memory.SharedMemory(
                create=True,
                size=cap,
                name=f"repro-shard-{os.getpid()}-{next(_shm_counter)}",
            )
            _owned_segments.add(seg.name)
            self._segments[idx] = seg
        offsets = []
        view = np.frombuffer(seg.buf, dtype=np.uint8)
        off = 0
        for a in arrays:
            offsets.append(off)
            if a.nbytes:
                view[off : off + a.nbytes] = np.frombuffer(
                    memoryview(a).cast("B"), dtype=np.uint8
                )
            off += (a.nbytes + _SHM_ALIGN - 1) // _SHM_ALIGN * _SHM_ALIGN
        del view  # release the exported buffer before any future unlink
        return seg, offsets

    def close(self) -> None:
        for seg in self._segments:
            if seg is not None:
                try:
                    seg.close()
                    seg.unlink()
                except (FileNotFoundError, OSError):  # pragma: no cover
                    pass
                _owned_segments.discard(seg.name)
        self._segments = [None, None]
        super().close()


def make_parent_pipe(conn, transport: str):
    """The parent's side of a worker pipe for a transport mode."""
    if transport == "pickle":
        return PicklePipe(conn)
    if transport == "frames":
        return FramePipe(conn)
    if transport == "shm":
        return ShmFramePipe(conn)
    raise ValueError(
        f"unknown transport {transport!r} (known: {', '.join(TRANSPORTS)})"
    )


def make_worker_pipe(conn, transport: str):
    """The worker's side: replies are small, so workers always answer
    with inline frames; a :class:`FramePipe` receiver already
    understands the parent's shm-escalated slices."""
    if transport == "pickle":
        return PicklePipe(conn)
    return FramePipe(conn)

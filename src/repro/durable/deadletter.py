"""Durable dead-letter queue for later-than-watermark records.

PR 7 gave both engine tiers an ``on_late=`` callback; this module turns
it into a real queue: each late slice is framed (same codec as the WAL
segments) into an append-only ``dead-letters.log`` inside the WAL
directory, so nothing is ever *silently* dropped — the records can be
inspected and re-driven later via ``python -m repro durable
dead-letters``.

Entries are ``(n, "late", key, points, ts, watermark)`` where ``n`` is
this log's own sequence (independent of the main WAL), ``points`` is
the late ``(k, 2)`` slice, and ``watermark`` is the cutoff that judged
it late.  Redriving necessarily happens *after* the watermark has
passed, so replay clamps each record's timestamp up to the engine's
current watermark — the records land in the window attributed to the
earliest admissible time, the standard late-redrive trade-off.
"""

from __future__ import annotations

import threading
import zlib
from pathlib import Path
from typing import Iterator, Optional

from ..obs import metrics as OBS
from ..shard import transport
from .wal import WalError, _FRAME, _decode_entry, _scan_frames

__all__ = ["DEAD_LETTER_FILE", "DeadLetterLog", "attach_dead_letters"]

DEAD_LETTER_FILE = "dead-letters.log"


class DeadLetterLog:
    """Appender/reader for one directory's dead-letter log."""

    def __init__(self, wal_dir):
        self.dir = Path(wal_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.path = self.dir / DEAD_LETTER_FILE
        self._lock = threading.Lock()
        self._file = None
        self._closed = False
        self._seq = 0
        if self.path.exists():
            for entry in self.iter_entries():
                self._seq = entry[0]

    def append(self, key, points, ts, watermark) -> int:
        """Persist one late slice; usable directly as an ``on_late`` hook."""
        with self._lock:
            if self._closed:
                raise WalError("dead-letter log is closed")
            seq = self._seq + 1
            payload = transport.dumps((seq, "late", key, points, ts, watermark))
            if self._file is None:
                self._file = open(self.path, "ab")
            self._file.write(_FRAME.pack(len(payload), zlib.crc32(payload)))
            self._file.write(payload)
            self._file.flush()
            self._seq = seq
            OBS.DEAD_LETTERS_PERSISTED.inc(len(points))
            return seq

    def iter_entries(self) -> Iterator[tuple]:
        """Yield ``(seq, "late", key, points, ts, watermark)`` tuples.

        Tolerates a torn final frame (a crash mid-append), like the
        main WAL's crash tail.
        """
        if not self.path.exists():
            return
        with self._lock:
            if self._file is not None:
                self._file.flush()
        for _, payload in _scan_frames(self.path, tolerate_torn=True):
            yield _decode_entry(payload, self.path)

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_entries())

    def truncate(self) -> int:
        """Drop all entries (after a successful redrive); returns how many."""
        with self._lock:
            n = self._seq
            if self._file is not None:
                self._file.close()
                self._file = None
            self.path.unlink(missing_ok=True)
            self._seq = 0
            return n

    def replay_into(self, engine) -> dict:
        """Re-ingest every dead-lettered slice, timestamps clamped up to
        the engine's current watermark so they are admissible now.

        Returns ``{"entries", "records", "skipped"}`` — ``skipped``
        counts slices the engine still rejected (e.g. the clamped time
        regressed a strict window).  The log is left intact; call
        :meth:`truncate` once the caller is satisfied.
        """
        import numpy as np

        entries = records = skipped = 0
        for _, _, key, points, ts, _ in self.iter_entries():
            pts = np.asarray(points, dtype=np.float64).reshape(-1, 2)
            wm = engine.watermark
            ts_arr = np.asarray(ts, dtype=np.float64)
            if wm is not None and np.isfinite(wm):
                ts_arr = np.maximum(ts_arr, wm)
            keys = np.full(len(pts), key, dtype=object)
            try:
                engine.ingest_arrays(keys, pts, ts=ts_arr)
            except ValueError:
                skipped += 1
                continue
            entries += 1
            records += len(pts)
        return {"entries": entries, "records": records, "skipped": skipped}

    def close(self):
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None
            self._closed = True


def attach_dead_letters(engine, wal_dir) -> Optional[DeadLetterLog]:
    """Compose a :class:`DeadLetterLog` into ``engine``'s late hook.

    Returns the log, or None when the engine has no bounded-lateness
    window (nothing is ever late, so nothing to persist).  Any hook the
    engine already had keeps firing after the record is durable.
    """
    window = getattr(engine, "window", None)
    if window is None or window.max_delay is None:
        return None
    log = DeadLetterLog(wal_dir)
    prev = engine._on_late

    def hook(key, points, ts, watermark):
        log.append(key, points, ts, watermark)
        if prev is not None:
            prev(key, points, ts, watermark)

    engine._on_late = hook
    return log

"""Recovery: latest snapshot + WAL tail replay, bit-identical by determinism.

The engines are deterministic functions of their input sequence, so
``load_latest_snapshot() ∘ replay(tail)`` reproduces the pre-crash
state *exactly* — per-key summaries, window buckets, reorder buffers,
event clocks, and counters all match an uninterrupted run bit for bit.
Entries the engine rejected live (e.g. a strict-window timestamp
regression raised ``ValueError`` after the write-ahead append) are
rejected identically on replay and skipped, so the recovered state is
the state of exactly the *acknowledged* prefix.

The entry points mirror the two tiers::

    engine = recover_stream_engine("waldir", durability=cfg)
    ring = recover_sharded_engine("waldir", shards=4, durability=cfg)
    either = recover_engine("waldir")        # tier from the logged meta

Passing ``durability=`` re-attaches a continuing :class:`WalWriter`
(and dead-letter hook) so the recovered engine keeps logging; omit it
for read-only recovery (inspection, parity checks).
"""

from __future__ import annotations

from typing import Optional

from .wal import (
    DurabilityConfig,
    WalError,
    iter_entries,
    load_latest_snapshot,
    read_meta,
)
from ..obs import metrics as OBS

__all__ = [
    "recover_engine",
    "recover_sharded_engine",
    "recover_stream_engine",
    "replay_into",
]

_UNSET = object()


def replay_into(engine, entries) -> dict:
    """Apply WAL entries to ``engine`` through its public ingest API.

    Returns ``{"entries", "records", "rejected"}``.  ``rejected``
    counts entries the engine refused with ``ValueError`` — by
    determinism the same refusal the live ingest produced after
    logging them, so skipping reproduces the acknowledged state.
    """
    import numpy as np

    applied = records = rejected = 0
    for entry in entries:
        kind = entry[1]
        try:
            # A None watermark is omitted rather than passed: the
            # sharded tier logs None always (the parent recomputes its
            # own watermark) and its API has no watermark kwargs.
            if kind == "batch":
                _, _, keys, points, ts, watermark = entry
                kw = {} if watermark is None else {"watermark": watermark}
                engine.ingest_arrays(np.asarray(keys), points, ts=ts, **kw)
                records += len(points)
            elif kind == "insert":
                _, _, key, x, y, ts, watermark = entry
                kw = {} if watermark is None else {"watermark": watermark}
                engine.insert(key, x, y, ts=ts, **kw)
                records += 1
            elif kind == "advance":
                _, _, now, watermark = entry
                if watermark is None:
                    engine.advance_time(now)
                else:
                    engine.advance_time(now, watermark=watermark)
            elif kind == "meta":
                continue
            else:
                raise WalError(f"unknown WAL entry kind {kind!r}")
        except ValueError:
            rejected += 1
            OBS.WAL_REPLAY_REJECTED.inc()
            continue
        applied += 1
    OBS.WAL_REPLAYED_ENTRIES.inc(applied)
    OBS.WAL_REPLAYED_RECORDS.inc(records)
    return {"entries": applied, "records": records, "rejected": rejected}


def _meta_window(meta: Optional[dict]):
    from ..window import WindowConfig

    doc = (meta or {}).get("window")
    return WindowConfig.from_doc(doc) if doc else None


def _meta_factory(meta: Optional[dict]):
    from ..shard import SummarySpec

    doc = (meta or {}).get("spec")
    return SummarySpec.from_doc(doc).build if doc else None


def recover_stream_engine(
    wal_dir,
    factory=None,
    *,
    max_streams=None,
    on_evict=None,
    window=_UNSET,
    on_late=None,
    durability: Optional[DurabilityConfig] = None,
):
    """Rebuild a :class:`~repro.engine.StreamEngine` from ``wal_dir``.

    ``factory``/``window`` default to the configuration captured in the
    log's meta entry; pass them explicitly for logs written by engines
    whose factory was not a :class:`~repro.shard.SummarySpec`.
    """
    from ..engine import StreamEngine

    meta = read_meta(wal_dir)
    if factory is None:
        factory = _meta_factory(meta)
        if factory is None:
            raise WalError(
                "log meta carries no summary spec; pass factory= explicitly"
            )
    if window is _UNSET:
        window = _meta_window(meta)
    snap = load_latest_snapshot(wal_dir)
    if snap is not None:
        engine = StreamEngine.from_snapshot_state(
            snap[1],
            factory,
            max_streams=max_streams,
            on_evict=on_evict,
            window=window,
            on_late=on_late,
        )
        after = snap[0]
    else:
        engine = StreamEngine(
            factory,
            max_streams=max_streams,
            on_evict=on_evict,
            window=window,
            on_late=on_late,
        )
        after = 0
    engine.last_replay = replay_into(engine, iter_entries(wal_dir, after=after))
    if durability is not None:
        engine.attach_durability(durability)
    return engine


def recover_sharded_engine(
    wal_dir,
    spec=None,
    *,
    shards=None,
    standbys=0,
    replicas=None,
    max_streams=None,
    start_method=None,
    window=_UNSET,
    transport="frames",
    worker_push=True,
    on_late=None,
    durability: Optional[DurabilityConfig] = None,
):
    """Rebuild a :class:`~repro.shard.ShardedEngine` ring from ``wal_dir``.

    ``shards=None`` keeps the snapshot's worker count (or the logged
    meta's for a snapshotless log); any other count re-routes per key
    through the existing adopt path — recovery doubles as resizing.
    """
    from ..shard import ShardedEngine, SummarySpec

    meta = read_meta(wal_dir)
    if spec is None:
        doc = (meta or {}).get("spec")
        if doc is None:
            raise WalError("log meta carries no summary spec; pass spec=")
        spec = SummarySpec.from_doc(doc)
    if window is _UNSET:
        window = _meta_window(meta)
    snap = load_latest_snapshot(wal_dir)
    common = dict(
        max_streams=max_streams,
        start_method=start_method,
        transport=transport,
        worker_push=worker_push,
        on_late=on_late,
        standbys=standbys,
    )
    if snap is not None:
        engine = ShardedEngine.from_snapshot_state(
            snap[1],
            shards=shards,
            replicas=replicas,
            window=window,
            **common,
        )
        after = snap[0]
    else:
        engine = ShardedEngine(
            spec,
            shards=shards or (meta or {}).get("shards") or 2,
            replicas=replicas or 64,
            window=window,
            **common,
        )
        after = 0
    engine.last_replay = replay_into(engine, iter_entries(wal_dir, after=after))
    if durability is not None:
        engine.attach_durability(durability)
    return engine


def recover_engine(wal_dir, *, workers: Optional[int] = None, **kwargs):
    """Tier-dispatching recovery: the logged meta (or snapshot format)
    says whether ``wal_dir`` belongs to a ring or an in-process engine.

    ``workers`` overrides: 0 forces a :class:`StreamEngine`, >= 1 a
    ring of that many shards.  Remaining kwargs go to the tier's
    ``recover_*`` function.
    """
    meta = read_meta(wal_dir)
    tier = (meta or {}).get("tier")
    if tier is None:
        snap = load_latest_snapshot(wal_dir)
        if snap is not None:
            fmt = snap[1].get("format", "")
            tier = "shard" if fmt.endswith("shard") else "engine"
    sharded = (workers or 0) > 0 if workers is not None else tier == "shard"
    if sharded:
        return recover_sharded_engine(wal_dir, shards=workers or None, **kwargs)
    kwargs.pop("standbys", None)
    return recover_stream_engine(wal_dir, **kwargs)

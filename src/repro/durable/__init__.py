"""repro.durable — write-ahead log, crash recovery, and dead letters.

The durability layer for both engine tiers:

- :mod:`repro.durable.wal` — append-only checksummed segment files
  (the shard transport's skeleton/raw-buffer codec per entry),
  configurable fsync policy, segment rotation, and periodic snapshot
  compaction.
- :mod:`repro.durable.recovery` — load the latest snapshot and replay
  the tail; bit-identical to an uninterrupted run because the engines
  are deterministic.
- :mod:`repro.durable.deadletter` — later-than-watermark drops as a
  durable, replayable queue instead of a counter.

Quickstart::

    from repro import AdaptiveHull, DurabilityConfig, StreamEngine
    from repro.durable import recover_stream_engine

    cfg = DurabilityConfig("waldir", fsync="batch", snapshot_every=512)
    engine = StreamEngine(lambda: AdaptiveHull(32), durability=cfg)
    engine.ingest_arrays(keys, points)      # framed + logged, then applied
    engine.close()                          # ... or the process dies here

    engine = recover_stream_engine("waldir", durability=cfg)
    # snapshot + tail replay: same hulls, same counters, logging resumes

Replica standbys and online resharding live on
:class:`~repro.shard.ShardedEngine` (``standbys=`` and ``resize()``)
and build on the same determinism: a standby applying the same slices
*is* a recovery that never has to replay.
"""

from .deadletter import DeadLetterLog, attach_dead_letters
from .recovery import (
    recover_engine,
    recover_sharded_engine,
    recover_stream_engine,
    replay_into,
)
from .wal import (
    DurabilityConfig,
    WalError,
    WalWriter,
    fsck,
    iter_entries,
    list_segments,
    list_snapshots,
    load_latest_snapshot,
    read_meta,
    wal_exists,
)

__all__ = [
    "DurabilityConfig",
    "WalError",
    "WalWriter",
    "DeadLetterLog",
    "attach_dead_letters",
    "fsck",
    "iter_entries",
    "list_segments",
    "list_snapshots",
    "load_latest_snapshot",
    "read_meta",
    "wal_exists",
    "recover_engine",
    "recover_sharded_engine",
    "recover_stream_engine",
    "replay_into",
]

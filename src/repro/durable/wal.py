"""Write-ahead batch log: checksummed segment files + snapshot compaction.

The engines are deterministic, so durability reduces to *logging the
inputs*: every acknowledged mutation (``ingest_arrays`` batch,
``insert``, ``advance_time``) is appended to an append-only segment
file before the caller sees the ack, and recovery is "load the latest
snapshot, re-ingest the tail" — bit-identical to never having crashed.

Wire format (one *frame* per entry)::

    <u32 payload_len> <u32 crc32(payload)> <payload>

where the payload is :func:`repro.shard.transport.dumps` of the entry
tuple ``(seq, kind, *args)`` — the same skeleton/raw-NumPy-buffer codec
the shard pipes use, so a logged batch costs one pickle of the tiny
skeleton plus raw array bytes, no per-point encoding.  Entry kinds:

- ``("meta", doc)`` — engine configuration (spec/window/tier), written
  once at log creation and re-carried inside every snapshot.
- ``("batch", keys, points, ts, watermark)`` — one ingest_arrays call.
- ``("insert", key, x, y, ts, watermark)`` — one insert call.
- ``("advance", now, watermark)`` — one advance_time call.

Segments are named ``wal-<first_seq>.log`` and rotated at
``segment_bytes``.  A crash can tear the final frame of the final
segment; the reader tolerates (and the next writer truncates) exactly
that — corruption anywhere else raises :class:`WalError` loudly.

Snapshot compaction writes ``snapshot-<seq>.json`` (atomic
temp+rename) holding the engine's ``snapshot_state()`` document after
applying entries ``<= seq``, then deletes the covered segments and
older snapshots.  ``fsync`` policy:

- ``"always"`` — flush+fsync after every append (lowest loss window).
- ``"batch"`` (default) — flush per append, fsync at rotation,
  snapshot, explicit :meth:`WalWriter.sync`, and close.
- ``"never"`` — leave it to the OS page cache.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, List, Optional, Tuple

from ..obs import metrics as OBS
from ..shard import transport

__all__ = [
    "DurabilityConfig",
    "WalError",
    "WalWriter",
    "fsck",
    "iter_entries",
    "list_segments",
    "list_snapshots",
    "load_latest_snapshot",
    "read_meta",
]

_FRAME = struct.Struct("<II")  # payload length, crc32(payload)
_SEG_PREFIX = "wal-"
_SEG_SUFFIX = ".log"
_SNAP_PREFIX = "snapshot-"
_SNAP_SUFFIX = ".json"
_SEQ_DIGITS = 20
SNAPSHOT_FORMAT = "repro.wal-snapshot"
SNAPSHOT_VERSION = 1
FSYNC_POLICIES = ("always", "batch", "never")


class WalError(RuntimeError):
    """A corrupt, inconsistent, or mis-used write-ahead log."""


@dataclass(frozen=True)
class DurabilityConfig:
    """Durability policy for an engine tier (``durability=`` kwarg).

    Args:
        wal_dir: directory holding segments, snapshots, and the
            dead-letter log; created if missing.  A fresh engine
            requires it empty — recovering into an existing log goes
            through :mod:`repro.durable.recovery`.
        fsync: ``"always"``, ``"batch"`` (default), or ``"never"``.
        segment_bytes: rotation threshold per segment file.
        snapshot_every: appended entries between automatic snapshot
            compactions (None disables; compact manually via
            :meth:`WalWriter.write_snapshot`).
        dead_letters: when the engine runs a bounded-lateness window,
            also persist later-than-watermark drops to a replayable
            dead-letter log (see :mod:`repro.durable.deadletter`).
    """

    wal_dir: Any
    fsync: str = "batch"
    segment_bytes: int = 16 * 1024 * 1024
    snapshot_every: Optional[int] = 4096
    dead_letters: bool = True

    def __post_init__(self):
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {self.fsync!r}"
            )
        if self.segment_bytes < 1024:
            raise ValueError("segment_bytes must be >= 1024")
        if self.snapshot_every is not None and self.snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1 (or None)")

    @property
    def path(self) -> Path:
        return Path(self.wal_dir)


def _seg_path(wal_dir: Path, first_seq: int) -> Path:
    return wal_dir / f"{_SEG_PREFIX}{first_seq:0{_SEQ_DIGITS}d}{_SEG_SUFFIX}"


def _snap_path(wal_dir: Path, seq: int) -> Path:
    return wal_dir / f"{_SNAP_PREFIX}{seq:0{_SEQ_DIGITS}d}{_SNAP_SUFFIX}"


def _named_seq(path: Path, prefix: str, suffix: str) -> Optional[int]:
    name = path.name
    if not (name.startswith(prefix) and name.endswith(suffix)):
        return None
    body = name[len(prefix) : -len(suffix)]
    return int(body) if body.isdigit() else None


def list_segments(wal_dir) -> List[Tuple[int, Path]]:
    """``(first_seq, path)`` for every segment, ascending."""
    wal_dir = Path(wal_dir)
    if not wal_dir.is_dir():
        return []
    out = []
    for path in wal_dir.iterdir():
        seq = _named_seq(path, _SEG_PREFIX, _SEG_SUFFIX)
        if seq is not None:
            out.append((seq, path))
    out.sort()
    return out


def list_snapshots(wal_dir) -> List[Tuple[int, Path]]:
    """``(covered_seq, path)`` for every snapshot, ascending."""
    wal_dir = Path(wal_dir)
    if not wal_dir.is_dir():
        return []
    out = []
    for path in wal_dir.iterdir():
        seq = _named_seq(path, _SNAP_PREFIX, _SNAP_SUFFIX)
        if seq is not None:
            out.append((seq, path))
    out.sort()
    return out


def wal_exists(wal_dir) -> bool:
    """Whether the directory holds any WAL state at all."""
    return bool(list_segments(wal_dir) or list_snapshots(wal_dir))


def _decode_entry(payload: bytes, path: Path) -> tuple:
    try:
        entry = transport.loads(payload)
    except transport.TransportError as exc:
        raise WalError(f"{path.name}: undecodable entry payload: {exc}") from exc
    if not (isinstance(entry, tuple) and len(entry) >= 2 and isinstance(entry[0], int)):
        raise WalError(f"{path.name}: malformed entry {type(entry).__name__}")
    return entry


def _scan_frames(path: Path, *, tolerate_torn: bool) -> Iterator[Tuple[int, bytes]]:
    """Yield ``(end_offset, payload)`` per valid frame.

    A truncated or checksum-failing frame ends iteration when
    ``tolerate_torn`` (the crash-tail case — only legal in the final
    segment) and raises :class:`WalError` otherwise.
    """
    with open(path, "rb") as f:
        offset = 0
        while True:
            header = f.read(_FRAME.size)
            if not header:
                return
            torn = None
            if len(header) < _FRAME.size:
                torn = f"truncated frame header at offset {offset}"
            else:
                length, crc = _FRAME.unpack(header)
                if length > transport.MAX_FRAME_BYTES:
                    torn = f"frame of {length} bytes at offset {offset}"
                else:
                    payload = f.read(length)
                    if len(payload) < length:
                        torn = f"truncated frame payload at offset {offset}"
                    elif zlib.crc32(payload) != crc:
                        torn = f"checksum mismatch at offset {offset}"
            if torn is not None:
                if tolerate_torn:
                    OBS.WAL_TORN_FRAMES.inc()
                    return
                raise WalError(f"{path.name}: {torn}")
            offset += _FRAME.size + length
            yield offset, payload


def iter_entries(wal_dir, *, after: int = 0) -> Iterator[tuple]:
    """Yield entry tuples ``(seq, kind, *args)`` with ``seq > after``.

    Sequence numbers must be contiguous across segment boundaries; a
    gap means a deleted or renamed segment and raises.  Only the final
    segment may end in a torn frame.
    """
    segments = list_segments(wal_dir)
    expected = None
    for i, (first_seq, path) in enumerate(segments):
        last = i == len(segments) - 1
        if expected is not None and first_seq != expected:
            raise WalError(
                f"segment gap: expected seq {expected}, found {path.name}"
            )
        expected = first_seq
        for _, payload in _scan_frames(path, tolerate_torn=last):
            entry = _decode_entry(payload, path)
            if entry[0] != expected:
                raise WalError(
                    f"{path.name}: expected seq {expected}, found {entry[0]}"
                )
            expected += 1
            if entry[0] > after:
                yield entry


def fsck(wal_dir) -> dict:
    """Verify every segment's frames end-to-end, not just the tail.

    Normal recovery only has to prove the *final* segment's tail is
    whole — everything earlier was fsynced and checksum-verified when
    written.  ``fsck`` is the offline auditor for the rest: it re-reads
    every frame of every segment, re-computes each CRC, decodes each
    entry, and re-checks sequence contiguity within and across
    segments, reporting the **first bad byte offset** per segment.

    A bad frame in the final segment that *reaches end-of-file* — a
    truncated header/payload, or a checksum failure on the very last
    frame — is classified as a *torn tail* (the crash case recovery
    repairs routinely) and does not fail the check.  A bad frame
    anywhere else, a checksum failure with valid-looking bytes after
    it (bit rot recovery's tail repair would silently truncate away),
    an undecodable entry, a sequence break, or a segment gap is real
    corruption and flips ``ok`` to False.

    Returns a report document::

        {"wal_dir", "ok", "entries", "records", "last_seq",
         "first_error",                  # "seg: reason at offset N" | None
         "segments": [{"path", "bytes", "frames", "first_seq",
                       "last_seq", "gap", "error", "error_offset",
                       "torn_tail"}, ...]}

    A segment gap is recorded in ``gap`` (not ``error``) so the frame
    audit still runs over the post-gap segment — corruption after a
    missing segment is reported too, and its intact entries still
    count toward the report totals.
    """
    wal_dir = Path(wal_dir)
    report = {
        "wal_dir": str(wal_dir),
        "ok": True,
        "entries": 0,
        "records": 0,
        "last_seq": 0,
        "first_error": None,
        "segments": [],
    }
    segments = list_segments(wal_dir)
    expected: Optional[int] = None
    for i, (first_seq, path) in enumerate(segments):
        final = i == len(segments) - 1
        seg = {
            "path": path.name,
            "bytes": path.stat().st_size,
            "frames": 0,
            "first_seq": None,
            "last_seq": None,
            "gap": None,
            "error": None,
            "error_offset": None,
            "torn_tail": False,
        }
        if expected is not None and first_seq != expected:
            seg["gap"] = f"segment gap: expected seq {expected}"
            # Contiguity is unprovable past a gap; rebase on this
            # segment's declared first sequence and keep auditing the
            # frames themselves.
            expected = None
        with open(path, "rb") as f:
            offset = 0
            while True:
                header = f.read(_FRAME.size)
                if not header:
                    break
                problem = None
                entry = None
                length = 0
                # Whether the damage plausibly extends to EOF (a
                # partial final write) rather than sitting between
                # intact frames (bit rot).
                at_eof = False
                if len(header) < _FRAME.size:
                    problem = "truncated frame header"
                    at_eof = True
                else:
                    length, crc = _FRAME.unpack(header)
                    if length > transport.MAX_FRAME_BYTES:
                        # The length field itself is garbage, so
                        # nothing after this point is parseable.
                        problem = f"oversized frame ({length} bytes)"
                        at_eof = True
                    else:
                        payload = f.read(length)
                        if len(payload) < length:
                            problem = "truncated frame payload"
                            at_eof = True
                        elif zlib.crc32(payload) != crc:
                            problem = "checksum mismatch"
                            at_eof = (
                                offset + _FRAME.size + length
                                >= seg["bytes"]
                            )
                if problem is None:
                    try:
                        entry = _decode_entry(payload, path)
                    except WalError as exc:
                        problem = f"undecodable entry ({exc})"
                if problem is None and expected is not None and (
                    entry[0] != expected
                ):
                    problem = (
                        f"sequence break: expected {expected}, "
                        f"found {entry[0]}"
                    )
                if problem is not None:
                    # Framing is byte-offset based, so nothing past
                    # the first bad frame can be trusted; stop here
                    # (exactly where _repair_tail would truncate).
                    seg["error"] = problem
                    seg["error_offset"] = offset
                    seg["torn_tail"] = final and at_eof
                    expected = None
                    break
                if seg["first_seq"] is None:
                    seg["first_seq"] = entry[0]
                seg["last_seq"] = entry[0]
                seg["frames"] += 1
                expected = entry[0] + 1
                report["entries"] += 1
                report["last_seq"] = max(report["last_seq"], entry[0])
                if entry[1] == "batch":
                    report["records"] += len(entry[3])
                elif entry[1] == "insert":
                    report["records"] += 1
                offset += _FRAME.size + length
        if seg["gap"] is not None:
            report["ok"] = False
            if report["first_error"] is None:
                report["first_error"] = (
                    f"{seg['path']}: {seg['gap']} at offset 0"
                )
        if seg["error"] is not None:
            if not seg["torn_tail"]:
                report["ok"] = False
            if report["first_error"] is None:
                report["first_error"] = (
                    f"{seg['path']}: {seg['error']} "
                    f"at offset {seg['error_offset']}"
                )
        report["segments"].append(seg)
    return report


def load_latest_snapshot(wal_dir) -> Optional[Tuple[int, dict, Optional[dict]]]:
    """``(covered_seq, state_doc, meta)`` of the newest snapshot, or None."""
    snapshots = list_snapshots(wal_dir)
    if not snapshots:
        return None
    seq, path = snapshots[-1]
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise WalError(f"unreadable snapshot {path.name}: {exc}") from exc
    if doc.get("format") != SNAPSHOT_FORMAT or doc.get("version") != SNAPSHOT_VERSION:
        raise WalError(f"{path.name}: not a {SNAPSHOT_FORMAT} v{SNAPSHOT_VERSION}")
    if doc.get("wal_seq") != seq:
        raise WalError(f"{path.name}: wal_seq {doc.get('wal_seq')} != filename")
    return seq, doc["state"], doc.get("meta")


def read_meta(wal_dir) -> Optional[dict]:
    """The engine-configuration document logged at creation, if any.

    Prefers the copy carried by the latest snapshot (compaction may
    have pruned the segment holding the original ``meta`` entry).
    """
    snap = load_latest_snapshot(wal_dir)
    if snap is not None and snap[2] is not None:
        return snap[2]
    for entry in iter_entries(wal_dir):
        if entry[1] == "meta":
            return entry[2]
        break  # meta is only ever the first entry
    return None


class WalWriter:
    """Appender for one WAL directory (single engine, thread-safe).

    Opening repairs the crash tail — any torn final frame is truncated
    off the last segment — then continues the sequence after the
    highest durable entry.  With ``require_empty=True`` (the fresh
    ``durability=`` constructor path) pre-existing state raises
    instead: a fresh engine atop a non-empty log would silently orphan
    the logged prefix; recover it via :mod:`repro.durable.recovery`.
    """

    def __init__(
        self,
        config: DurabilityConfig,
        *,
        meta: Optional[dict] = None,
        require_empty: bool = False,
    ):
        self.config = config
        self.dir = config.path
        self.dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._file = None
        self._seg_bytes = 0
        self._closed = False
        self._appends_since_snapshot = 0
        existing = wal_exists(self.dir)
        if require_empty and existing:
            raise WalError(
                f"{self.dir} already holds WAL state; recover it with "
                "repro.durable.recovery instead of attaching a fresh engine"
            )
        self.meta = meta if not existing else (read_meta(self.dir) or meta)
        self._seq = self._repair_tail()
        if not existing and self.meta is not None:
            self.append("meta", self.meta)

    # -- open/repair -----------------------------------------------------

    def _repair_tail(self) -> int:
        """Truncate a torn final frame; return the last durable seq."""
        snapshots = list_snapshots(self.dir)
        last_seq = snapshots[-1][0] if snapshots else 0
        segments = list_segments(self.dir)
        if not segments:
            return last_seq
        first_seq, path = segments[-1]
        valid_end, seq = 0, first_seq - 1
        for end, payload in _scan_frames(path, tolerate_torn=True):
            valid_end, seq = end, _decode_entry(payload, path)[0]
        if valid_end < path.stat().st_size:
            os.truncate(path, valid_end)
        if valid_end == 0:
            path.unlink()  # nothing durable in it at all
        return max(last_seq, seq)

    # -- append path -----------------------------------------------------

    def _ensure_file(self):
        if self._file is None:
            self._seg_path = _seg_path(self.dir, self._seq + 1)
            self._file = open(self._seg_path, "ab")
            self._seg_bytes = self._file.tell()
        return self._file

    def _fsync(self):
        os.fsync(self._file.fileno())
        OBS.WAL_FSYNCS.inc()

    def append(self, kind: str, *args) -> int:
        """Frame and append one entry; returns its sequence number."""
        with self._lock:
            if self._closed:
                raise WalError("WAL is closed")
            seq = self._seq + 1
            payload = transport.dumps((seq, kind) + args)
            f = self._ensure_file()
            f.write(_FRAME.pack(len(payload), zlib.crc32(payload)))
            f.write(payload)
            if self.config.fsync == "always":
                f.flush()
                self._fsync()
            elif self.config.fsync == "batch":
                f.flush()
            self._seq = seq
            self._seg_bytes += _FRAME.size + len(payload)
            self._appends_since_snapshot += 1
            OBS.WAL_APPENDS.labels(kind).inc()
            OBS.WAL_BYTES.inc(_FRAME.size + len(payload))
            if self._seg_bytes >= self.config.segment_bytes:
                self._rotate_locked()
            return seq

    def append_batch(self, keys, points, ts=None, watermark=None) -> int:
        return self.append("batch", keys, points, ts, watermark)

    def append_insert(self, key, x, y, ts=None, watermark=None) -> int:
        return self.append("insert", key, float(x), float(y), ts, watermark)

    def append_advance(self, now, watermark=None) -> int:
        return self.append("advance", float(now), watermark)

    @property
    def last_seq(self) -> int:
        return self._seq

    # -- rotation / sync -------------------------------------------------

    def _close_segment(self):
        if self._file is not None:
            self._file.flush()
            if self.config.fsync != "never":
                self._fsync()
            self._file.close()
            self._file = None
            self._seg_bytes = 0

    def _rotate_locked(self):
        self._close_segment()
        OBS.WAL_ROTATIONS.inc()

    def rotate(self):
        """Seal the open segment (the next append opens a fresh one)."""
        with self._lock:
            if self._file is not None:
                self._rotate_locked()

    def sync(self):
        """Flush and fsync the open segment regardless of policy."""
        with self._lock:
            if self._file is not None and not self._closed:
                self._file.flush()
                self._fsync()

    # -- snapshot compaction ---------------------------------------------

    def should_compact(self) -> bool:
        every = self.config.snapshot_every
        return every is not None and self._appends_since_snapshot >= every

    def write_snapshot(self, state_doc: dict) -> Path:
        """Persist the engine state covering every entry appended so far,
        then prune the covered segments and older snapshots.

        ``state_doc`` must be the engine's ``snapshot_state()`` taken
        *after* applying the last appended entry — the caller's ingest
        path guarantees that ordering.
        """
        with self._lock:
            if self._closed:
                raise WalError("WAL is closed")
            self._close_segment()  # covered segments end exactly at _seq
            seq = self._seq
            doc = {
                "format": SNAPSHOT_FORMAT,
                "version": SNAPSHOT_VERSION,
                "wal_seq": seq,
                "meta": self.meta,
                "state": state_doc,
            }
            path = _snap_path(self.dir, seq)
            tmp = path.with_suffix(".tmp")
            with open(tmp, "w", encoding="utf-8") as f:
                json.dump(doc, f, separators=(",", ":"))
                f.flush()
                if self.config.fsync != "never":
                    os.fsync(f.fileno())
            os.replace(tmp, path)
            for first_seq, seg in list_segments(self.dir):
                if first_seq <= seq:
                    seg.unlink(missing_ok=True)
            for old_seq, snap in list_snapshots(self.dir):
                if old_seq < seq:
                    snap.unlink(missing_ok=True)
            self._appends_since_snapshot = 0
            OBS.WAL_SNAPSHOTS.inc()
            return path

    # -- lifecycle -------------------------------------------------------

    def close(self):
        with self._lock:
            if not self._closed:
                self._close_segment()
                self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

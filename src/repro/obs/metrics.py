"""Metric families for every repro tier, declared once on the default registry.

Hot-path call sites import the pre-resolved label children (e.g.
``ENGINE_INGEST_RECORDS``) so steady-state cost is one attribute access, a
flag check, and a locked add.  Families are declared eagerly so the
Prometheus exposition always lists every HELP/TYPE pair, traffic or not.
"""

from __future__ import annotations

from .registry import Counter, Gauge, Histogram, LATENCY_BUCKETS, SIZE_BUCKETS

# -- ingest (shared across tiers via the tier label) -----------------------

INGEST_RECORDS = Counter(
    "repro_ingest_records_total",
    "Records admitted by an engine tier (post late-drop filtering).",
    ("tier",),
)
INGEST_BATCHES = Counter(
    "repro_ingest_batches_total",
    "ingest_arrays batches processed by an engine tier.",
    ("tier",),
)
INGEST_BATCH_SECONDS = Histogram(
    "repro_ingest_batch_seconds",
    "Wall-clock latency of one ingest_arrays batch, per tier.",
    ("tier",),
)
ENGINE_INGEST_RECORDS = INGEST_RECORDS.labels("engine")
ENGINE_INGEST_BATCHES = INGEST_BATCHES.labels("engine")
ENGINE_INGEST_BATCH_SECONDS = INGEST_BATCH_SECONDS.labels("engine")
SHARD_INGEST_RECORDS = INGEST_RECORDS.labels("shard")
SHARD_INGEST_BATCHES = INGEST_BATCHES.labels("shard")
SHARD_INGEST_BATCH_SECONDS = INGEST_BATCH_SECONDS.labels("shard")

# -- engine tier -----------------------------------------------------------

ENGINE_RELEASED_RECORDS = Counter(
    "repro_engine_released_records_total",
    "Buffered out-of-order records released by watermark advance.",
)
ENGINE_EXPIRED_BUCKETS = Counter(
    "repro_engine_expired_buckets_total",
    "Window buckets expired by advance_time across all streams.",
)
ENGINE_EVICTIONS = Counter(
    "repro_engine_evictions_total",
    "Streams evicted (LRU or explicit evict).",
)
LATE_DROPPED_RECORDS = Counter(
    "repro_late_dropped_records_total",
    "Records dropped for arriving later than the bounded-lateness watermark.",
)
DEAD_LETTER_RECORDS = Counter(
    "repro_dead_letter_records_total",
    "Late-dropped records handed to an on_late dead-letter callback.",
)
ENGINE_STREAMS = Gauge(
    "repro_engine_streams",
    "Live keyed streams in the engine (refreshed at stats()).",
)
ENGINE_SAMPLE_POINTS = Gauge(
    "repro_engine_sample_points",
    "Total retained hull sample points (refreshed at stats()).",
)
ENGINE_BUFFERED_RECORDS = Gauge(
    "repro_engine_buffered_records",
    "Records held in reorder buffers awaiting watermark (refreshed at stats()).",
)

# -- window layer ----------------------------------------------------------

WINDOW_BUCKET_SEALS = Counter(
    "repro_window_bucket_seals_total",
    "Head buckets sealed into the window ledger.",
)
WINDOW_BUCKET_MERGES = Counter(
    "repro_window_bucket_merges_total",
    "Bucket pairs coalesced by the exponential-histogram invariant.",
)
WINDOW_BUCKET_EXPIRIES = Counter(
    "repro_window_bucket_expiries_total",
    "Buckets dropped off the tail of the window.",
)

# -- shard tier (parent side) ----------------------------------------------

SHARD_PARTITION_SECONDS = Histogram(
    "repro_shard_partition_seconds",
    "Parent-side time partitioning a batch into per-shard slices.",
)
SHARD_SEND_SECONDS = Histogram(
    "repro_shard_send_seconds",
    "Parent-side time serialising+sending one request to one shard.",
    ("shard",),
)
SHARD_COLLECT_SECONDS = Histogram(
    "repro_shard_collect_seconds",
    "Parent-side time blocked collecting one reply from one shard.",
    ("shard",),
)
SHARD_INFLIGHT = Gauge(
    "repro_shard_inflight_requests",
    "Requests sent to a shard and not yet collected.",
    ("shard",),
)
SHARD_STREAMS = Gauge(
    "repro_shard_streams",
    "Streams owned by each shard (refreshed at stats()).",
    ("shard",),
)
SHARD_PARTIALS_REDUCED = Gauge(
    "repro_shard_partials_reduced",
    "Worker-push partial reductions computed by each shard (refreshed at stats()).",
    ("shard",),
)
SHARD_PARTIALS_SERVED = Gauge(
    "repro_shard_partials_served",
    "merged_state requests served from a warm worker-push partial (refreshed at stats()).",
    ("shard",),
)

# -- transport -------------------------------------------------------------

TRANSPORT_FRAMES = Counter(
    "repro_transport_frames_total",
    "Raw frames moved across shard pipes, by direction.",
    ("dir",),
)
TRANSPORT_BYTES = Counter(
    "repro_transport_bytes_total",
    "Payload bytes moved across shard pipes, by direction.",
    ("dir",),
)
TRANSPORT_SHM_MESSAGES = Counter(
    "repro_transport_shm_messages_total",
    "Messages escalated to the shared-memory ring, by direction.",
    ("dir",),
)
TRANSPORT_FRAMES_SEND = TRANSPORT_FRAMES.labels("send")
TRANSPORT_FRAMES_RECV = TRANSPORT_FRAMES.labels("recv")
TRANSPORT_BYTES_SEND = TRANSPORT_BYTES.labels("send")
TRANSPORT_BYTES_RECV = TRANSPORT_BYTES.labels("recv")
TRANSPORT_SHM_SEND = TRANSPORT_SHM_MESSAGES.labels("send")
TRANSPORT_SHM_RECV = TRANSPORT_SHM_MESSAGES.labels("recv")

# -- worker-push partial cache (incremented worker-side) -------------------

PARTIAL_CACHE = Counter(
    "repro_partial_cache_total",
    "Worker-push partial cache outcomes on merged_state requests.",
    ("result",),
)
PARTIAL_CACHE_HIT = PARTIAL_CACHE.labels("hit")
PARTIAL_CACHE_MISS = PARTIAL_CACHE.labels("miss")

# -- serve tier ------------------------------------------------------------

SERVE_QUEUE_WAIT_SECONDS = Histogram(
    "repro_serve_queue_wait_seconds",
    "Time an ingest batch waited in the service queue before coalescing.",
)
SERVE_COALESCED_RECORDS = Histogram(
    "repro_serve_coalesced_records",
    "Records per coalesced engine call in the service drain loop.",
    buckets=SIZE_BUCKETS,
)
SERVE_QUEUE_DEPTH = Gauge(
    "repro_serve_queue_depth",
    "Batches waiting in the service ingest queue (refreshed at stats()).",
)
SERVE_CONNECTIONS = Gauge(
    "repro_serve_connections",
    "Open NDJSON client connections.",
)
SERVE_SUBSCRIBERS = Gauge(
    "repro_serve_subscribers",
    "Active subscription feeds.",
)
SERVE_VERB_SECONDS = Histogram(
    "repro_serve_verb_seconds",
    "Server-side latency per NDJSON verb.",
    ("verb",),
)

# -- durability (repro.durable) --------------------------------------------

WAL_APPENDS = Counter(
    "repro_wal_appends_total",
    "Entries appended to the write-ahead log, by entry kind.",
    ("kind",),
)
WAL_APPEND_BATCH = WAL_APPENDS.labels("batch")
WAL_APPEND_INSERT = WAL_APPENDS.labels("insert")
WAL_APPEND_ADVANCE = WAL_APPENDS.labels("advance")
WAL_BYTES = Counter(
    "repro_wal_bytes_total",
    "Framed bytes appended to write-ahead log segments.",
)
WAL_FSYNCS = Counter(
    "repro_wal_fsyncs_total",
    "fsync calls issued by the write-ahead log.",
)
WAL_ROTATIONS = Counter(
    "repro_wal_rotations_total",
    "WAL segment files rotated out (closed at the size threshold).",
)
WAL_SNAPSHOTS = Counter(
    "repro_wal_snapshots_total",
    "Snapshot compactions written by the write-ahead log.",
)
WAL_TORN_FRAMES = Counter(
    "repro_wal_torn_frames_total",
    "Torn frames found (and truncated) at a crashed segment tail.",
)
WAL_REPLAYED_ENTRIES = Counter(
    "repro_wal_replayed_entries_total",
    "WAL entries replayed into an engine during recovery.",
)
WAL_REPLAYED_RECORDS = Counter(
    "repro_wal_replayed_records_total",
    "Records re-ingested from the WAL during recovery.",
)
WAL_REPLAY_REJECTED = Counter(
    "repro_wal_replay_rejected_total",
    "Replayed WAL entries rejected by the engine (identically to the "
    "live ingest that logged them).",
)
DEAD_LETTERS_PERSISTED = Counter(
    "repro_dead_letters_persisted_total",
    "Late-dropped records appended to the dead-letter log.",
)
REPLICA_PROMOTIONS = Counter(
    "repro_replica_promotions_total",
    "Standby workers promoted to primary after a worker death.",
    ("shard",),
)
RESIZES = Counter(
    "repro_resize_total",
    "Online ring resizes completed.",
)
RESIZE_MOVED_KEYS = Counter(
    "repro_resize_moved_keys_total",
    "Keys migrated between shards by online ring resizes.",
)

# -- gateway tier (repro.gateway) -------------------------------------------
#
# Tenant ids are client-visible configuration, so every tenant-labeled
# family carries a cardinality cap: past MAX_TENANT_CHILDREN distinct
# tenants the registry folds newcomers into one "__overflow__" child
# instead of growing without bound.

#: Per-family bound on distinct tenant label children.
MAX_TENANT_CHILDREN = 256

GATEWAY_REQUESTS = Counter(
    "repro_gateway_requests_total",
    "HTTP requests served by the gateway, by verb and status code.",
    ("verb", "code"),
)
GATEWAY_REQUEST_SECONDS = Histogram(
    "repro_gateway_request_seconds",
    "Server-side latency per gateway verb.",
    ("verb",),
)
GATEWAY_INGEST_RECORDS = Counter(
    "repro_gateway_ingest_records_total",
    "Records accepted through the gateway ingest verb, per tenant.",
    ("tenant",),
    max_label_children=MAX_TENANT_CHILDREN,
)
GATEWAY_INGEST_BYTES = Counter(
    "repro_gateway_ingest_bytes_total",
    "Request-body bytes accepted through the gateway ingest verb, per tenant.",
    ("tenant",),
    max_label_children=MAX_TENANT_CHILDREN,
)
GATEWAY_REJECTED = Counter(
    "repro_gateway_rejected_total",
    "Gateway requests rejected per tenant, by reason "
    "(rate_limit, quota, bad_request, engine).",
    ("tenant", "reason"),
    max_label_children=4 * MAX_TENANT_CHILDREN,
)
GATEWAY_AUTH_FAILURES = Counter(
    "repro_gateway_auth_failures_total",
    "Requests refused before tenant resolution (missing or bad token).",
)
GATEWAY_TENANT_KEYS = Gauge(
    "repro_gateway_tenant_keys",
    "Live keys owned by each tenant (refreshed at stats/metrics).",
    ("tenant",),
    max_label_children=MAX_TENANT_CHILDREN,
)
GATEWAY_LATE_DROPPED = Gauge(
    "repro_gateway_late_dropped_records",
    "Later-than-watermark records dropped per tenant "
    "(refreshed at stats/metrics from the engine's late-drop ledger).",
    ("tenant",),
    max_label_children=MAX_TENANT_CHILDREN,
)
GATEWAY_DEAD_LETTER_RECORDS = Counter(
    "repro_gateway_dead_letter_records_total",
    "Late-dropped records handed to the dead-letter hook, per tenant.",
    ("tenant",),
    max_label_children=MAX_TENANT_CHILDREN,
)
GATEWAY_SSE_STREAMS = Gauge(
    "repro_gateway_sse_streams",
    "Open SSE subscription streams.",
)
GATEWAY_CONNECTIONS = Gauge(
    "repro_gateway_connections",
    "Open gateway HTTP connections.",
)

# -- tracing ---------------------------------------------------------------

SPAN_SECONDS = Histogram(
    "repro_span_seconds",
    "Duration of traced spans, by span name.",
    ("span",),
)

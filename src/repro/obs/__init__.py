"""repro.obs — unified metrics, tracing, and profiling for every tier.

- :mod:`repro.obs.registry` — dependency-free Counter/Gauge/Histogram
  registry with labels, thread-safety, a global ``REPRO_OBS`` kill switch,
  JSON-safe snapshots (mergeable across processes), and Prometheus text
  exposition.
- :mod:`repro.obs.metrics` — the metric families every tier increments.
- :mod:`repro.obs.trace` — ``span()`` context managers recording duration
  histograms and, at ``REPRO_TRACE=1``, JSONL events with trace/span ids
  propagated parent → shard worker → reply.
"""

from . import metrics
from .history import ScrapeHistory, render_rates, snapshot_rates
from .registry import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    OVERFLOW_LABEL,
    Registry,
    SIZE_BUCKETS,
    merge_snapshots,
    obs_enabled,
    registry,
    render_snapshot,
    reset,
    set_enabled,
)
from .trace import configure as configure_tracing
from .trace import current_context, resume, span, tracing

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "LATENCY_BUCKETS",
    "OVERFLOW_LABEL",
    "SIZE_BUCKETS",
    "metrics",
    "ScrapeHistory",
    "snapshot_rates",
    "render_rates",
    "merge_snapshots",
    "obs_enabled",
    "registry",
    "render_snapshot",
    "reset",
    "set_enabled",
    "configure_tracing",
    "current_context",
    "resume",
    "span",
    "tracing",
]

"""In-process scrape history: a ring buffer of registry snapshots.

``python -m repro metrics --watch`` (and anything else that polls
``stats().obs``) sees monotonically growing totals, which are useless on
a dashboardless terminal — what an operator wants is *rates*.
:class:`ScrapeHistory` keeps the last N ``(timestamp, snapshot)`` pairs
and differences the two endpoints of the retained span: counters and
histogram count/sum become per-second rates, gauges pass through at
their latest value (a gauge is already an instantaneous reading).

The snapshots are the JSON-safe documents produced by
:meth:`Registry.collect` / ``merge_snapshots`` — the same shape the
shard tier merges across processes — so history works equally over a
local registry or a parent-merged ring snapshot.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Optional, Tuple

from .registry import registry

__all__ = ["ScrapeHistory", "snapshot_rates", "render_rates"]


def _child_delta(new, old) -> Optional[Tuple[float, float]]:
    """(count_delta, sum_delta) between two child snapshots.

    Counter/gauge children snapshot to a bare float (delta, delta);
    histogram children to ``{"sum", "count", "buckets"}``.  Returns
    None when the pair is malformed or the counter reset mid-span
    (negative delta — e.g. the registry was reset between scrapes).
    """
    if isinstance(new, dict):
        if not isinstance(old, dict):
            return None
        dc = new.get("count", 0) - old.get("count", 0)
        ds = new.get("sum", 0.0) - old.get("sum", 0.0)
        if dc < 0:
            return None
        return float(dc), float(ds)
    if isinstance(old, dict):
        return None
    delta = float(new) - float(old)
    if delta < 0:
        return None
    return delta, delta


def snapshot_rates(new: dict, old: dict, elapsed: float) -> dict:
    """Per-second rates between two registry snapshots.

    Returns ``{name: {"type", "help", "values": {labels: rate}}}``
    where counter values are deltas/sec, histogram values are
    ``{"rate": count/sec, "mean": sum_delta/count_delta}``, and gauges
    carry their *latest* value unchanged.  Metrics/series absent from
    the old snapshot are treated as starting from zero.
    """
    if elapsed <= 0.0:
        raise ValueError("elapsed must be positive")
    out: dict = {}
    for name, family in new.items():
        kind = family.get("type")
        old_values = old.get(name, {}).get("values", {})
        values: dict = {}
        for labels, val in family.get("values", {}).items():
            if kind == "gauge":
                values[labels] = val
                continue
            base = old_values.get(labels, {} if isinstance(val, dict) else 0.0)
            delta = _child_delta(val, base)
            if delta is None:
                continue
            dc, ds = delta
            if kind == "histogram":
                values[labels] = {
                    "rate": dc / elapsed,
                    "mean": (ds / dc) if dc else 0.0,
                }
            else:
                values[labels] = dc / elapsed
        out[name] = {"type": kind, "help": family.get("help", ""), "values": values}
    return out


def render_rates(rates: dict, *, skip_zero: bool = True) -> str:
    """Human-readable one-line-per-series view of :func:`snapshot_rates`."""
    lines = []
    for name in sorted(rates):
        family = rates[name]
        kind = family["type"]
        for labels in sorted(family["values"]):
            val = family["values"][labels]
            series = f"{name}{{{labels}}}" if labels else name
            if kind == "gauge":
                lines.append(f"{series} {val:g}")
            elif kind == "histogram":
                if skip_zero and not val["rate"]:
                    continue
                lines.append(
                    f"{series} {val['rate']:g}/s mean={val['mean']:g}"
                )
            else:
                if skip_zero and not val:
                    continue
                lines.append(f"{series} {val:g}/s")
    return "\n".join(lines)


class ScrapeHistory:
    """Ring buffer of ``(t, snapshot)`` scrapes with rate queries.

    Args:
        capacity: scrapes retained (>= 2 needed before rates exist).
    """

    def __init__(self, capacity: int = 120):
        if capacity < 2:
            raise ValueError("capacity must be >= 2")
        self._ring: Deque[Tuple[float, dict]] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._ring)

    def record(self, snapshot: Optional[dict] = None, *, t: Optional[float] = None) -> dict:
        """Append one scrape (default: the process registry, now)."""
        if snapshot is None:
            snapshot = registry().collect()
        self._ring.append((time.monotonic() if t is None else t, snapshot))
        return snapshot

    def span_seconds(self, *, span: Optional[float] = None) -> float:
        """Elapsed time covered by :meth:`rates` for this ``span``."""
        new_t, _, old_t, _ = self._endpoints(span)
        return new_t - old_t

    def _endpoints(self, span: Optional[float]):
        if len(self._ring) < 2:
            raise ValueError("need at least two scrapes to compute rates")
        new_t, new_snap = self._ring[-1]
        old_t, old_snap = self._ring[0]
        if span is not None:
            # Oldest scrape still inside the window, else the closest.
            for t, snap in reversed(self._ring):
                if new_t - t >= span:
                    old_t, old_snap = t, snap
                    break
                if t < new_t:
                    old_t, old_snap = t, snap
        if new_t <= old_t:
            raise ValueError("scrapes are not time-ordered")
        return new_t, new_snap, old_t, old_snap

    def rates(self, *, span: Optional[float] = None) -> dict:
        """Per-second rates between the newest scrape and the oldest one
        within ``span`` seconds of it (oldest retained when None)."""
        new_t, new_snap, old_t, old_snap = self._endpoints(span)
        return snapshot_rates(new_snap, old_snap, new_t - old_t)

    def render(self, *, span: Optional[float] = None, skip_zero: bool = True) -> str:
        """:func:`render_rates` over :meth:`rates`, with an interval header."""
        elapsed = self.span_seconds(span=span)
        body = render_rates(self.rates(span=span), skip_zero=skip_zero)
        return f"# rates over {elapsed:.1f}s\n{body}" if body else (
            f"# rates over {elapsed:.1f}s\n# (all zero)"
        )

"""Lightweight tracing: ``span()`` context managers + JSONL event emission.

Every span records its duration into the ``repro_span_seconds`` histogram
(near-zero cost when the registry is disabled).  When tracing is active —
``REPRO_TRACE=1`` in the environment, or :func:`configure` — each span also
emits one JSON line carrying ``trace``/``span``/``parent`` ids, so a single
batch can be followed from the serve facade through the parent engine into
a shard worker and back.

Trace context lives in a :class:`contextvars.ContextVar`; it crosses the
engine-thread hop via ``contextvars.copy_context()`` (see
``AsyncHullService._run``) and crosses the shard pipe explicitly: the parent
wraps requests as ``("~trace", (trace_id, span_id), msg)`` and the worker
re-installs the pair with :func:`resume` before dispatching.

Events are appended to ``REPRO_TRACE_FILE`` (one open/write/close per event
so forked workers can share the file safely) or written to stderr when no
file is configured.
"""

from __future__ import annotations

import contextvars
import json
import os
import sys
import time
from contextlib import contextmanager
from time import perf_counter
from typing import Iterator, Optional, Tuple

from .metrics import SPAN_SECONDS

__all__ = ["span", "tracing", "configure", "current_context", "resume"]

_ctx: contextvars.ContextVar[Optional[Tuple[str, str]]] = contextvars.ContextVar(
    "repro_trace_ctx", default=None
)

# configure() overrides; None means "fall back to the environment".
_override_enabled: Optional[bool] = None
_override_path: Optional[str] = None
_configured_path = False


def configure(enabled: Optional[bool] = None, path: Optional[str] = None) -> None:
    """Override tracing state in-process (pass ``enabled=None`` to re-read env)."""
    global _override_enabled, _override_path, _configured_path
    _override_enabled = enabled
    _override_path = path
    _configured_path = path is not None


def tracing() -> bool:
    if _override_enabled is not None:
        return _override_enabled
    val = os.environ.get("REPRO_TRACE", "")
    return bool(val) and val != "0"


def _trace_path() -> Optional[str]:
    if _configured_path:
        return _override_path
    path = os.environ.get("REPRO_TRACE_FILE")
    if path:
        return path
    val = os.environ.get("REPRO_TRACE", "")
    if val not in ("", "0", "1"):
        return val  # REPRO_TRACE=/path/to/file shorthand
    return None


def _new_id() -> str:
    return os.urandom(8).hex()


def current_context() -> Optional[Tuple[str, str]]:
    """The active ``(trace_id, span_id)`` pair, or None outside any span."""
    return _ctx.get()


@contextmanager
def resume(ctx: Optional[Tuple[str, str]]) -> Iterator[None]:
    """Install a propagated ``(trace_id, span_id)`` pair as the current parent."""
    if ctx is None:
        yield
        return
    token = _ctx.set((str(ctx[0]), str(ctx[1])))
    try:
        yield
    finally:
        _ctx.reset(token)


def _emit(doc: dict) -> None:
    line = json.dumps(doc, separators=(",", ":"))
    path = _trace_path()
    if path is None:
        sys.stderr.write(line + "\n")
        return
    try:
        with open(path, "a", encoding="utf-8") as f:
            f.write(line + "\n")
    except OSError:
        pass  # tracing must never take down the pipeline


class Span:
    """Handle yielded by :func:`span`; ``duration`` is set on exit."""

    __slots__ = ("name", "trace_id", "span_id", "duration")

    def __init__(self, name: str) -> None:
        self.name = name
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None
        self.duration = 0.0


@contextmanager
def span(name: str, **attrs: object) -> Iterator[Span]:
    """Time a block; always feeds ``repro_span_seconds``, emits JSONL if tracing."""
    sp = Span(name)
    active = tracing()
    token = None
    parent = None
    if active:
        parent = _ctx.get()
        sp.trace_id = parent[0] if parent else _new_id()
        sp.span_id = _new_id()
        token = _ctx.set((sp.trace_id, sp.span_id))
    t0 = perf_counter()
    try:
        yield sp
    finally:
        sp.duration = perf_counter() - t0
        SPAN_SECONDS.labels(name).observe(sp.duration)
        if active:
            if token is not None:
                _ctx.reset(token)
            doc = {
                "event": "span",
                "name": name,
                "trace": sp.trace_id,
                "span": sp.span_id,
                "parent": parent[1] if parent else None,
                "dur_s": round(sp.duration, 9),
                "pid": os.getpid(),
                "ts": time.time(),
            }
            if attrs:
                doc["attrs"] = attrs
            _emit(doc)

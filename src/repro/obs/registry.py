"""Dependency-free metrics registry with Prometheus text exposition.

Three metric kinds — :class:`Counter`, :class:`Gauge`, :class:`Histogram` —
register themselves on a :class:`Registry` (the module-level default unless
told otherwise).  Metrics may declare label names; ``metric.labels(...)``
returns a cached child holding the per-label-set state.  All mutation is
thread-safe (one lock per family) and gated on a module-level enabled flag
so the whole layer collapses to a single attribute check when switched off
(``REPRO_OBS=0`` in the environment, or :func:`set_enabled`).

Two serialisation surfaces:

- :meth:`Registry.collect` — a JSON-safe snapshot dict, suitable for folding
  into ``stats()`` documents and for shipping across the shard pipe.
  Snapshots from several processes can be summed with
  :func:`merge_snapshots` (counters, histogram buckets, and gauges all add —
  per-shard gauges are disjoint by label so addition is the right fold).
- :func:`render_snapshot` — Prometheus text exposition format 0.0.4 from a
  snapshot, so a parent process can expose worker metrics it never observed
  locally.  ``Registry.render()`` is the local shortcut.
"""

from __future__ import annotations

import math
import os
import re
import threading
import warnings
from bisect import bisect_left
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "LATENCY_BUCKETS",
    "OVERFLOW_LABEL",
    "SIZE_BUCKETS",
    "registry",
    "reset",
    "set_enabled",
    "obs_enabled",
    "merge_snapshots",
    "render_snapshot",
]

# Log-scale (x4) latency buckets: 1 us .. ~4.2 s, 12 finite bounds + +Inf.
LATENCY_BUCKETS: Tuple[float, ...] = tuple(1e-6 * 4.0 ** i for i in range(12))

# Log-scale (x4) size buckets for batch/record counts: 1 .. ~262k.
SIZE_BUCKETS: Tuple[float, ...] = tuple(float(4 ** i) for i in range(10))

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_enabled = os.environ.get("REPRO_OBS", "1") != "0"


def set_enabled(flag: bool) -> None:
    """Globally enable/disable metric mutation (overrides ``REPRO_OBS``)."""
    global _enabled
    _enabled = bool(flag)


def obs_enabled() -> bool:
    return _enabled


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt_value(v: float) -> str:
    f = float(v)
    if math.isinf(f):
        return "+Inf" if f > 0 else "-Inf"
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _fmt_le(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else _fmt_value(bound)


#: Label-set children a family folds into when its ``max_label_children``
#: cap is hit: the overflow bucket keeps totals correct while bounding
#: the registry against client-controlled label values (tenant ids).
OVERFLOW_LABEL = "__overflow__"


class _MetricBase:
    """Shared family machinery: name/help/labels, child cache, lock."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        registry: Optional["Registry"] = None,
        max_label_children: Optional[int] = None,
        _use_default: bool = True,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        labelnames = tuple(labelnames)
        for ln in labelnames:
            if not _LABEL_RE.match(ln):
                raise ValueError(f"invalid label name: {ln!r}")
        if max_label_children is not None:
            if not labelnames:
                raise ValueError("max_label_children requires labelnames")
            if max_label_children < 1:
                raise ValueError("max_label_children must be >= 1")
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self.max_label_children = max_label_children
        self._overflowed = False
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        if not labelnames:
            self._children[()] = self._new_child()
        if registry is None and _use_default:
            registry = _DEFAULT
        if registry is not None:
            registry.register(self)

    # -- children ---------------------------------------------------------
    def _new_child(self):
        raise NotImplementedError

    def labels(self, *values: object, **kw: object):
        if kw:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            try:
                values = tuple(kw[ln] for ln in self.labelnames)
            except KeyError as e:
                raise ValueError(f"missing label {e} for {self.name}") from None
            if len(kw) != len(self.labelnames):
                raise ValueError(f"unexpected labels for {self.name}: {sorted(kw)}")
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {key!r}"
            )
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    # Children are minted on first resolve; a family fed
                    # client-controlled label values (tenant ids) must not
                    # grow the registry unbounded.  At the cap, fold the
                    # newcomer into one shared overflow child — totals
                    # stay correct, cardinality stays bounded.
                    cap = self.max_label_children
                    if (
                        cap is not None
                        and len(self._children) >= cap
                        and key != (OVERFLOW_LABEL,) * len(self.labelnames)
                    ):
                        if not self._overflowed:
                            self._overflowed = True
                            warnings.warn(
                                f"metric {self.name} hit max_label_children"
                                f"={cap}; folding new label sets into "
                                f"{OVERFLOW_LABEL!r}",
                                RuntimeWarning,
                                stacklevel=2,
                            )
                        key = (OVERFLOW_LABEL,) * len(self.labelnames)
                        child = self._children.get(key)
                        if child is None:
                            child = self._children[key] = self._new_child()
                        return child
                    child = self._children[key] = self._new_child()
        return child

    def _solo(self):
        if self.labelnames:
            raise ValueError(f"{self.name} has labels {self.labelnames}; use .labels()")
        return self._children[()]

    def _reset(self) -> None:
        # Zero children IN PLACE — never drop them: hot-path call sites
        # hold pre-resolved child references (obs.metrics module
        # constants), and replacing the objects would orphan those
        # references so later increments vanish from snapshots.
        with self._lock:
            for child in self._children.values():
                child._zero()  # type: ignore[attr-defined]

    # -- snapshots --------------------------------------------------------
    def _label_str(self, key: Tuple[str, ...]) -> str:
        return ",".join(
            f'{ln}="{_escape_label(lv)}"' for ln, lv in zip(self.labelnames, key)
        )

    def _snapshot(self) -> dict:
        with self._lock:
            items = list(self._children.items())
        values = {
            self._label_str(key): child.snapshot()  # type: ignore[attr-defined]
            for key, child in items
        }
        return {"type": self.kind, "help": self.help, "values": values}


class _CounterChild:
    __slots__ = ("_value", "_lock")

    def __init__(self, lock: threading.Lock) -> None:
        self._value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        if not _enabled:
            return
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    def _zero(self) -> None:
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


class Counter(_MetricBase):
    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    @property
    def value(self) -> float:
        return self._solo().value


class _GaugeChild:
    __slots__ = ("_value", "_lock")

    def __init__(self, lock: threading.Lock) -> None:
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        if not _enabled:
            return
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not _enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def _zero(self) -> None:
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


class Gauge(_MetricBase):
    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild(self._lock)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    @property
    def value(self) -> float:
        return self._solo().value


class _HistogramChild:
    __slots__ = ("_bounds", "_counts", "_sum", "_lock")

    def __init__(self, bounds: Tuple[float, ...], lock: threading.Lock) -> None:
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._lock = lock

    def observe(self, value: float) -> None:
        if not _enabled:
            return
        idx = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value

    def time(self):
        return _HistogramTimer(self)

    def _zero(self) -> None:
        self._counts = [0] * (len(self._bounds) + 1)
        self._sum = 0.0

    @property
    def count(self) -> int:
        return sum(self._counts)

    @property
    def sum(self) -> float:
        return self._sum

    def snapshot(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            total = self._sum
        buckets: List[List[object]] = []
        cum = 0
        for bound, c in zip(self._bounds, counts[:-1]):
            cum += c
            buckets.append([_fmt_le(bound), cum])
        cum += counts[-1]
        buckets.append(["+Inf", cum])
        return {"sum": total, "count": cum, "buckets": buckets}


class _HistogramTimer:
    __slots__ = ("_child", "_t0")

    def __init__(self, child: _HistogramChild) -> None:
        self._child = child

    def __enter__(self) -> "_HistogramTimer":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._child.observe(perf_counter() - self._t0)


class Histogram(_MetricBase):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
        registry: Optional["Registry"] = None,
        max_label_children: Optional[int] = None,
        _use_default: bool = True,
    ) -> None:
        bounds = tuple(float(b) for b in buckets if not math.isinf(b))
        if not bounds or list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram buckets must be sorted and unique: {buckets!r}")
        self._bounds = bounds
        super().__init__(
            name, help, labelnames, registry, max_label_children, _use_default
        )

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self._bounds, self._lock)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def time(self):
        return self._solo().time()


class Registry:
    """An ordered collection of metric families."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _MetricBase] = {}
        self._lock = threading.Lock()

    def register(self, metric: _MetricBase) -> None:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None and existing is not metric:
                raise ValueError(f"duplicate metric name: {metric.name}")
            self._metrics[metric.name] = metric

    def get(self, name: str) -> Optional[_MetricBase]:
        return self._metrics.get(name)

    def reset(self) -> None:
        """Zero every family (drop labeled children), e.g. in forked workers."""
        for metric in list(self._metrics.values()):
            metric._reset()

    def collect(self) -> dict:
        """JSON-safe snapshot of every family."""
        return {name: m._snapshot() for name, m in sorted(self._metrics.items())}

    def render(self) -> str:
        return render_snapshot(self.collect())

    # -- test/CLI convenience --------------------------------------------
    def value(self, name: str, **labels: object) -> float:
        """Current value of a counter/gauge child (0.0 if absent)."""
        metric = self._metrics[name]
        key = tuple(str(labels[ln]) for ln in metric.labelnames)
        child = metric._children.get(key)
        if child is None:
            return 0.0
        snap = child.snapshot()  # type: ignore[attr-defined]
        if isinstance(snap, dict):  # histogram: return observation count
            return float(snap["count"])
        return float(snap)


_DEFAULT = Registry()


def registry() -> Registry:
    """The process-default registry."""
    return _DEFAULT


def reset() -> None:
    """Zero the default registry (fresh forked worker, test isolation)."""
    _DEFAULT.reset()


def merge_snapshots(base: dict, other: dict) -> dict:
    """Sum two ``Registry.collect()`` snapshots (cross-process aggregation)."""
    out = {name: _copy_family(fam) for name, fam in base.items()}
    for name, fam in other.items():
        mine = out.get(name)
        if mine is None:
            out[name] = _copy_family(fam)
            continue
        for label_str, val in fam.get("values", {}).items():
            cur = mine["values"].get(label_str)
            if cur is None:
                mine["values"][label_str] = _copy_value(val)
            elif isinstance(val, dict):
                cur["sum"] += val["sum"]
                cur["count"] += val["count"]
                by_le = {le: c for le, c in cur["buckets"]}
                for le, c in val["buckets"]:
                    by_le[le] = by_le.get(le, 0) + c
                cur["buckets"] = [[le, by_le[le]] for le, _ in cur["buckets"]]
            else:
                mine["values"][label_str] = cur + val
    return dict(sorted(out.items()))


def _copy_value(val):
    if isinstance(val, dict):
        return {
            "sum": val["sum"],
            "count": val["count"],
            "buckets": [list(b) for b in val["buckets"]],
        }
    return val


def _copy_family(fam: dict) -> dict:
    return {
        "type": fam.get("type", "untyped"),
        "help": fam.get("help", ""),
        "values": {k: _copy_value(v) for k, v in fam.get("values", {}).items()},
    }


def render_snapshot(snapshot: dict) -> str:
    """Prometheus text exposition format 0.0.4 from a snapshot dict."""
    lines: List[str] = []
    for name in sorted(snapshot):
        fam = snapshot[name]
        kind = fam.get("type", "untyped")
        lines.append(f"# HELP {name} {_escape_help(fam.get('help', ''))}")
        lines.append(f"# TYPE {name} {kind}")
        for label_str, val in fam.get("values", {}).items():
            if isinstance(val, dict):  # histogram
                for le, cum in val["buckets"]:
                    le_pair = f'le="{le}"'
                    labels = f"{label_str},{le_pair}" if label_str else le_pair
                    lines.append(f"{name}_bucket{{{labels}}} {_fmt_value(cum)}")
                suffix = f"{{{label_str}}}" if label_str else ""
                lines.append(f"{name}_sum{suffix} {_fmt_value(val['sum'])}")
                lines.append(f"{name}_count{suffix} {_fmt_value(val['count'])}")
            else:
                suffix = f"{{{label_str}}}" if label_str else ""
                lines.append(f"{name}{suffix} {_fmt_value(val)}")
    return "\n".join(lines) + "\n"

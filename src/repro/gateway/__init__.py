"""repro.gateway — multi-tenant HTTP/SSE front door.

The gateway is the tenancy layer over :mod:`repro.serve`: bearer-token
auth, per-tenant key namespaces, token-bucket ingest rate limits,
live-key quotas, and Server-Sent-Events push — all on top of an
unchanged engine stack, so per-key hulls stay bit-identical to a
single-tenant engine fed the same records.

Quickstart::

    import asyncio
    from repro.engine import StreamEngine
    from repro.serve import AsyncHullService
    from repro.gateway import (
        GatewayClient, HullGateway, Tenant, TenantRegistry,
    )

    async def main():
        registry = TenantRegistry(
            [Tenant(id="acme", token="acme-token", rate_records=1000)],
            admin_token="s3cret",
        )
        async with AsyncHullService(StreamEngine(r=64)) as service:
            async with HullGateway(service, registry) as gw:
                client = GatewayClient("127.0.0.1", gw.port, "acme-token")
                await client.ingest(
                    [["sensor", 0, 0], ["sensor", 1, 1]], sync=True
                )
                print(await client.hull("sensor"))
                await client.aclose()

    asyncio.run(main())

Or from the shell: ``python -m repro gateway --tenants tenants.json``.
"""

from .client import GatewayClient, GatewayHTTPError, GatewaySSEStream
from .ratelimit import TenantLimiter, TokenBucket
from .server import GatewayError, HullGateway, tenant_dead_letter_hook
from .tenants import (
    NAMESPACE_SEP,
    Tenant,
    TenantRegistry,
    scope_key,
    split_key,
)

__all__ = [
    "NAMESPACE_SEP",
    "GatewayClient",
    "GatewayError",
    "GatewayHTTPError",
    "GatewaySSEStream",
    "HullGateway",
    "Tenant",
    "TenantLimiter",
    "TenantRegistry",
    "TokenBucket",
    "scope_key",
    "split_key",
    "tenant_dead_letter_hook",
]

"""The multi-tenant HTTP/SSE front door over :class:`AsyncHullService`.

:class:`HullGateway` binds a REST surface onto an already-started
service facade and adds the tenancy layer the TCP server deliberately
does not have:

* **auth** — every ``/v1`` verb demands ``Authorization: Bearer
  <token>``; tokens resolve through the constant-time
  :class:`~repro.gateway.tenants.TenantRegistry`.  Missing/unknown
  tokens get 401, a disabled tenant or an admin-only verb gets 403.
* **namespaces** — client keys are prefixed with the tenant id before
  they reach the service, and stripped again on the way out, so the
  ring/window/WAL stack stays tenancy-free and per-key hulls are
  bit-identical to a single-tenant engine fed the same records.
  Cross-tenant reads are impossible by construction: no verb ever
  interprets a client-supplied key outside the caller's own prefix.
* **rate limits** — per-tenant records/sec + bytes/sec token buckets
  admit or refuse each ingest atomically; a refusal is 429 with a
  ``Retry-After`` header and charges neither budget.
* **quotas** — a per-tenant live-key ledger is checked *before* the
  batch is enqueued, so a quota rejection (403) is atomic: nothing
  reaches the engine or its WAL.
* **SSE push** — ``GET /v1/subscribe`` streams the service's
  standing-query notifications as ``text/event-stream`` frames,
  filtered server-side to the tenant's namespace.

Verbs (all JSON unless noted)::

    POST   /v1/ingest             {"records": [[key,x,y(,ts)],...], "sync": bool}
    GET    /v1/hull/<key>         one key's hull vertices
    GET    /v1/keys               the tenant's live keys
    GET    /v1/stats              tenant usage (admin token: global view)
    POST   /v1/advance_time      {"now": t}           (admin only)
    GET    /v1/subscribe[?keys=a,b]                   (SSE stream)
    GET    /v1/admin/tenants                          (admin only)
    POST   /v1/admin/tenants      tenant document     (admin only)
    DELETE /v1/admin/tenants/<id>                     (admin only)
    GET    /metrics               Prometheus text     (unauthenticated)
    GET    /healthz               liveness            (unauthenticated)

``advance_time`` is admin-only on purpose: the event clock is global
to the engine, so one tenant advancing it would expire every other
tenant's time windows.

The server is plain stdlib asyncio — an HTTP/1.1 keep-alive loop per
connection, one request in flight at a time (no pipelining), chunked
uploads refused with 501.  That is all curl, browsers, and the bundled
:class:`~repro.gateway.client.GatewayClient` need.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
import urllib.parse
from typing import Dict, Iterable, Optional, Set, Tuple

from ..obs import metrics as OBS
from .ratelimit import TenantLimiter
from .tenants import Tenant, TenantRegistry

__all__ = ["HullGateway", "GatewayError", "tenant_dead_letter_hook"]

MAX_HEADERS = 100
MAX_BODY = 1 << 26  # 64 MiB request-body cap

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Content Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
}

#: Sentinel a handler returns after taking over the connection (SSE).
_STREAMED = object()


class GatewayError(Exception):
    """An HTTP error response raised from inside a verb handler."""

    def __init__(
        self,
        status: int,
        message: str,
        *,
        headers: Iterable[Tuple[str, str]] = (),
    ):
        super().__init__(message)
        self.status = int(status)
        self.headers = tuple(headers)


def tenant_dead_letter_hook(chain=None):
    """An engine ``on_late`` hook attributing dead letters to tenants.

    Splits the tenant id back out of each late batch's scoped key and
    bumps the per-tenant dead-letter counter; keys without a namespace
    (an embedding application sharing the engine) are attributed to
    ``"_unscoped"``.  ``chain`` is called afterwards with the original
    arguments, so this composes with
    :func:`repro.durable.attach_dead_letters` the same way every other
    ``_on_late`` wrapper in the stack does.
    """

    def hook(key, points, ts, watermark):
        scoped = str(key)
        tenant_id, sep, _ = scoped.partition(":")
        if not sep:
            tenant_id = "_unscoped"
        OBS.GATEWAY_DEAD_LETTER_RECORDS.labels(tenant_id).inc(len(points))
        if chain is not None:
            chain(key, points, ts, watermark)

    return hook


class _TenantState:
    """Per-tenant runtime state the registry's static config drives."""

    __slots__ = (
        "limiter",
        "keys",
        "ingested_records",
        "ingested_bytes",
        "rejected",
        "last_error",
    )

    def __init__(self, tenant: Tenant, *, clock):
        self.limiter = TenantLimiter(tenant, clock=clock)
        self.keys: Set[str] = set()  # scoped live-key ledger
        self.ingested_records = 0
        self.ingested_bytes = 0
        self.rejected: Dict[str, int] = {}
        self.last_error: Optional[str] = None

    def count_reject(self, tenant: Tenant, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1
        OBS.GATEWAY_REJECTED.labels(tenant.id, reason).inc()


class HullGateway:
    """Multi-tenant HTTP/SSE gateway (see module docstring).

    Args:
        service: a *started* :class:`~repro.serve.AsyncHullService`
            (either engine tier beneath it).  The gateway never owns
            it; close order is gateway first, then service.
        registry: the :class:`TenantRegistry` to authenticate against;
            mutable at runtime through the admin verbs.
        host / port: main listener bind (port 0 = ephemeral; the bound
            port is :attr:`port` after :meth:`start`).
        metrics_port: optional extra plain-HTTP listener serving only
            ``GET /metrics`` — the Prometheus scrape target when the
            main port sits behind client auth at the network layer.
        sse_heartbeat: seconds between ``: keep-alive`` comment frames
            on idle SSE streams (keeps proxies from reaping them).
        clock: monotonic clock injected into every tenant's rate
            limiter (tests advance it explicitly).
    """

    def __init__(
        self,
        service,
        registry: TenantRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics_port: Optional[int] = None,
        sse_heartbeat: float = 15.0,
        clock=time.monotonic,
    ):
        if sse_heartbeat <= 0.0:
            raise ValueError("sse_heartbeat must be positive")
        self.service = service
        self.registry = registry
        self.host = host
        self.port = port
        self.metrics_port = metrics_port
        self.sse_heartbeat = float(sse_heartbeat)
        self._clock = clock
        self._states: Dict[str, _TenantState] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        self._conns: Set[asyncio.Task] = set()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "HullGateway":
        if self._server is not None:
            return self
        # Seed each tenant's live-key ledger from the engine: a gateway
        # over a recovered (WAL-replayed) engine must count the keys
        # that already exist against the quota.
        live = await self.service.keys()
        for tenant in self.registry.tenants():
            self._state(tenant).keys = {
                k for k in live if tenant.owns(k)
            }
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_conn, self.host, self.metrics_port
            )
            self.metrics_port = (
                self._metrics_server.sockets[0].getsockname()[1]
            )
        return self

    async def __aenter__(self) -> "HullGateway":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("gateway is not started")
        await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop listening and tear down open connections (idempotent).

        The underlying service is left running — it has its own
        lifecycle and may be shared."""
        for server in (self._server, self._metrics_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._server = self._metrics_server = None
        for task in list(self._conns):
            task.cancel()
        if self._conns:
            await asyncio.gather(*self._conns, return_exceptions=True)
        self._conns.clear()

    # -- tenant runtime state ----------------------------------------------

    def _state(self, tenant: Tenant) -> _TenantState:
        state = self._states.get(tenant.id)
        if state is None:
            state = _TenantState(tenant, clock=self._clock)
            self._states[tenant.id] = state
        return state

    async def _refresh_ledgers(self) -> None:
        """Re-derive every tenant's key ledger and late-drop gauge from
        the engine (the ledger is advisory between refreshes: a
        fire-and-forget batch the engine later rejects, or a window
        expiry, can leave it stale until the next stats/keys/metrics
        call)."""
        live = await self.service.keys()
        late = await self.service.late_drops()
        for tenant in self.registry.tenants():
            state = self._state(tenant)
            state.keys = {k for k in live if tenant.owns(k)}
            OBS.GATEWAY_TENANT_KEYS.labels(tenant.id).set(len(state.keys))
            OBS.GATEWAY_LATE_DROPPED.labels(tenant.id).set(
                sum(n for k, n in late.items() if tenant.owns(k))
            )

    # -- connection loop ---------------------------------------------------

    async def _handle_conn(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conns.add(task)
        OBS.GATEWAY_CONNECTIONS.inc()
        try:
            while True:
                request = await self._read_request(reader, writer)
                if request is None:
                    break
                method, path, query, headers, body, keep_alive = request
                streamed = await self._dispatch(
                    method, path, query, headers, body, writer, keep_alive
                )
                if streamed or not keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            TimeoutError,
        ):
            pass
        except asyncio.CancelledError:
            pass  # gateway shutdown
        finally:
            OBS.GATEWAY_CONNECTIONS.dec()
            self._conns.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(self, reader, writer):
        """Parse one request; returns None when the connection should
        close (EOF or a protocol error already answered)."""
        try:
            line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            await self._protocol_error(writer, 431, "request line too long")
            return None
        if not line:
            return None  # clean EOF between requests
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            await self._protocol_error(writer, 400, "malformed request line")
            return None
        method, target, version = parts
        headers: Dict[str, str] = {}
        while True:
            try:
                raw = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError):
                await self._protocol_error(writer, 431, "header too long")
                return None
            if raw in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= MAX_HEADERS:
                await self._protocol_error(writer, 431, "too many headers")
                return None
            name, sep, value = raw.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        if "transfer-encoding" in headers:
            await self._protocol_error(
                writer, 501, "chunked uploads are not supported"
            )
            return None
        body = b""
        length_header = headers.get("content-length")
        if length_header is not None:
            try:
                length = int(length_header)
                if length < 0:
                    raise ValueError
            except ValueError:
                await self._protocol_error(
                    writer, 400, "bad Content-Length"
                )
                return None
            if length > MAX_BODY:
                await self._protocol_error(
                    writer, 413, f"body exceeds {MAX_BODY} bytes"
                )
                return None
            if headers.get("expect", "").lower() == "100-continue":
                writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
                await writer.drain()
            if length:
                body = await reader.readexactly(length)
        path, _, raw_query = target.partition("?")
        query = urllib.parse.parse_qs(raw_query)
        keep_alive = (
            version == "HTTP/1.1"
            and headers.get("connection", "").lower() != "close"
        )
        return method.upper(), path, query, headers, body, keep_alive

    async def _protocol_error(self, writer, status, message) -> None:
        OBS.GATEWAY_REQUESTS.labels("other", str(status)).inc()
        try:
            self._write_json(
                writer, status, {"error": message}, keep_alive=False
            )
            await writer.drain()
        except ConnectionError:
            pass

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(
        self, method, path, query, headers, body, writer, keep_alive
    ):
        """Route + auth + handle one request, write the response, and
        record the request metrics.  Returns True when the handler took
        over the connection (SSE)."""
        segs = [urllib.parse.unquote(s) for s in path.split("/")[1:]]
        verb = self._verb_label(segs)
        t0 = time.perf_counter()
        status = 500
        try:
            result = await self._route(
                method, segs, query, headers, body, writer
            )
            if result is _STREAMED:
                status = 200
                return True
            status, payload, extra = result
            self._write_json(
                writer, status, payload, keep_alive=keep_alive, extra=extra
            )
        except GatewayError as exc:
            status = exc.status
            self._write_json(
                writer,
                status,
                {"error": str(exc)},
                keep_alive=keep_alive,
                extra=exc.headers,
            )
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception as exc:  # noqa: BLE001 - server boundary
            status = 500
            self._write_json(
                writer,
                status,
                {"error": f"{type(exc).__name__}: {exc}"},
                keep_alive=keep_alive,
            )
        finally:
            OBS.GATEWAY_REQUESTS.labels(verb, str(status)).inc()
            OBS.GATEWAY_REQUEST_SECONDS.labels(verb).observe(
                time.perf_counter() - t0
            )
        await writer.drain()
        return False

    @staticmethod
    def _verb_label(segs) -> str:
        """A fixed-vocabulary metrics label — never the raw path, which
        would be unbounded label cardinality."""
        if segs == ["healthz"]:
            return "healthz"
        if segs == ["metrics"]:
            return "metrics"
        if len(segs) >= 2 and segs[0] == "v1":
            if segs[1] == "admin":
                return "admin_tenants"
            if segs[1] in (
                "ingest", "hull", "keys", "stats",
                "advance_time", "subscribe",
            ):
                return segs[1]
        return "other"

    async def _route(self, method, segs, query, headers, body, writer):
        """Resolve one request to a handler result tuple
        ``(status, payload, extra_headers)`` or the SSE sentinel."""
        if segs == ["healthz"]:
            self._expect(method, "GET")
            return 200, {"ok": True}, ()
        if segs == ["metrics"]:
            self._expect(method, "GET")
            await self._refresh_ledgers()
            text = await self.service.metrics_text()
            self._write_raw(
                writer,
                200,
                text.encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
            return _STREAMED  # raw body already written; close after
        if not segs or segs[0] != "v1" or len(segs) < 2:
            raise GatewayError(404, "unknown path")

        if segs[1] == "admin":
            self._require_admin(headers)
            if segs[2:] == ["tenants"]:
                if method == "GET":
                    return self._h_admin_list()
                if method == "POST":
                    return self._h_admin_upsert(body)
                self._expect(method, "GET")  # raises 405 (Allow GET/POST)
            if len(segs) == 4 and segs[2] == "tenants":
                self._expect(method, "DELETE")
                return self._h_admin_remove(segs[3])
            raise GatewayError(404, "unknown admin path")

        if segs[1] == "advance_time" and len(segs) == 2:
            self._expect(method, "POST")
            self._require_admin(headers)
            return await self._h_advance_time(body)

        if segs[1] == "stats" and len(segs) == 2:
            self._expect(method, "GET")
            if self.registry.is_admin(self._token(headers)):
                # The admin token owns no namespace, so its stats view
                # is the documented global one.
                return await self._h_admin_stats()
            tenant, state = self._require_tenant(headers)
            return await self._h_stats(tenant, state)

        tenant, state = self._require_tenant(headers)
        if segs[1] == "ingest" and len(segs) == 2:
            self._expect(method, "POST")
            return await self._h_ingest(tenant, state, body)
        if segs[1] == "hull" and len(segs) == 3:
            self._expect(method, "GET")
            return await self._h_hull(tenant, state, segs[2])
        if segs[1] == "keys" and len(segs) == 2:
            self._expect(method, "GET")
            return await self._h_keys(tenant, state)
        if segs[1] == "subscribe" and len(segs) == 2:
            self._expect(method, "GET")
            await self._h_subscribe(tenant, query, writer)
            return _STREAMED
        raise GatewayError(404, "unknown path")

    @staticmethod
    def _expect(method: str, allowed: str) -> None:
        if method != allowed:
            raise GatewayError(
                405,
                f"method {method} not allowed",
                headers=(("Allow", allowed),),
            )

    # -- auth --------------------------------------------------------------

    def _token(self, headers) -> str:
        value = headers.get("authorization", "")
        scheme, _, token = value.partition(" ")
        if scheme.lower() != "bearer" or not token.strip():
            OBS.GATEWAY_AUTH_FAILURES.inc()
            raise GatewayError(
                401,
                "missing bearer token",
                headers=(("WWW-Authenticate", "Bearer"),),
            )
        return token.strip()

    def _require_tenant(self, headers) -> Tuple[Tenant, _TenantState]:
        token = self._token(headers)
        tenant = self.registry.by_token(token)
        if tenant is None:
            if self.registry.is_admin(token):
                # The admin token is an operator identity: it owns no
                # key namespace, so data verbs have nothing to scope.
                raise GatewayError(
                    403, "admin token has no tenant namespace"
                )
            OBS.GATEWAY_AUTH_FAILURES.inc()
            raise GatewayError(
                401,
                "unknown token",
                headers=(("WWW-Authenticate", "Bearer"),),
            )
        if not tenant.enabled:
            raise GatewayError(403, f"tenant {tenant.id!r} is disabled")
        return tenant, self._state(tenant)

    def _require_admin(self, headers) -> None:
        token = self._token(headers)
        if not self.registry.is_admin(token):
            raise GatewayError(403, "admin token required")

    # -- verb handlers -----------------------------------------------------

    @staticmethod
    def _json_body(body: bytes) -> dict:
        try:
            doc = json.loads(body)
        except ValueError as exc:
            raise GatewayError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(doc, dict):
            raise GatewayError(400, "request body must be a JSON object")
        return doc

    async def _h_ingest(self, tenant, state, body):
        doc = self._json_body(body)
        records = doc.get("records")
        if not isinstance(records, list):
            raise GatewayError(400, "'records' must be a list")
        sync = bool(doc.get("sync", False))
        keys, pts, ts_list = [], [], []
        for rec in records:
            if not isinstance(rec, (list, tuple)) or len(rec) not in (3, 4):
                state.count_reject(tenant, "bad_request")
                raise GatewayError(
                    400, "each record must be [key, x, y] or [key, x, y, ts]"
                )
            key = rec[0]
            if not isinstance(key, str):
                # JSON keys that are numbers are legal; they become the
                # string the hull/keys verbs address them by.
                if isinstance(key, bool) or not isinstance(key, (int, float)):
                    state.count_reject(tenant, "bad_request")
                    raise GatewayError(
                        400, "record keys must be strings or numbers"
                    )
                key = str(key)
            keys.append(tenant.scope(key))
            pts.append(rec[1:3])
            if len(rec) == 4:
                ts_list.append(rec[3])
        if ts_list and len(ts_list) != len(records):
            state.count_reject(tenant, "bad_request")
            raise GatewayError(
                400, "either every record carries a ts or none does"
            )

        wait = state.limiter.admit(len(records), len(body))
        if wait > 0.0:
            state.count_reject(tenant, "rate_limit")
            raise GatewayError(
                429,
                f"tenant {tenant.id!r} over ingest rate",
                headers=(
                    ("Retry-After", str(max(1, math.ceil(wait)))),
                ),
            )

        novel = {k for k in keys if k not in state.keys}
        if (
            tenant.max_keys is not None
            and len(state.keys) + len(novel) > tenant.max_keys
        ):
            state.count_reject(tenant, "quota")
            raise GatewayError(
                403,
                f"tenant {tenant.id!r} live-key quota "
                f"({tenant.max_keys}) exceeded",
            )
        # Reserve the novel keys *before* the enqueue awaits: a
        # concurrent ingest on another connection must see them counted
        # against the quota, or two in-flight batches could each pass
        # the check above and collectively exceed max_keys.  The
        # reservation is released if nothing reaches the engine.
        state.keys.update(novel)

        loop = asyncio.get_running_loop()
        applied = loop.create_future()

        def on_result(exc):
            # Runs on the event loop once this batch went through the
            # engine: attribute drain-time rejections to this tenant.
            if exc is not None:
                state.keys.difference_update(novel)
                state.count_reject(tenant, "engine")
                state.last_error = f"{type(exc).__name__}: {exc}"
            if not applied.done():
                applied.set_result(exc)

        try:
            accepted = await self.service.ingest_arrays(
                keys,
                pts,
                ts=ts_list if ts_list else None,
                on_result=on_result,
            )
        except (ValueError, TypeError) as exc:
            # Producer-side validation (shape, finiteness, ts-vs-window)
            # failed before anything was enqueued.
            state.keys.difference_update(novel)
            state.count_reject(tenant, "bad_request")
            raise GatewayError(400, str(exc)) from exc
        if sync:
            exc = await applied
            if exc is not None:
                # Already attributed (and the reservation released) by
                # on_result; surface it to the producer that asked to
                # wait.
                raise GatewayError(400, f"engine rejected batch: {exc}")
        state.ingested_records += accepted
        state.ingested_bytes += len(body)
        OBS.GATEWAY_INGEST_RECORDS.labels(tenant.id).inc(accepted)
        OBS.GATEWAY_INGEST_BYTES.labels(tenant.id).inc(len(body))
        return 202, {"queued": accepted, "live_keys": len(state.keys)}, ()

    async def _h_hull(self, tenant, state, key):
        scoped = tenant.scope(key)
        hull = await self.service.hull(scoped)
        if not hull:
            live = await self.service.keys()
            if scoped not in live:
                raise GatewayError(404, f"unknown key {key!r}")
        return (
            200,
            {
                "key": key,
                "hull": [[float(x), float(y)] for x, y in hull],
                "count": len(hull),
            },
            (),
        )

    async def _h_keys(self, tenant, state):
        live = await self.service.keys()
        owned = {k for k in live if tenant.owns(k)}
        state.keys = owned  # ledger refresh
        OBS.GATEWAY_TENANT_KEYS.labels(tenant.id).set(len(owned))
        names = sorted(k[len(tenant.prefix):] for k in owned)
        return 200, {"keys": names, "count": len(names)}, ()

    async def _h_stats(self, tenant, state):
        await self._refresh_ledgers()
        late = await self.service.late_drops()
        doc = {
            "tenant": tenant.id,
            "keys": len(state.keys),
            "max_keys": tenant.max_keys,
            "rate_records": tenant.rate_records,
            "rate_bytes": tenant.rate_bytes,
            "ingested_records": state.ingested_records,
            "ingested_bytes": state.ingested_bytes,
            "rejected": dict(state.rejected),
            "late_dropped": sum(
                n for k, n in late.items() if tenant.owns(k)
            ),
            "last_error": state.last_error,
        }
        return 200, doc, ()

    async def _h_admin_stats(self):
        """``GET /v1/stats`` with the admin token: every tenant's usage
        plus engine-wide totals, including keys no tenant owns (an
        embedding application sharing the engine)."""
        await self._refresh_ledgers()
        live = await self.service.keys()
        late = await self.service.late_drops()
        tenants, owned = [], set()
        for tenant in self.registry.tenants():
            state = self._state(tenant)
            owned.update(state.keys)
            tenants.append(
                {
                    "tenant": tenant.id,
                    "keys": len(state.keys),
                    "max_keys": tenant.max_keys,
                    "ingested_records": state.ingested_records,
                    "ingested_bytes": state.ingested_bytes,
                    "rejected": dict(state.rejected),
                    "late_dropped": sum(
                        n for k, n in late.items() if tenant.owns(k)
                    ),
                    "last_error": state.last_error,
                }
            )
        doc = {
            "tenants": tenants,
            "totals": {
                "tenants": len(tenants),
                "keys": len(live),
                "unscoped_keys": len(set(live) - owned),
                "ingested_records": sum(
                    t["ingested_records"] for t in tenants
                ),
                "ingested_bytes": sum(
                    t["ingested_bytes"] for t in tenants
                ),
                "late_dropped": sum(late.values()),
            },
        }
        return 200, doc, ()

    async def _h_advance_time(self, body):
        doc = self._json_body(body)
        now = doc.get("now")
        if isinstance(now, bool) or not isinstance(now, (int, float)):
            raise GatewayError(400, "'now' must be a number")
        try:
            expired = await self.service.advance_time(float(now))
        except ValueError as exc:
            raise GatewayError(400, str(exc)) from exc
        return 200, {"expired": int(expired)}, ()

    async def _h_subscribe(self, tenant, query, writer):
        wanted: Optional[Set[str]] = None
        for part in query.get("keys", []):
            wanted = wanted or set()
            wanted.update(
                tenant.scope(k) for k in part.split(",") if k
            )
        if wanted is None:
            key_filter = tenant.owns
        else:
            key_filter = lambda k: tenant.owns(k) and k in wanted  # noqa: E731
        sub = await self.service.subscribe(key_filter=key_filter)
        OBS.GATEWAY_SSE_STREAMS.inc()
        prefix_len = len(tenant.prefix)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        event_id = 0
        try:
            await writer.drain()
            while True:
                try:
                    touched = await asyncio.wait_for(
                        sub.get(), self.sse_heartbeat
                    )
                except (TimeoutError, asyncio.TimeoutError):
                    # Both spellings: asyncio.TimeoutError only became
                    # the builtin on 3.11, and this stream must idle
                    # forever on 3.10 too.
                    writer.write(b": keep-alive\n\n")
                    await writer.drain()
                    continue
                event_id += 1
                data = json.dumps(
                    {
                        "keys": sorted(
                            str(k)[prefix_len:] for k in touched
                        )
                    },
                    separators=(",", ":"),
                )
                writer.write(
                    f"id: {event_id}\nevent: update\n"
                    f"data: {data}\n\n".encode("utf-8")
                )
                await writer.drain()
        finally:
            OBS.GATEWAY_SSE_STREAMS.dec()
            try:
                await sub.cancel()
            except Exception:  # noqa: BLE001 - service may be closing
                pass

    # -- admin handlers ----------------------------------------------------

    def _h_admin_list(self):
        docs = []
        for tenant in self.registry.tenants():
            state = self._state(tenant)
            doc = tenant.to_doc(redact=True)
            doc["live_keys"] = len(state.keys)
            doc["ingested_records"] = state.ingested_records
            doc["rejected"] = dict(state.rejected)
            docs.append(doc)
        return 200, {"tenants": docs, "count": len(docs)}, ()

    def _h_admin_upsert(self, body):
        doc = self._json_body(body)
        try:
            tenant = Tenant.from_doc(doc)
            created = tenant.id not in self.registry
            self.registry.add(tenant)
        except ValueError as exc:
            raise GatewayError(400, str(exc)) from exc
        state = self._states.get(tenant.id)
        if state is not None:
            # New limits take effect now; the key ledger and usage
            # counters survive the update.
            state.limiter = TenantLimiter(tenant, clock=self._clock)
        return (
            200,
            {"tenant": tenant.to_doc(redact=True), "created": created},
            (),
        )

    def _h_admin_remove(self, tenant_id):
        try:
            self.registry.remove(tenant_id)
        except KeyError as exc:
            raise GatewayError(404, str(exc)) from exc
        self._states.pop(tenant_id, None)
        # The tenant's summaries stay in the engine (data removal is a
        # retention decision, not an auth one); with the token gone
        # they are unreachable through the gateway.
        return 200, {"removed": tenant_id}, ()

    # -- response writing --------------------------------------------------

    def _write_json(
        self, writer, status, payload, *, keep_alive, extra=()
    ) -> None:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        body += b"\n"
        self._write_raw(
            writer,
            status,
            body,
            content_type="application/json",
            keep_alive=keep_alive,
            extra=extra,
        )

    @staticmethod
    def _write_raw(
        writer,
        status,
        body: bytes,
        *,
        content_type: str,
        keep_alive: bool = False,
        extra=(),
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        head.extend(f"{k}: {v}" for k, v in extra)
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
        )

    # -- dedicated metrics listener ----------------------------------------

    async def _handle_metrics_conn(self, reader, writer) -> None:
        """Minimal one-shot HTTP responder for Prometheus scrapes."""
        task = asyncio.current_task()
        self._conns.add(task)
        try:
            line = await reader.readline()
            while True:
                raw = await reader.readline()
                if raw in (b"\r\n", b"\n", b""):
                    break
            parts = line.decode("latin-1").strip().split()
            path = parts[1].partition("?")[0] if len(parts) >= 2 else ""
            if len(parts) >= 2 and parts[0] == "GET" and path in (
                "/metrics", "/healthz",
            ):
                if path == "/healthz":
                    body = b'{"ok":true}\n'
                    ctype = "application/json"
                else:
                    await self._refresh_ledgers()
                    body = (await self.service.metrics_text()).encode()
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                self._write_raw(writer, 200, body, content_type=ctype)
            else:
                self._write_raw(
                    writer,
                    404,
                    b'{"error":"unknown path"}\n',
                    content_type="application/json",
                )
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._conns.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

"""Tenant registry: identities, bearer tokens, and key namespaces.

A *tenant* is one customer of the gateway: an id, a bearer token, and
its service limits (ingest rate, byte rate, live-key quota).  Tenants
own disjoint **key namespaces** implemented by prefixing every client
key with the tenant id before it reaches the engine tiers::

    scoped = "<tenant_id>:<client_key>"

Tenant ids cannot contain the separator, so the mapping is reversible
and collision-free; everything below the gateway — the consistent-hash
ring, windows, snapshots, the WAL — sees ordinary string keys and
needs no tenancy concept at all.  Per-key results therefore stay
bit-identical to a single-tenant engine fed the same records (the
parity property the gateway test suite asserts).

The registry is loaded from a JSON (or, on Python 3.11+, TOML) config
document::

    {
      "admin_token": "s3cret-admin",
      "tenants": [
        {"id": "acme", "token": "acme-token",
         "rate_records": 5000, "rate_bytes": 1048576, "max_keys": 64},
        {"id": "globex", "token": "globex-token"}
      ]
    }

and may be mutated at runtime through the gateway's admin verbs.  All
mutation happens on the gateway's event loop, so the registry needs no
locking of its own.
"""

from __future__ import annotations

import hmac
import json
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "NAMESPACE_SEP",
    "Tenant",
    "TenantRegistry",
    "scope_key",
    "split_key",
]

#: Separator between the tenant id and the client key in engine keys.
#: Tenant ids cannot contain it, so ``split_key`` is unambiguous.
NAMESPACE_SEP = ":"

_TENANT_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

_LIMIT_FIELDS = (
    "rate_records",
    "rate_bytes",
    "burst_records",
    "burst_bytes",
)


def scope_key(tenant_id: str, key: str) -> str:
    """The engine-side key for one tenant's client key."""
    return f"{tenant_id}{NAMESPACE_SEP}{key}"


def split_key(scoped: str) -> Tuple[str, str]:
    """Invert :func:`scope_key`; raises ``ValueError`` on an unscoped key."""
    tenant_id, sep, key = str(scoped).partition(NAMESPACE_SEP)
    if not sep:
        raise ValueError(f"key {scoped!r} carries no tenant namespace")
    return tenant_id, key


@dataclass(frozen=True)
class Tenant:
    """One tenant's identity and service limits.

    Args:
        id: namespace owner; letters/digits plus ``_ . -``, and never
            the ``:`` separator (max 64 chars).
        token: bearer token presented in ``Authorization: Bearer ...``.
        rate_records: sustained ingest budget in records/sec (None =
            unlimited).
        rate_bytes: sustained ingest budget in request-body bytes/sec
            (None = unlimited).
        burst_records / burst_bytes: bucket capacities; default to one
            second's worth of the corresponding rate.
        max_keys: live-key quota — distinct keys this tenant may hold
            summaries for (None = unlimited).  Enforced *before* engine
            ingest, so a quota rejection is atomic and never reaches
            the WAL.
        enabled: a disabled tenant authenticates (the token is known)
            but every verb answers 403 — the soft-suspend switch.
    """

    id: str
    token: str
    rate_records: Optional[float] = None
    rate_bytes: Optional[float] = None
    burst_records: Optional[float] = None
    burst_bytes: Optional[float] = None
    max_keys: Optional[int] = None
    enabled: bool = True

    def __post_init__(self):
        if not _TENANT_ID_RE.match(self.id):
            raise ValueError(
                f"invalid tenant id {self.id!r} (letters/digits/_.- only, "
                f"64 chars max, no {NAMESPACE_SEP!r})"
            )
        if not isinstance(self.token, str) or not self.token:
            raise ValueError(f"tenant {self.id!r} needs a non-empty token")
        for name in _LIMIT_FIELDS:
            value = getattr(self, name)
            if value is not None and not (float(value) > 0.0):
                raise ValueError(f"tenant {self.id!r}: {name} must be > 0")
        if self.max_keys is not None and int(self.max_keys) < 1:
            raise ValueError(f"tenant {self.id!r}: max_keys must be >= 1")

    # -- namespace ---------------------------------------------------------

    @property
    def prefix(self) -> str:
        """The engine-key prefix owned by this tenant."""
        return f"{self.id}{NAMESPACE_SEP}"

    def scope(self, key: str) -> str:
        return scope_key(self.id, key)

    def owns(self, scoped_key: object) -> bool:
        """Whether an engine key belongs to this tenant's namespace.

        Used as the service-level subscription ``key_filter``; engine
        keys that are not strings (possible when an embedding
        application shares the engine) are simply not ours.
        """
        return isinstance(scoped_key, str) and scoped_key.startswith(
            self.prefix
        )

    # -- serialisation -----------------------------------------------------

    def to_doc(self, *, redact: bool = False) -> dict:
        """JSON-safe document; ``redact=True`` omits the token (the
        shape admin listings return)."""
        doc = {
            "id": self.id,
            "rate_records": self.rate_records,
            "rate_bytes": self.rate_bytes,
            "burst_records": self.burst_records,
            "burst_bytes": self.burst_bytes,
            "max_keys": self.max_keys,
            "enabled": self.enabled,
        }
        if not redact:
            doc["token"] = self.token
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "Tenant":
        if not isinstance(doc, dict):
            raise ValueError("tenant document must be an object")
        unknown = set(doc) - {
            "id", "token", "max_keys", "enabled", *_LIMIT_FIELDS,
        }
        if unknown:
            raise ValueError(f"unknown tenant fields: {sorted(unknown)}")
        if "id" not in doc or "token" not in doc:
            raise ValueError("tenant document needs 'id' and 'token'")
        limits = {
            name: None if doc.get(name) is None else float(doc[name])
            for name in _LIMIT_FIELDS
        }
        max_keys = doc.get("max_keys")
        return cls(
            id=str(doc["id"]),
            token=str(doc["token"]),
            max_keys=None if max_keys is None else int(max_keys),
            enabled=bool(doc.get("enabled", True)),
            **limits,
        )


class TenantRegistry:
    """Token-indexed tenant store with constant-time token comparison.

    Token lookup walks the (small) tenant list comparing with
    :func:`hmac.compare_digest` — authentication cost is deliberately
    independent of which byte of a guessed token is wrong.
    """

    def __init__(
        self,
        tenants: Iterable[Tenant] = (),
        *,
        admin_token: Optional[str] = None,
    ):
        if admin_token is not None and not admin_token:
            raise ValueError("admin_token must be non-empty when set")
        self.admin_token = admin_token
        self._tenants: Dict[str, Tenant] = {}
        for tenant in tenants:
            self.add(tenant)

    # -- mutation ----------------------------------------------------------

    def add(self, tenant: Tenant) -> Tenant:
        """Insert or replace one tenant (the runtime admin verb).

        Tokens must be unique across tenants and distinct from the
        admin token — a shared secret would make attribution (and the
        per-tenant limits) meaningless.
        """
        if not isinstance(tenant, Tenant):
            raise TypeError("add() takes a Tenant")
        for other in self._tenants.values():
            if other.id != tenant.id and hmac.compare_digest(
                other.token, tenant.token
            ):
                raise ValueError(
                    f"token for tenant {tenant.id!r} already belongs to "
                    f"tenant {other.id!r}"
                )
        if self.admin_token is not None and hmac.compare_digest(
            self.admin_token, tenant.token
        ):
            raise ValueError(
                f"tenant {tenant.id!r} must not reuse the admin token"
            )
        self._tenants[tenant.id] = tenant
        return tenant

    def remove(self, tenant_id: str) -> Tenant:
        try:
            return self._tenants.pop(tenant_id)
        except KeyError:
            raise KeyError(f"unknown tenant {tenant_id!r}") from None

    def set_enabled(self, tenant_id: str, enabled: bool) -> Tenant:
        tenant = self.get(tenant_id)
        if tenant is None:
            raise KeyError(f"unknown tenant {tenant_id!r}")
        updated = replace(tenant, enabled=bool(enabled))
        self._tenants[tenant_id] = updated
        return updated

    # -- lookup ------------------------------------------------------------

    def get(self, tenant_id: str) -> Optional[Tenant]:
        return self._tenants.get(tenant_id)

    def tenants(self) -> List[Tenant]:
        return [self._tenants[tid] for tid in sorted(self._tenants)]

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._tenants

    def by_token(self, token: str) -> Optional[Tenant]:
        """The tenant owning ``token`` (constant-time comparison)."""
        if not isinstance(token, str) or not token:
            return None
        found = None
        for tenant in self._tenants.values():
            # No early exit: every registered token is compared so the
            # walk's timing does not reveal which tenant matched.
            if hmac.compare_digest(tenant.token, token):
                found = tenant
        return found

    def is_admin(self, token: str) -> bool:
        return (
            self.admin_token is not None
            and isinstance(token, str)
            and hmac.compare_digest(self.admin_token, token)
        )

    # -- serialisation -----------------------------------------------------

    def to_doc(self, *, redact: bool = False) -> dict:
        doc = {"tenants": [t.to_doc(redact=redact) for t in self.tenants()]}
        if self.admin_token is not None and not redact:
            doc["admin_token"] = self.admin_token
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "TenantRegistry":
        if not isinstance(doc, dict):
            raise ValueError("tenants config must be an object")
        unknown = set(doc) - {"admin_token", "tenants"}
        if unknown:
            raise ValueError(f"unknown config fields: {sorted(unknown)}")
        tenants_doc = doc.get("tenants", [])
        if not isinstance(tenants_doc, list):
            raise ValueError("'tenants' must be a list")
        return cls(
            (Tenant.from_doc(t) for t in tenants_doc),
            admin_token=doc.get("admin_token"),
        )

    @classmethod
    def load(cls, path) -> "TenantRegistry":
        """Read a registry from a ``.json`` or ``.toml`` config file."""
        path = Path(path)
        raw = path.read_bytes()
        if path.suffix.lower() == ".toml":
            try:
                import tomllib
            except ImportError as exc:  # pragma: no cover - py3.10
                raise ValueError(
                    "TOML tenant configs need Python 3.11+; use JSON"
                ) from exc
            doc = tomllib.loads(raw.decode("utf-8"))
        else:
            try:
                doc = json.loads(raw)
            except ValueError as exc:
                raise ValueError(f"{path}: invalid JSON: {exc}") from exc
        return cls.from_doc(doc)

"""Asyncio client for the gateway's REST + SSE surface.

:class:`GatewayClient` keeps one HTTP/1.1 keep-alive connection and
reopens it transparently when the server (or an intervening error)
closed it.  :meth:`GatewayClient.request` is the raw escape hatch —
it returns ``(status, payload)`` without raising, which is what the
auth/limit tests assert against; the convenience verbs raise
:class:`GatewayHTTPError` on any non-2xx answer.

SSE subscriptions open a *dedicated* connection (the stream consumes
it until cancelled) and hand back a :class:`GatewaySSEStream` whose
:meth:`~GatewaySSEStream.next_event` parses one ``text/event-stream``
frame at a time.
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse
from typing import Iterable, Optional, Sequence, Tuple

__all__ = ["GatewayClient", "GatewayHTTPError", "GatewaySSEStream"]


class GatewayHTTPError(Exception):
    """A non-2xx gateway answer, with its status and decoded body."""

    def __init__(self, status: int, payload):
        self.status = int(status)
        self.payload = payload
        detail = (
            payload.get("error") if isinstance(payload, dict) else payload
        )
        super().__init__(f"HTTP {status}: {detail}")


class GatewaySSEStream:
    """One open ``text/event-stream`` response."""

    def __init__(self, reader, writer):
        self._reader = reader
        self._writer = writer

    async def next_event(self, timeout: Optional[float] = None) -> dict:
        """Parse the next SSE frame into ``{"event", "data", "id"}``
        (``data`` JSON-decoded when possible); comment/heartbeat
        frames are skipped."""

        async def read_frame() -> dict:
            fields = {}
            while True:
                raw = await self._reader.readline()
                if not raw:
                    raise ConnectionError("SSE stream closed")
                line = raw.decode("utf-8").rstrip("\r\n")
                if not line:
                    if fields:
                        return fields
                    continue  # blank after a comment-only frame
                if line.startswith(":"):
                    continue  # heartbeat comment
                name, _, value = line.partition(":")
                fields[name.strip()] = value.lstrip()

        fields = (
            await asyncio.wait_for(read_frame(), timeout)
            if timeout is not None
            else await read_frame()
        )
        data = fields.get("data", "")
        try:
            data = json.loads(data)
        except ValueError:
            pass
        return {
            "event": fields.get("event", "message"),
            "data": data,
            "id": fields.get("id"),
        }

    async def aclose(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionError:
            pass


class GatewayClient:
    """Keep-alive HTTP client for one gateway endpoint.

    Args:
        host / port: the gateway's main listener.
        token: bearer token sent on every request (a tenant's, or the
            admin token for the operator verbs); None sends no
            ``Authorization`` header at all.
    """

    def __init__(self, host: str, port: int, token: Optional[str] = None):
        self.host = host
        self.port = int(port)
        self.token = token
        #: Response headers of the most recent :meth:`request` (e.g.
        #: ``Retry-After`` after a 429), lower-cased names.
        self.last_headers: dict = {}
        self._reader = None
        self._writer = None

    async def __aenter__(self) -> "GatewayClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
            self._reader = self._writer = None

    # -- raw HTTP ----------------------------------------------------------

    async def _open(self):
        reader, writer = await asyncio.open_connection(self.host, self.port)
        return reader, writer

    def _head(
        self, method: str, path: str, body: bytes, *, sse: bool = False
    ) -> bytes:
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
        ]
        if self.token is not None:
            lines.append(f"Authorization: Bearer {self.token}")
        if sse:
            lines.append("Accept: text/event-stream")
        if body:
            lines.append("Content-Type: application/json")
        lines.append(f"Content-Length: {len(body)}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    @staticmethod
    async def _read_response(reader) -> Tuple[int, dict, object]:
        line = await reader.readline()
        if not line:
            raise ConnectionError("connection closed before response")
        parts = line.decode("latin-1").split(None, 2)
        status = int(parts[1])
        headers = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        body = await reader.readexactly(length) if length else b""
        if headers.get("content-type", "").startswith("application/json"):
            payload = json.loads(body) if body else None
        else:
            payload = body.decode("utf-8", "replace")
        return status, headers, payload

    async def request(
        self, method: str, path: str, doc=None
    ) -> Tuple[int, object]:
        """One round trip; returns ``(status, payload)`` and never
        raises on HTTP-level errors (only transport failures).

        A dropped connection is reopened and the request replayed once
        — but only for GET, which is idempotent.  A POST (an ingest,
        say) may already have been applied before the connection died,
        so replaying it blindly could double-ingest; non-GET callers
        see the transport error and decide for themselves."""
        body = (
            b""
            if doc is None
            else json.dumps(doc, separators=(",", ":")).encode("utf-8")
        )
        payload = self._head(method, path, body) + body
        for attempt in (0, 1):
            if self._writer is None:
                self._reader, self._writer = await self._open()
            try:
                self._writer.write(payload)
                await self._writer.drain()
                status, headers, decoded = await self._read_response(
                    self._reader
                )
            except (ConnectionError, asyncio.IncompleteReadError):
                # The server may have dropped an idle keep-alive
                # connection between requests; reopen once, for
                # idempotent verbs only.
                await self.aclose()
                if attempt or method != "GET":
                    raise
                continue
            self.last_headers = headers
            if headers.get("connection", "").lower() == "close":
                await self.aclose()
            return status, decoded
        raise ConnectionError("unreachable")  # pragma: no cover

    async def _checked(self, method: str, path: str, doc=None):
        status, payload = await self.request(method, path, doc)
        if status >= 400:
            raise GatewayHTTPError(status, payload)
        return payload

    # -- convenience verbs -------------------------------------------------

    async def ingest(
        self, records: Iterable[Sequence], sync: bool = False
    ) -> dict:
        return await self._checked(
            "POST",
            "/v1/ingest",
            {"records": [list(r) for r in records], "sync": sync},
        )

    async def hull(self, key: str):
        doc = await self._checked(
            "GET", f"/v1/hull/{urllib.parse.quote(str(key), safe='')}"
        )
        return [tuple(pt) for pt in doc["hull"]]

    async def keys(self):
        return (await self._checked("GET", "/v1/keys"))["keys"]

    async def stats(self) -> dict:
        return await self._checked("GET", "/v1/stats")

    async def advance_time(self, now: float) -> int:
        doc = await self._checked(
            "POST", "/v1/advance_time", {"now": float(now)}
        )
        return doc["expired"]

    async def metrics_text(self) -> str:
        return await self._checked("GET", "/metrics")

    async def subscribe(self, keys=None) -> GatewaySSEStream:
        """Open an SSE stream on its own connection (the keep-alive
        request connection stays usable for other verbs)."""
        path = "/v1/subscribe"
        if keys:
            joined = ",".join(
                urllib.parse.quote(str(k), safe="") for k in keys
            )
            path += f"?keys={joined}"
        reader, writer = await self._open()
        writer.write(self._head("GET", path, b"", sse=True))
        await writer.drain()
        line = await reader.readline()
        status = int(line.decode("latin-1").split(None, 2)[1])
        headers = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        if status != 200:
            length = int(headers.get("content-length", 0))
            body = await reader.readexactly(length) if length else b""
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass
            payload = json.loads(body) if body else None
            raise GatewayHTTPError(status, payload)
        return GatewaySSEStream(reader, writer)

"""Token-bucket rate limiting for per-tenant ingest budgets.

:class:`TokenBucket` is the classic meter: capacity ``burst`` tokens,
refilled continuously at ``rate`` tokens/sec.  A request for ``n``
tokens is admitted when the bucket holds ``min(n, burst)`` — the
clamp means one batch larger than the burst capacity is still
admissible from a full bucket (the balance goes negative and is paid
back before anything else is admitted), so oversized-but-legal batches
make progress instead of being unsatisfiable forever.  Long-run
throughput never exceeds ``rate`` either way.

:class:`TenantLimiter` pairs a records/sec and a bytes/sec bucket and
admits **atomically**: a request is charged against both budgets or
neither, so a rejection leaves the tenant's remaining allowance
untouched (a denied request must not eat the budget of the retry the
``Retry-After`` header asks for).

Everything is driven by an injectable monotonic ``clock`` so tests
advance time explicitly.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["TokenBucket", "TenantLimiter"]


class TokenBucket:
    """A continuously refilling token bucket (see module docstring)."""

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        rate = float(rate)
        if not rate > 0.0:
            raise ValueError("rate must be > 0")
        burst = rate if burst is None else float(burst)
        if not burst > 0.0:
            raise ValueError("burst must be > 0")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._updated
        if elapsed > 0.0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    @property
    def tokens(self) -> float:
        """Current balance (may be negative after an oversized admit)."""
        self._refill()
        return self._tokens

    def retry_after(self, amount: float) -> float:
        """Seconds until ``amount`` tokens would be admissible
        (0.0 = admissible right now).  Does not charge the bucket."""
        need = min(float(amount), self.burst)
        self._refill()
        if self._tokens >= need:
            return 0.0
        return (need - self._tokens) / self.rate

    def take(self, amount: float) -> None:
        """Charge ``amount`` tokens unconditionally (the caller already
        checked :meth:`retry_after`)."""
        self._refill()
        self._tokens -= float(amount)


class TenantLimiter:
    """Atomic records/sec + bytes/sec admission for one tenant.

    Built from a :class:`~repro.gateway.tenants.Tenant`'s limit fields;
    a tenant with neither rate admits everything at zero cost.
    """

    def __init__(self, tenant, *, clock: Callable[[], float] = time.monotonic):
        self._records: Optional[TokenBucket] = None
        self._bytes: Optional[TokenBucket] = None
        if tenant.rate_records is not None:
            self._records = TokenBucket(
                tenant.rate_records, tenant.burst_records, clock=clock
            )
        if tenant.rate_bytes is not None:
            self._bytes = TokenBucket(
                tenant.rate_bytes, tenant.burst_bytes, clock=clock
            )

    @property
    def limited(self) -> bool:
        return self._records is not None or self._bytes is not None

    def admit(self, records: int, nbytes: int) -> float:
        """Admit (charge both budgets, return 0.0) or refuse (charge
        neither, return the seconds after which a retry can succeed)."""
        wait = 0.0
        if self._records is not None:
            wait = max(wait, self._records.retry_after(records))
        if self._bytes is not None:
            wait = max(wait, self._bytes.retry_after(nbytes))
        if wait > 0.0:
            return wait
        if self._records is not None:
            self._records.take(records)
        if self._bytes is not None:
            self._bytes.take(nbytes)
        return 0.0

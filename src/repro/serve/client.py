"""Asyncio client for the NDJSON hull-serving protocol.

:class:`AsyncHullClient` mirrors the :class:`~repro.serve.HullServer`
verb set with awaitable methods.  A single reader task demultiplexes
the connection: replies resolve the pending request future matched by
``id`` (requests pipeline freely), ``event`` lines land in the
client-side subscription queue.

Hull vertices come back as the same ``(x, y)`` float tuples the engines
return — JSON round-trips IEEE doubles exactly, so a remotely ingested
stream yields bit-identical hulls to a local engine fed the same
records.
"""

from __future__ import annotations

import asyncio
import json
from typing import Hashable, Iterable, List, Optional, Set, Tuple

from .server import MAX_LINE

__all__ = ["AsyncHullClient", "RemoteEngineError", "RemoteSubscription"]


class RemoteEngineError(RuntimeError):
    """The server reported an error for a request (or rejected an
    ingested batch at drain time, for ``sync`` ingests)."""


class RemoteSubscription:
    """Client-side stream of standing-query events (touched key sets)."""

    def __init__(self, client: "AsyncHullClient"):
        self._client = client
        self._queue: asyncio.Queue = asyncio.Queue()

    async def get(self) -> Set[Hashable]:
        """Wait for the next touched-key set pushed by the server."""
        item = await self._queue.get()
        if isinstance(item, Exception):
            raise item
        return item

    def __aiter__(self) -> "RemoteSubscription":
        return self

    async def __anext__(self) -> Set[Hashable]:
        return await self.get()

    async def cancel(self) -> None:
        """Stop the server-side push for this connection."""
        await self._client._request({"op": "unsubscribe"})
        self._client._subscription = None


class AsyncHullClient:
    """Connect with :meth:`connect` (or ``async with``); every verb is
    an awaitable method.  One client = one connection; requests may be
    issued concurrently (they pipeline by id)."""

    def __init__(self, reader, writer):
        self._reader = reader
        self._writer = writer
        # Concurrent (pipelined) requests share one writer; asyncio's
        # flow control allows a single drain() waiter per transport, so
        # write+drain pairs serialise through this lock.
        self._write_lock = asyncio.Lock()
        self._pending: dict = {}
        self._next_id = 0
        self._subscription: Optional[RemoteSubscription] = None
        self._reader_task = asyncio.ensure_future(self._read_loop())
        self._closed = False

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 0
    ) -> "AsyncHullClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE
        )
        return cls(reader, writer)

    async def __aenter__(self) -> "AsyncHullClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        self._fail_pending(ConnectionError("client closed"))

    # -- wire plumbing -----------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    raise ConnectionError("server closed the connection")
                msg = json.loads(line)
                if "event" in msg:
                    if self._subscription is not None:
                        self._subscription._queue.put_nowait(
                            set(msg.get("keys", []))
                        )
                    continue
                fut = self._pending.pop(msg.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(msg)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - connection boundary
            self._fail_pending(exc)

    def _fail_pending(self, exc: Exception) -> None:
        for fut in self._pending.values():
            if not fut.done():
                fut.set_exception(exc)
        self._pending.clear()
        if self._subscription is not None:
            self._subscription._queue.put_nowait(exc)

    async def _request(self, payload: dict) -> dict:
        if self._closed:
            raise ConnectionError("client is closed")
        self._next_id += 1
        req_id = self._next_id
        payload = {**payload, "id": req_id}
        fut = asyncio.get_running_loop().create_future()
        self._pending[req_id] = fut
        async with self._write_lock:
            self._writer.write(json.dumps(payload).encode("utf-8") + b"\n")
            await self._writer.drain()
        reply = await fut
        if not reply.get("ok"):
            raise RemoteEngineError(reply.get("error", "unknown error"))
        return reply

    # -- verbs -------------------------------------------------------------

    async def ping(self) -> dict:
        return await self._request({"op": "ping"})

    async def ingest(
        self, records: Iterable[tuple], sync: bool = False
    ) -> int:
        """Send ``(key, x, y[, ts])`` records; returns the queued count.

        ``sync=True`` waits until this batch has gone through the
        engine and raises :class:`RemoteEngineError` carrying *its*
        rejection (per-request attribution; other clients' batches
        never bleed into this error).
        """
        reply = await self._request(
            {
                "op": "ingest",
                "records": [list(rec) for rec in records],
                "sync": sync,
            }
        )
        return reply["queued"]

    async def flush(self) -> None:
        """Barrier: everything sent so far has been applied (or counted
        as an ingest error in the server's service stats)."""
        await self._request({"op": "flush"})

    async def advance_time(self, now: float) -> int:
        reply = await self._request({"op": "advance_time", "now": now})
        return reply["expired"]

    async def resize(self, shards: int) -> dict:
        """Resize the served ring online (sharded engines only);
        returns the resize event
        (``from``/``to``/``moved_keys``/``total_keys``)."""
        reply = await self._request({"op": "resize", "shards": int(shards)})
        return reply["resize"]

    async def _query(self, what: str, **extra):
        reply = await self._request({"op": "query", "what": what, **extra})
        return reply["result"]

    async def hull(self, key: Hashable) -> List[Tuple[float, float]]:
        return [tuple(v) for v in await self._query("hull", key=key)]

    async def merged_hull(self, keys=None) -> List[Tuple[float, float]]:
        extra = {} if keys is None else {"keys": list(keys)}
        return [tuple(v) for v in await self._query("merged_hull", **extra)]

    async def diameter(self, keys=None) -> float:
        extra = {} if keys is None else {"keys": list(keys)}
        return await self._query("diameter", **extra)

    async def width(self, keys=None) -> float:
        extra = {} if keys is None else {"keys": list(keys)}
        return await self._query("width", **extra)

    async def keys(self) -> List[Hashable]:
        return await self._query("keys")

    async def stats(self) -> dict:
        return await self._query("stats")

    async def service_stats(self) -> dict:
        return await self._query("service_stats")

    async def metrics(self) -> str:
        """The server's metrics page in Prometheus text exposition
        format 0.0.4 (the same text the HTTP ``/metrics`` listener
        serves)."""
        reply = await self._request({"op": "metrics"})
        return reply["text"]

    async def summary_state(self, key: Hashable) -> Optional[dict]:
        """One key's full summary-state document
        (:mod:`repro.streams.io` format; None when the key is not
        live).  Rebuild a local copy with
        :func:`repro.streams.io.summary_from_state`."""
        return await self._query("summary_state", key=key)

    async def late_drops(self) -> dict:
        """Per-key later-than-watermark drop counts (empty under the
        strict time policy)."""
        return {k: n for k, n in await self._query("late_drops")}

    async def snapshot_state(self) -> dict:
        reply = await self._request({"op": "snapshot"})
        return reply["state"]

    async def snapshot(self, path) -> str:
        reply = await self._request({"op": "snapshot", "path": str(path)})
        return reply["path"]

    async def subscribe(self, keys=None) -> RemoteSubscription:
        """Start server push for batches touching ``keys`` (all keys
        when None); one subscription per connection.  Calling again
        replaces the server-side key filter — the returned (shared)
        subscription then receives events for the new keys."""
        if self._subscription is None:
            self._subscription = RemoteSubscription(self)
        await self._request(
            {"op": "subscribe", "keys": None if keys is None else list(keys)}
        )
        return self._subscription

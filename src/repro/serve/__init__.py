"""repro.serve — the asyncio serving front door.

Production monitoring wants the engines *behind a service*: producers
push records without blocking on summary maintenance, dashboards pull
hull/diameter/width answers, detectors sit on standing-query push —
the continuous-monitoring shape the observing-run pipelines in
PAPERS.md run at.  This package provides exactly that, over any
:class:`~repro.engine.protocol.EngineProtocol` engine (in-process or
sharded, windowed or not):

* :class:`AsyncHullService` — bounded, batch-coalescing ingest queue
  with awaitable backpressure; a single engine thread keeping the
  event loop responsive; a periodic ``advance_time`` ticker for
  time-windowed configs; per-subscriber asyncio push queues bridging
  the engines' standing queries; graceful drain + final snapshot.
* :class:`HullServer` — a newline-delimited-JSON TCP front end
  (``asyncio.start_server``) speaking ingest / query / subscribe /
  snapshot verbs.
* :class:`AsyncHullClient` — the matching client; floats round-trip
  JSON exactly, so remote results are bit-identical to local ones.

Quickstart::

    import asyncio
    from repro import AdaptiveHull, StreamEngine, WindowConfig
    from repro.serve import AsyncHullService, HullServer

    async def main():
        engine = StreamEngine(lambda: AdaptiveHull(32),
                              window=WindowConfig(horizon=300.0))
        async with AsyncHullService(engine, own_engine=True) as service:
            async with HullServer(service, port=8765) as server:
                await server.serve_forever()

    asyncio.run(main())

Or from the command line: ``python -m repro serve run --port 8765``.
"""

from .client import AsyncHullClient, RemoteEngineError, RemoteSubscription
from .server import HullServer
from .service import AsyncHullService, AsyncSubscription

__all__ = [
    "AsyncHullService",
    "AsyncSubscription",
    "HullServer",
    "AsyncHullClient",
    "RemoteEngineError",
    "RemoteSubscription",
]

"""Newline-delimited-JSON TCP serving of a hull service.

:class:`HullServer` listens with :func:`asyncio.start_server` and
speaks one JSON object per line in each direction.  Requests carry an
``op`` (and an optional ``id`` echoed back so clients can pipeline);
replies are ``{"id": ..., "ok": true, ...}`` or
``{"id": ..., "ok": false, "error": "..."}``.  Server-initiated push
messages (standing-query notifications) carry ``"event"`` instead of
``"id"``.

Verbs:

``ping``
    liveness probe; replies with the server's engine/window shape.
``ingest``
    ``{"records": [[key, x, y], ...]}`` or ``[key, x, y, ts]`` rows;
    enqueued through the service's backpressured queue.  With
    ``"sync": true`` the reply waits until *this* batch went through
    the engine and carries its rejection as this request's error —
    per-request attribution even with concurrent clients.
``flush``
    barrier — replies once everything enqueued so far was applied.
``query``
    ``{"what": "hull"|"merged_hull"|"diameter"|"width"|"keys"|"stats"|
    "service_stats"|"summary_state"|"late_drops"|"len", "key": ...,
    "keys": [...]}``.  ``summary_state`` fetches one key's full
    :mod:`repro.streams.io` summary document (None for a key that is
    not live); ``late_drops`` the per-key later-than-watermark drop
    counts of a bounded-lateness window.
``advance_time``
    ``{"now": t}`` — broadcast window expiry.
``resize``
    ``{"shards": n}`` — online ring resize (sharded engines only);
    replies with the resize event (``from``/``to``/``moved_keys``/
    ``total_keys``).  Ingest keeps flowing: queued batches apply right
    after the migration, on the new layout.
``subscribe`` / ``unsubscribe``
    start/stop streaming ``{"event": "update", "keys": [...]}`` lines
    to this connection after every batch touching the watched keys.
``snapshot``
    with ``"path"``: write a snapshot file server-side; without: return
    the full engine state inline (``"state"``).
``metrics``
    the whole stack's metrics as Prometheus text exposition format
    0.0.4 in ``"text"`` (see :mod:`repro.obs`) — the same page a
    scraper gets from the plain-HTTP ``/metrics`` listener enabled
    with ``HullServer(metrics_port=...)``.

Keys must be JSON scalars (the same constraint engine snapshots have);
floats survive the trip exactly (JSON round-trips IEEE doubles), so a
client-fed stream yields bit-identical hulls to a local one.

Hardening: ``max_connections`` caps concurrently served connections
(an over-cap connection gets one error line and is closed before any
request is read) and ``max_subscribers`` caps concurrent push
subscriptions (an over-cap ``subscribe`` fails per-request; the
connection stays usable).
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Optional, Set

from ..obs import metrics as OBS
from .service import AsyncHullService, AsyncSubscription

__all__ = ["HullServer", "MAX_LINE"]

#: Per-line size limit for reads (a 64 KiB asyncio default would cap
#: ingest batches at a few hundred records).
MAX_LINE = 1 << 24

#: Verbs that get a per-verb latency histogram sample.  A fixed set:
#: client-controlled op strings must never mint new label children.
_TIMED_VERBS = frozenset(
    {
        "ping",
        "ingest",
        "flush",
        "advance_time",
        "resize",
        "snapshot",
        "query",
        "subscribe",
        "unsubscribe",
        "metrics",
    }
)


def _jsonable_key(key):
    if isinstance(key, (str, int, float, bool)) or key is None:
        return key
    raise TypeError(
        f"serving keys must be JSON scalars, got {type(key).__name__}"
    )


class HullServer:
    """Serve an :class:`~repro.serve.AsyncHullService` over TCP.

    Args:
        service: a *started* service (the server does not own it — one
            service can sit behind several listeners, and the caller
            decides when to drain/close it).
        host / port: listen address; port 0 picks an ephemeral port
            (read :attr:`port` after :meth:`start`).
        max_connections: cap on concurrently served connections (the
            hardening backlog bound; None = unlimited).  A connection
            over the cap receives one ``{"ok": false, "error": ...}``
            line and is closed before any request is read — it never
            reaches the service.
        max_subscribers: cap on concurrently subscribed connections
            (None = unlimited); an over-cap ``subscribe`` op fails
            with a normal per-request error, the connection stays
            usable for everything else.
        metrics_port: when set, additionally listen on this plain-HTTP
            port (same host; 0 picks an ephemeral port, read
            :attr:`metrics_port` after :meth:`start`) and answer
            ``GET /metrics`` with the Prometheus text exposition — the
            page a stock Prometheus scraper can consume without
            speaking the NDJSON protocol.  Anything but ``/metrics``
            gets a 404.
    """

    def __init__(
        self,
        service: AsyncHullService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_connections: Optional[int] = None,
        max_subscribers: Optional[int] = None,
        metrics_port: Optional[int] = None,
    ):
        if max_connections is not None and max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        if max_subscribers is not None and max_subscribers < 1:
            raise ValueError("max_subscribers must be >= 1")
        self.service = service
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.max_subscribers = max_subscribers
        self.metrics_port = metrics_port
        self._connections = 0
        self._refused = 0
        # TCP-originated subscriptions only: in-process subscribers an
        # embedding application holds on the same service must not eat
        # the TCP push budget.
        self._tcp_subscribers = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._metrics_server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> "HullServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_LINE
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_http, self.host, self.metrics_port
            )
            self.metrics_port = (
                self._metrics_server.sockets[0].getsockname()[1]
            )
        return self

    async def __aenter__(self) -> "HullServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    async def serve_forever(self) -> None:
        """Block serving connections until cancelled."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- per-connection ----------------------------------------------------

    @property
    def connection_count(self) -> int:
        """Connections currently being served."""
        return self._connections

    @property
    def refused_connections(self) -> int:
        """Connections turned away at the ``max_connections`` cap."""
        return self._refused

    async def _handle_connection(self, reader, writer) -> None:
        if (
            self.max_connections is not None
            and self._connections >= self.max_connections
        ):
            # Over the backlog cap: one explanatory line, then the
            # door — the connection never reaches the service.
            self._refused += 1
            try:
                writer.write(
                    json.dumps(
                        {
                            "id": None,
                            "ok": False,
                            "error": "server at max_connections",
                        }
                    ).encode("utf-8")
                    + b"\n"
                )
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass
            return
        self._connections += 1
        OBS.SERVE_CONNECTIONS.inc()
        try:
            await self._serve_connection(reader, writer)
        finally:
            self._connections -= 1
            OBS.SERVE_CONNECTIONS.dec()

    async def _serve_connection(self, reader, writer) -> None:
        sub: Optional[AsyncSubscription] = None
        pusher: Optional[asyncio.Task] = None
        # The reply path and the subscription pusher share this writer;
        # asyncio's flow control allows only one drain() waiter at a
        # time, so every write+drain pair takes the connection lock.
        write_lock = asyncio.Lock()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    # readline signals an over-limit line as ValueError
                    # (LimitOverrunError is its internal cause); either
                    # way the framing is broken — drop the connection.
                    ValueError,
                    asyncio.LimitOverrunError,
                    ConnectionResetError,
                ):
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    msg = json.loads(line)
                    if not isinstance(msg, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    await self._send(
                        writer,
                        {"id": None, "ok": False, "error": str(exc)},
                        write_lock,
                    )
                    continue
                req_id = msg.get("id")
                op = msg.get("op")
                t_op = time.perf_counter()
                try:
                    if op == "subscribe":
                        if (
                            self.max_subscribers is not None
                            and sub is None
                            and self._tcp_subscribers
                            >= self.max_subscribers
                        ):
                            raise RuntimeError(
                                "server at max_subscribers"
                            )
                        # A repeated subscribe replaces the connection's
                        # subscription (new key filter takes effect, the
                        # budget slot is reused).
                        if pusher is not None:
                            pusher.cancel()
                            pusher = None
                        if sub is not None:
                            await sub.cancel()
                            self._tcp_subscribers -= 1
                            sub = None
                        sub = await self.service.subscribe(msg.get("keys"))
                        self._tcp_subscribers += 1
                        pusher = asyncio.ensure_future(
                            self._push_events(writer, sub, write_lock)
                        )
                        reply = {}
                    elif op == "unsubscribe":
                        if pusher is not None:
                            pusher.cancel()
                            pusher = None
                        if sub is not None:
                            await sub.cancel()
                            self._tcp_subscribers -= 1
                            sub = None
                        reply = {}
                    else:
                        reply = await self._dispatch(op, msg)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 - protocol boundary
                    await self._send(
                        writer,
                        {
                            "id": req_id,
                            "ok": False,
                            "error": f"{type(exc).__name__}: {exc}",
                        },
                        write_lock,
                    )
                else:
                    reply.update({"id": req_id, "ok": True})
                    await self._send(writer, reply, write_lock)
                if op in _TIMED_VERBS:
                    OBS.SERVE_VERB_SECONDS.labels(op).observe(
                        time.perf_counter() - t_op
                    )
        except asyncio.CancelledError:
            # Listener shutdown cancels in-flight handlers; exit
            # cleanly (the finally below still runs) instead of
            # propagating — asyncio.streams' connection callback would
            # log the cancellation of a connection task as an error.
            pass
        except (ConnectionResetError, BrokenPipeError):
            # The client vanished mid-reply; normal churn, not an
            # error worth an asyncio traceback.
            pass
        finally:
            if pusher is not None:
                pusher.cancel()
            if sub is not None:
                self._tcp_subscribers -= 1
                # The listener may cancel this handler mid-cleanup;
                # shield so the engine-side detach still completes.
                try:
                    await asyncio.shield(sub.cancel())
                except asyncio.CancelledError:
                    pass
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                # The listener may cancel in-flight handlers on close;
                # the connection is going away either way, and we are
                # on the last line of the task.
                asyncio.CancelledError,
            ):  # pragma: no cover - teardown race
                pass

    async def _dispatch(self, op: str, msg: dict) -> dict:
        service = self.service
        if op == "ping":
            window = service.engine.window
            return {
                "engine": type(service.engine).__name__,
                "window": window.to_doc() if window else None,
            }
        if op == "ingest":
            # sync=True waits on this batch's own completion future, so
            # a rejection is attributed to exactly this request (and
            # surfaces as this reply's error), never to concurrent
            # clients' batches.
            records = [tuple(rec) for rec in msg["records"]]
            queued = await service.ingest(records, sync=bool(msg.get("sync")))
            return {"queued": queued}
        if op == "flush":
            await service.flush()
            return {}
        if op == "advance_time":
            return {"expired": await service.advance_time(msg["now"])}
        if op == "resize":
            return {"resize": await service.resize(int(msg["shards"]))}
        if op == "snapshot":
            path = msg.get("path")
            if path is not None:
                return {"path": str(await service.snapshot(path))}
            return {"state": await service.snapshot_state()}
        if op == "query":
            return {"result": await self._query(msg)}
        if op == "metrics":
            return {"text": await service.metrics_text()}
        raise ValueError(f"unknown op {op!r}")

    async def _query(self, msg: dict):
        what = msg.get("what")
        service = self.service
        if what == "hull":
            return await service.hull(msg["key"])
        if what == "merged_hull":
            return await service.merged_hull(msg.get("keys"))
        if what == "diameter":
            return await service.diameter(msg.get("keys"))
        if what == "width":
            return await service.width(msg.get("keys"))
        if what == "summary_state":
            # Per-key state fetch: the full streams.io summary doc, so
            # a client can rebuild (or audit) one stream's summary
            # without pulling a whole engine snapshot.  None when the
            # key is not live — the probe never creates a key.
            return await service.summary_state(msg["key"])
        if what == "late_drops":
            return [
                [_jsonable_key(k), n]
                for k, n in sorted(
                    (await service.late_drops()).items(), key=str
                )
            ]
        if what == "keys":
            return [_jsonable_key(k) for k in await service.keys()]
        if what == "len":
            return len(await service.keys())
        if what == "stats":
            stats = await service.stats()
            doc = dict(stats.__dict__)
            doc.pop("per_shard", None)  # summarised parent-side already
            return doc
        if what == "service_stats":
            return service.service_stats()
        raise ValueError(f"unknown query {what!r}")

    async def _handle_metrics_http(self, reader, writer) -> None:
        """Minimal plain-HTTP responder for ``GET /metrics``.

        Deliberately tiny (no keep-alive, no chunking, one request per
        connection — HTTP/1.0 semantics): Prometheus scrapers speak
        exactly this much, and the NDJSON protocol stays the real API.
        """
        try:
            request_line = await reader.readline()
            # Swallow the request headers; nothing in them changes the
            # answer.
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            parts = request_line.split()
            path = parts[1].decode("latin-1") if len(parts) >= 2 else ""
            path = path.split("?", 1)[0]
            if path == "/metrics":
                body = (await self.service.metrics_text()).encode("utf-8")
                status = b"HTTP/1.0 200 OK\r\n"
                ctype = (
                    b"Content-Type: text/plain; version=0.0.4; "
                    b"charset=utf-8\r\n"
                )
            else:
                body = b"not found\n"
                status = b"HTTP/1.0 404 Not Found\r\n"
                ctype = b"Content-Type: text/plain; charset=utf-8\r\n"
            writer.write(
                status
                + ctype
                + f"Content-Length: {len(body)}\r\n".encode("ascii")
                + b"Connection: close\r\n\r\n"
                + body
            )
            await writer.drain()
        except (
            asyncio.CancelledError,
            ConnectionResetError,
            BrokenPipeError,
            ValueError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):  # pragma: no cover - teardown race
                pass

    async def _push_events(
        self, writer, sub: AsyncSubscription, write_lock: asyncio.Lock
    ) -> None:
        try:
            async for touched in sub:
                await self._send(
                    writer,
                    {
                        "event": "update",
                        "keys": sorted(
                            (_jsonable_key(k) for k in touched), key=str
                        ),
                    },
                    write_lock,
                )
        except asyncio.CancelledError:
            raise
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            return

    @staticmethod
    async def _send(
        writer, payload: dict, write_lock: asyncio.Lock
    ) -> None:
        # One locked write+drain per message: the line stays atomic AND
        # only one task ever waits in drain() (asyncio's flow control
        # supports a single drain waiter per transport).
        async with write_lock:
            writer.write(json.dumps(payload).encode("utf-8") + b"\n")
            await writer.drain()

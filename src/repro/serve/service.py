"""The asyncio front door over any :class:`EngineProtocol` engine.

:class:`AsyncHullService` turns a synchronous engine — either tier —
into a non-blocking monitoring service:

* **non-blocking ingest** — :meth:`AsyncHullService.ingest` /
  :meth:`~AsyncHullService.ingest_arrays` validate shapes cheaply and
  enqueue onto a *bounded* asyncio queue; ``await put`` is the
  backpressure (producers suspend when the engine falls behind instead
  of growing memory without bound);
* **batch coalescing** — the single drain task concatenates every
  batch waiting in the queue into one engine call, so a burst of small
  puts ingests as one vectorised batch (order preserved, per-key
  results bit-identical to feeding the batches one by one); on an
  engine with a bounded-lateness window policy the coalesced run is
  additionally stable-sorted by event time before the engine sees it —
  the queue is the natural reorder point, so fewer records reach the
  engine out of order (never *more* records judged late: in-batch
  lateness can only be caused by newer records preceding older ones);
* **one engine thread** — every engine touch (ingest, queries,
  snapshots, ``advance_time``) runs on a dedicated single-thread
  executor: the event loop never blocks on summary work, and the
  engine sees strictly serialised access, so no engine needs to be
  thread-safe;
* **event-loop ticker** — a time-windowed engine gets periodic
  ``advance_time(clock())`` calls driven by the loop instead of a
  caller-managed clock;
* **standing-query push** — :meth:`AsyncHullService.subscribe` bridges
  the engines' synchronous subscription callbacks to a per-subscriber
  :class:`asyncio.Queue`: touched-key sets arrive with ``await
  sub.get()`` (or ``async for``), including keys whose windows expired
  with no new data;
* **graceful drain** — :meth:`AsyncHullService.aclose` stops intake,
  drains the queue through the engine, optionally writes a final
  snapshot, and tears the tasks down.

Ingest errors discovered at drain time (e.g. a decreasing timestamp)
cannot propagate to the producer that already returned from ``put``;
they are counted in :meth:`AsyncHullService.service_stats`, remembered
in :attr:`AsyncHullService.last_error`, and never kill the drain task.
Use :meth:`AsyncHullService.flush` as a barrier before reading query
results that must reflect everything enqueued.
"""

from __future__ import annotations

import asyncio
import contextvars
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Hashable, Iterable, List, Optional, Sequence, Set

import numpy as np

from ..core.batch import as_key_array, as_point_array, as_ts_array
from ..engine.common import split_records
from ..obs import metrics as OBS
from ..obs import registry as obs_registry
from ..obs import render_snapshot
from ..obs.trace import span

__all__ = ["AsyncHullService", "AsyncSubscription"]


class AsyncSubscription:
    """Per-subscriber push queue for standing-query notifications.

    Touched-key sets are delivered in dispatch order; when the
    subscriber falls behind and its bounded queue overflows, the
    newest notification is merged into the queue's tail instead of
    being dropped, so a slow consumer sees coalesced (never lost)
    touch sets.  Obtain instances from
    :meth:`AsyncHullService.subscribe`; call :meth:`cancel` (or use the
    service's shutdown) to detach.
    """

    def __init__(self, service: "AsyncHullService", maxsize: int):
        self._service = service
        self._maxsize = maxsize
        # Unbounded queue, bounded manually: on overflow the newest
        # pending set (we keep a reference to it) absorbs the incoming
        # keys in place, preserving delivery order.
        self._queue: asyncio.Queue = asyncio.Queue()
        self._tail: Optional[Set[Hashable]] = None
        self._handle = None  # engine-side Subscription
        self.coalesced = 0  # overflow merges (slow consumer indicator)
        self.received = 0

    def _push(self, touched: Set[Hashable]) -> None:
        """Runs on the event loop (scheduled threadsafe from the engine
        thread)."""
        if self._queue.qsize() >= self._maxsize:
            # The tail reference is necessarily still enqueued (it was
            # the last put and the queue is non-empty), so merging in
            # place keeps dispatch order: the subscriber still learns
            # every touched key, just with less granularity.
            self._tail |= set(touched)
            self.coalesced += 1
            return
        item = set(touched)
        self._tail = item
        self._queue.put_nowait(item)

    async def get(self) -> Set[Hashable]:
        """Wait for the next touched-key set."""
        touched = await self._queue.get()
        self.received += 1
        return touched

    def __aiter__(self) -> "AsyncSubscription":
        return self

    async def __anext__(self) -> Set[Hashable]:
        return await self.get()

    async def cancel(self) -> None:
        """Detach from the engine; pending notifications stay readable."""
        await self._service._cancel_subscription(self)


class AsyncHullService:
    """Serve a hull engine asynchronously (see module docstring).

    Args:
        engine: any :class:`~repro.engine.protocol.EngineProtocol`
            implementation — an in-process
            :class:`~repro.engine.StreamEngine` or a multi-process
            :class:`~repro.shard.ShardedEngine`, windowed or not.
        queue_size: bounded ingest queue length, in batches; ``await
            put`` on a full queue is the backpressure.
        tick_interval: seconds between automatic
            ``advance_time(clock())`` ticks (time-windowed engines
            only; None disables the ticker).
        clock: zero-argument event-time source for the ticker (e.g.
            ``time.time`` when record timestamps are wall-clock
            seconds).  Required if ``tick_interval`` is set.  Ticks use
            the same timeline as record ``ts`` values — a sharded ring
            rejects records older than its high-water clock, so a
            wall-clock ticker over synthetic timestamps would poison
            ingestion.
        own_engine: close the engine on :meth:`aclose` (the service
            took ownership).
        durability: optional :class:`~repro.durable.DurabilityConfig`
            (or bare WAL directory), attached to the engine.  Appends
            happen on the engine thread, write-ahead of each apply —
            *behind* the coalescing queue deliberately: the drain's
            coalesce/presort step changes arrival order under bounded
            lateness, so only the engine-side log captures exactly what
            was applied and replays bit-identically.  The queue itself
            is volatile; a ``sync=True`` producer's acknowledgement
            implies its batch is durable.  To serve a *recovered*
            engine, build it with :func:`~repro.durable.recover_engine`
            (which re-attaches the log) and pass ``durability=None``
            here.

    Use as an async context manager, or call :meth:`start` /
    :meth:`aclose` explicitly.
    """

    def __init__(
        self,
        engine,
        *,
        queue_size: int = 64,
        tick_interval: Optional[float] = None,
        clock=None,
        own_engine: bool = False,
        durability=None,
    ):
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if tick_interval is not None:
            if tick_interval <= 0.0:
                raise ValueError("tick_interval must be positive")
            if engine.window is None or not engine.window.timed:
                raise ValueError(
                    "tick_interval requires an engine with a time-based window"
                )
            if clock is None:
                raise ValueError("tick_interval requires a clock")
        self.engine = engine
        if durability is not None:
            engine.attach_durability(durability, require_empty=True)
        self.tick_interval = tick_interval
        self.clock = clock
        self.own_engine = own_engine
        self.last_error: Optional[str] = None
        self._queue_size = queue_size
        self._queue: Optional[asyncio.Queue] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._tick_task: Optional[asyncio.Task] = None
        self._pending_futs: set = set()  # unresolved sync-batch futures
        self._subscribers: List[AsyncSubscription] = []
        self._closed = False
        self._started = False
        self._enqueued_batches = 0
        self._coalesced_batches = 0
        self._ingested_records = 0
        self._ingest_errors = 0
        self._ticks = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "AsyncHullService":
        """Bind to the running loop and start the drain/tick tasks."""
        if self._started:
            return self
        self._started = True
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self._queue_size)
        # One worker thread serialises *all* engine access: the loop
        # stays responsive and the engine needs no thread-safety.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._drain_task = asyncio.ensure_future(self._drain_loop())
        if self.tick_interval is not None:
            self._tick_task = asyncio.ensure_future(self._tick_loop())
        return self

    async def __aenter__(self) -> "AsyncHullService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    async def aclose(self, final_snapshot=None) -> None:
        """Graceful shutdown: stop intake, drain everything enqueued
        through the engine, optionally write a final snapshot, stop
        the background tasks (idempotent)."""
        if self._closed or not self._started:
            self._closed = True
            return
        self._closed = True  # new puts are refused from here on
        if self._drain_task is not None and self._drain_task.done():
            # The drain task died externally — e.g. Python 3.10's
            # asyncio.run cancels *every* task on Ctrl-C, not just the
            # main one.  join() would hang with no consumer; apply the
            # remaining accepted batches inline instead.
            while not self._queue.empty():
                item = self._queue.get_nowait()
                try:
                    await self._replay_individually([item])
                finally:
                    self._queue.task_done()
        else:
            await self._queue.join()  # drain what was accepted
        for task in (self._tick_task, self._drain_task):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        # A producer suspended in put() during the drain may have
        # landed a straggler batch after join() resolved; with the
        # drain task gone nothing would ever consume it (a later
        # join() would hang forever).  Sweep, count, and fail any
        # waiting sync producers.
        while not self._queue.empty():
            *_, fut = self._queue.get_nowait()
            self._queue.task_done()
            self._ingest_errors += 1
            self.last_error = "RuntimeError: batch enqueued during close"
            self._resolve(fut, RuntimeError("batch enqueued during close"))
        # A batch the drain task had already dequeued when it was
        # cancelled leaves its sync future unresolved (task_done ran in
        # the drain's finally); fail every remaining waiter so no
        # producer hangs on a closed service.
        for fut in list(self._pending_futs):
            self._resolve(fut, RuntimeError("service closed"))
        for sub in list(self._subscribers):
            if sub._handle is not None:
                await self._run(sub._handle.cancel)
                sub._handle = None
        self._subscribers.clear()
        if final_snapshot is not None:
            await self._run(self.engine.snapshot, final_snapshot)
        if self.own_engine:
            await self._run(self.engine.close)
        self._executor.shutdown(wait=True)

    # -- engine-thread plumbing --------------------------------------------

    def _check_started(self) -> None:
        if not self._started or self._loop is None:
            raise RuntimeError(
                "AsyncHullService is not started; use 'async with' or "
                "await service.start()"
            )

    async def _run(self, fn, *args, **kwargs):
        """Run one engine operation on the dedicated engine thread."""
        self._check_started()
        if kwargs:
            call = lambda: fn(*args, **kwargs)  # noqa: E731
        else:
            call = lambda: fn(*args)  # noqa: E731
        # run_in_executor does not propagate contextvars; carry them
        # over explicitly so trace spans opened on the loop parent the
        # engine-thread work (and the shard hops beneath it).
        ctx = contextvars.copy_context()
        return await self._loop.run_in_executor(
            self._executor, lambda: ctx.run(call)
        )

    # -- ingestion ---------------------------------------------------------

    async def ingest(self, records: Iterable[tuple], sync: bool = False) -> int:
        """Enqueue ``(key, x, y[, ts])`` records; returns the record
        count accepted.  Shape/mixed-ts/finiteness problems raise here,
        synchronously to the producer; engine-level rejections at drain
        time (e.g. a stale timestamp) are counted in
        :meth:`service_stats` — or, with ``sync=True``, raised to this
        caller once its batch has actually gone through the engine."""
        windowed = self.engine.window is not None
        keys, pts, ts_list = split_records(records, windowed=windowed)
        return await self.ingest_arrays(keys, pts, ts=ts_list, sync=sync)

    async def ingest_arrays(
        self,
        keys: Sequence[Hashable],
        points,
        ts=None,
        sync: bool = False,
        on_result=None,
    ) -> int:
        """Enqueue a parallel key sequence and ``(n, 2)`` block.

        Validates shapes and finiteness producer-side, then awaits a
        slot on the bounded queue (the backpressure point).  The drain
        task coalesces whatever is queued into one engine batch.

        ``sync=True`` additionally waits until *this* batch has been
        applied by the engine (queue order preserved) and re-raises
        its rejection here — the precise per-producer error channel;
        fire-and-forget producers instead watch
        :meth:`service_stats`.

        ``on_result`` is the non-blocking attribution hook the same
        per-batch future drives: a callable invoked on the event loop
        once *this* batch has gone through the engine, with ``None``
        on success or the rejection exception — a front door (e.g.
        :mod:`repro.gateway`) can attribute drain-time rejections to
        the producer that enqueued the batch without paying ``sync``'s
        round-trip latency.
        """
        self._check_started()
        if self._closed:
            raise RuntimeError("AsyncHullService is closed")
        if ts is not None and self.engine.window is None:
            raise ValueError("ts requires a windowed engine")
        arr = as_point_array(points)
        key_arr = as_key_array(keys, len(arr))
        ts_arr = as_ts_array(ts, len(arr))
        if (
            ts_arr is None
            and len(arr)
            and self.engine.window is not None
            and self.engine.window.timed
        ):
            raise ValueError("time-based windows require a ts on every record")
        if ts_arr is not None and not np.isfinite(ts_arr).all():
            raise ValueError("ts must be finite")
        if len(arr) == 0:
            if on_result is not None:
                on_result(None)
            return 0
        fut = (
            self._loop.create_future()
            if sync or on_result is not None
            else None
        )
        if fut is not None:
            self._pending_futs.add(fut)
            if on_result is not None:
                # The callback retrieves the exception, so a fire-and-
                # forget producer's rejection is both attributed and
                # never logged as an unretrieved future error.
                fut.add_done_callback(
                    lambda f: on_result(f.exception())
                )
        await self._queue.put(
            (key_arr, arr, ts_arr, time.perf_counter(), fut)
        )
        self._enqueued_batches += 1
        if sync:
            await fut  # re-raises the engine's rejection, if any
        return len(arr)

    async def flush(self) -> None:
        """Barrier: resolve once everything enqueued so far has gone
        through the engine (errors included — check ``last_error``)."""
        self._check_started()
        await self._queue.join()

    async def _drain_loop(self) -> None:
        while True:
            batch = [await self._queue.get()]
            while not self._queue.empty():
                batch.append(self._queue.get_nowait())
            t_deq = time.perf_counter()
            for item in batch:
                OBS.SERVE_QUEUE_WAIT_SECONDS.observe(t_deq - item[3])
            try:
                # Coalescing never crosses a timestamped/untimestamped
                # boundary (legal mix on count-windowed engines):
                # dropping or fabricating ts would diverge from
                # one-by-one ingestion.
                runs: list = []
                for item in batch:
                    if runs and (runs[-1][-1][2] is None) == (
                        item[2] is None
                    ):
                        runs[-1].append(item)
                    else:
                        runs.append([item])
                for run in runs:
                    key_arr, arr, ts_arr = self._coalesce(
                        [(k, a, t) for k, a, t, _, _ in run]
                    )
                    key_arr, arr, ts_arr = self._presort(
                        key_arr, arr, ts_arr
                    )
                    OBS.SERVE_COALESCED_RECORDS.observe(len(arr))
                    try:
                        with span(
                            "serve.ingest", records=len(arr), batches=len(run)
                        ):
                            await self._run(
                                self.engine.ingest_arrays,
                                key_arr,
                                arr,
                                ts=ts_arr,
                            )
                        self._ingested_records += len(arr)
                        if len(run) > 1:
                            self._coalesced_batches += len(run) - 1
                        for *_, fut in run:
                            self._resolve(fut)
                    except asyncio.CancelledError:
                        raise
                    except Exception:  # noqa: BLE001 - boundary
                        # The merged run was rejected.  Engine
                        # rejections are atomic, so replay the
                        # constituent batches one by one: only the
                        # genuinely bad ones are lost, exactly as if
                        # coalescing had never happened.
                        await self._replay_individually(run)
            finally:
                for _ in batch:
                    self._queue.task_done()

    def _presort(self, key_arr, arr, ts_arr):
        """Stable-sort a timestamped run by event time before it
        reaches a bounded-lateness engine.

        The coalescing queue is the natural reorder point the ROADMAP
        called for: a burst of out-of-order producer batches leaves
        here as one non-decreasing run, so the engine buffers less and
        releases sooner.  Sorting is strictly permissive — a record
        can only be judged late against *older* arrivals, so nothing
        sorted here is ever dropped that one-by-one delivery would
        have kept — and it never runs under the strict policy, where
        producer order is the contract.
        """
        window = self.engine.window
        if (
            ts_arr is None
            or window is None
            or getattr(window, "max_delay", None) is None
            or len(ts_arr) < 2
        ):
            return key_arr, arr, ts_arr
        order = np.argsort(ts_arr, kind="stable")
        if (order[1:] > order[:-1]).all():
            return key_arr, arr, ts_arr  # already sorted: skip the copies
        return key_arr[order], arr[order], ts_arr[order]

    async def _replay_individually(self, run) -> None:
        for key_arr, arr, ts_arr, _t_enq, fut in run:
            key_arr, arr, ts_arr = self._presort(key_arr, arr, ts_arr)
            try:
                await self._run(
                    self.engine.ingest_arrays, key_arr, arr, ts=ts_arr
                )
                self._ingested_records += len(arr)
                self._resolve(fut)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - service boundary
                # Record the rejection and keep serving; a sync
                # producer waiting on its batch future gets the exact
                # exception, fire-and-forget producers see the counter.
                self._ingest_errors += 1
                self.last_error = f"{type(exc).__name__}: {exc}"
                self._resolve(fut, exc)

    def _resolve(self, fut, exc: Optional[BaseException] = None) -> None:
        if fut is None:
            return
        self._pending_futs.discard(fut)
        if fut.done():
            return
        if exc is None:
            fut.set_result(True)
        else:
            fut.set_exception(exc)

    @staticmethod
    def _coalesce(batch):
        """Concatenate queued ``(keys, points, ts)`` batches into one.

        Order is preserved, so per-key results are bit-identical to
        ingesting the batches one by one; a timestamped run of batches
        concatenates to one valid (still non-decreasing) run.  The
        caller guarantees a run is homogeneously timestamped or
        homogeneously bare.
        """
        if len(batch) == 1:
            return batch[0]
        key_parts, pts_parts, ts_parts = zip(*batch)
        ts_arr = (
            None if ts_parts[0] is None else np.concatenate(ts_parts)
        )
        if len({p.dtype for p in key_parts}) == 1:
            key_arr = np.concatenate(key_parts)
        else:
            merged = []
            for p in key_parts:
                merged.extend(p.tolist())
            key_arr = np.empty(len(merged), dtype=object)
            key_arr[:] = merged
        return key_arr, np.concatenate(pts_parts), ts_arr

    # -- time --------------------------------------------------------------

    async def advance_time(self, now: float) -> int:
        """Advance the engine's window clock (see the engines'
        ``advance_time``); expired-bucket notifications reach async
        subscribers like any batch."""
        return await self._run(self.engine.advance_time, float(now))

    async def resize(self, shards: int) -> dict:
        """Resize a sharded engine's ring online (see
        :meth:`~repro.shard.ShardedEngine.resize`).  Runs on the engine
        thread like any other engine touch, so in-flight batches are
        never interleaved with the migration — producers keep enqueuing
        throughout, and everything queued applies right after on the
        new layout."""
        resize = getattr(self.engine, "resize", None)
        if resize is None:
            raise ValueError("resize requires a sharded engine")
        return await self._run(resize, int(shards))

    async def _tick_loop(self) -> None:
        while True:
            await asyncio.sleep(self.tick_interval)
            try:
                await self._run(self.engine.advance_time, self.clock())
                self._ticks += 1
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - service boundary
                self._ingest_errors += 1
                self.last_error = f"{type(exc).__name__}: {exc}"

    # -- queries -----------------------------------------------------------

    async def keys(self) -> List[Hashable]:
        return await self._run(self.engine.keys)

    async def hull(self, key: Hashable):
        return await self._run(self.engine.hull, key)

    async def merged_hull(self, keys=None):
        return await self._run(self.engine.merged_hull, keys)

    async def diameter(self, keys=None) -> float:
        return await self._run(self.engine.diameter, keys)

    async def width(self, keys=None) -> float:
        return await self._run(self.engine.width, keys)

    async def stats(self):
        return await self._run(self.engine.stats)

    async def snapshot_state(self) -> dict:
        return await self._run(self.engine.snapshot_state)

    async def snapshot(self, path):
        return await self._run(self.engine.snapshot, path)

    async def summary_state(self, key: Hashable) -> Optional[dict]:
        """One key's summary as a :mod:`repro.streams.io` state doc
        (None when the key is not live) — the per-key fetch the TCP
        ``summary_state`` verb serves, without creating the key."""
        from ..streams.io import summary_state as _summary_state

        def fetch():
            summary = self.engine.get(key)
            return None if summary is None else _summary_state(summary)

        return await self._run(fetch)

    async def late_drops(self) -> dict:
        """Per-key later-than-watermark drop counts from the engine
        (empty under the strict time policy)."""
        return await self._run(self.engine.late_drops)

    def service_stats(self) -> dict:
        """Front-door counters (the engine's own ``stats()`` is async).

        ``late_dropped`` mirrors the engine's count-and-drop total for
        bounded-lateness windows; it is a plain counter read (no
        engine-thread hop), so it may trail an in-flight drain by one
        batch.
        """
        queue_depth = self._queue.qsize() if self._queue else 0
        OBS.SERVE_QUEUE_DEPTH.set(queue_depth)
        OBS.SERVE_SUBSCRIBERS.set(len(self._subscribers))
        wal = getattr(self.engine, "wal", None)
        return {
            "enqueued_batches": self._enqueued_batches,
            "coalesced_batches": self._coalesced_batches,
            "ingested_records": self._ingested_records,
            "ingest_errors": self._ingest_errors,
            "late_dropped": int(getattr(self.engine, "late_dropped", 0)),
            "wal_seq": wal.last_seq if wal is not None else None,
            "ticks": self._ticks,
            "subscribers": len(self._subscribers),
            "queue_depth": queue_depth,
            "last_error": self.last_error,
            "obs": obs_registry().collect(),
        }

    async def metrics_text(self) -> str:
        """The whole stack's metrics in Prometheus text exposition
        format (0.0.4).

        Asks the engine for ``stats()`` first: on a sharded ring that
        refreshes the per-shard gauges and folds every worker's
        registry snapshot into the parent's, so the rendered page shows
        the full cross-process picture — then refreshes this facade's
        own gauges via :meth:`service_stats`.
        """
        self.service_stats()  # refresh serve-tier gauges first
        stats = await self.stats()
        obs = getattr(stats, "obs", None)
        if obs:
            return render_snapshot(obs)
        return render_snapshot(obs_registry().collect())

    # -- standing queries --------------------------------------------------

    async def subscribe(
        self,
        keys: Optional[Iterable[Hashable]] = None,
        maxsize: int = 256,
        key_filter=None,
    ) -> AsyncSubscription:
        """Bridge the engine's standing queries to an async consumer.

        The returned :class:`AsyncSubscription` receives every
        touched-key set the engine dispatches (ingest batches and
        window expiries), delivered on the event loop.

        ``key_filter`` is a predicate over single keys applied before
        delivery (a notification reduced to the empty set is not
        delivered at all) — the namespaced-subscription hook: a
        multi-tenant front door can watch exactly one tenant's key
        prefix without enumerating the keys up front.  It runs on the
        engine thread, so keep it cheap and side-effect free.
        """
        if maxsize < 1:
            raise ValueError("subscription maxsize must be >= 1")
        self._check_started()
        sub = AsyncSubscription(self, maxsize)
        loop = self._loop

        def on_touch(touched: Set[Hashable]) -> None:
            # Engine callbacks run on the engine thread; hop to the loop.
            if key_filter is not None:
                touched = {k for k in touched if key_filter(k)}
                if not touched:
                    return
            loop.call_soon_threadsafe(sub._push, touched)

        sub._handle = await self._run(
            self.engine.subscribe, on_touch, keys
        )
        self._subscribers.append(sub)
        return sub

    async def _cancel_subscription(self, sub: AsyncSubscription) -> None:
        if sub in self._subscribers:
            self._subscribers.remove(sub)
        if sub._handle is not None:
            await self._run(sub._handle.cancel)
            sub._handle = None

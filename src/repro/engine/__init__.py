"""Multi-stream ingestion engine.

Scales the single-summary streaming algorithms to the production shape:
thousands of keyed streams, batch-routed ``(key, x, y)`` records,
vectorised per-key ingestion, eviction/compaction hooks, standing-query
subscriptions, and JSON snapshot/restore.  See
:class:`~repro.engine.engine.StreamEngine`.
"""

from .engine import EngineStats, StreamEngine, Subscription

__all__ = ["StreamEngine", "EngineStats", "Subscription"]

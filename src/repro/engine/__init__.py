"""Multi-stream ingestion engine.

Scales the single-summary streaming algorithms to the production shape:
thousands of keyed streams, batch-routed ``(key, x, y)`` records,
vectorised per-key ingestion, eviction/compaction hooks, standing-query
subscriptions, and JSON snapshot/restore.  See
:class:`~repro.engine.engine.StreamEngine`.

The formal engine contract — the surface this tier shares with the
multi-process :class:`~repro.shard.ShardedEngine` so the two are
drop-in interchangeable — is :class:`~repro.engine.protocol.EngineProtocol`;
the hoisted routing/validation/query plumbing lives in
:mod:`repro.engine.common`.
"""

from .common import ExtentQueryAPI, SubscriberAPI, Subscription
from .engine import EngineStats, StreamEngine
from .protocol import PROTOCOL_MEMBERS, EngineProtocol
from .time import EventClock, ReorderBuffer, TimePolicy

__all__ = [
    "StreamEngine",
    "EngineStats",
    "Subscription",
    "EngineProtocol",
    "PROTOCOL_MEMBERS",
    "SubscriberAPI",
    "ExtentQueryAPI",
    "TimePolicy",
    "EventClock",
    "ReorderBuffer",
]

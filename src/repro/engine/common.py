"""Shared plumbing for every engine tier.

:class:`~repro.engine.engine.StreamEngine` (in-process) and
:class:`~repro.shard.engine.ShardedEngine` (multi-process) present the
same :class:`~repro.engine.protocol.EngineProtocol` surface, and the
logic that must not drift between them lives here:

* **standing queries** — :class:`Subscription` plus the
  :class:`SubscriberAPI` mixin (``subscribe`` / ``_notify``), with
  reentrancy-safe dispatch: callbacks may ``cancel()`` any subscription
  or ``subscribe()`` new ones mid-dispatch without corrupting the
  iteration (a subscription cancelled during dispatch never fires late,
  a subscription added during dispatch first fires on the *next*
  batch);
* **keyed routing** — :func:`split_records` normalises the record-tuple
  front door (3- vs 4-tuples, all-or-none timestamps, the clear error
  for timestamps on an unwindowed engine) and :func:`key_index_runs`
  groups a parallel key array into per-key index runs (one stable
  ``argsort`` for comparable dtypes, dict grouping for arbitrary
  hashables);
* **timestamp validation** — :func:`validate_ts_batch` applies the
  shared event-time policy with a tier-specific boundary: finite and
  non-decreasing under the strict default, finiteness only under a
  bounded-lateness :class:`~repro.engine.time.TimePolicy` (ordering is
  then the reorder layer's job, not an error);
* **query folds** — the :class:`ExtentQueryAPI` mixin derives
  ``merged_hull`` / ``diameter`` / ``width`` from ``merged_summary``,
  so every tier answers the Section 6 global queries identically;
* **snapshot headers** — :func:`check_snapshot_doc` validates the
  format/version header every engine snapshot carries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

import numpy as np

from ..geometry.vec import Point
from ..obs import metrics as _obs

__all__ = [
    "BaseStats",
    "Subscription",
    "SubscriberAPI",
    "ExtentQueryAPI",
    "EventTimeAPI",
    "split_records",
    "key_index_runs",
    "unique_key_inverse",
    "canonical_key_order",
    "validate_ts_batch",
    "check_snapshot_doc",
]


@dataclass
class BaseStats:
    """Counters shared by every engine tier's ``stats()`` document.

    ``EngineStats`` and ``ShardStats`` both derive from this so the shared
    fields — and the late/buffered repr suffix logic — cannot drift between
    the tiers (the PR 4 must-not-drift convention).  ``obs`` carries the
    tier's :meth:`repro.obs.Registry.collect` snapshot: for the shard tier
    it is the parent registry merged with every worker's, so one document
    holds the whole ring's metrics.
    """

    streams: int = 0
    points_ingested: int = 0
    batches_ingested: int = 0
    evictions: int = 0
    sample_points: int = 0
    buckets: int = 0
    bucket_merges: int = 0
    bucket_expiries: int = 0
    late_dropped: int = 0
    buffered: int = 0
    obs: Dict[str, dict] = field(default_factory=dict, repr=False)

    def _suffix(self) -> str:
        """The windowed/event-time tail both tiers append to ``__str__``."""
        out = ""
        if self.buckets or self.bucket_merges or self.bucket_expiries:
            out += (
                f" buckets={self.buckets} merges={self.bucket_merges}"
                f" expiries={self.bucket_expiries}"
            )
        if self.late_dropped or self.buffered:
            out += f" late={self.late_dropped} buffered={self.buffered}"
        return out


def canonical_key_order(key: Hashable) -> Tuple[str, str]:
    """A total order over arbitrary (possibly incomparable) keys.

    Global reductions fold per-key summaries in this order, so a
    merged answer depends only on *what* was ingested per key — never
    on batch interleaving, LRU touch order, or whether keys arrived as
    NumPy or Python values.  That is what makes results through the
    async/TCP front door bit-identical to direct synchronous calls.

    Keys with a deterministic value encoding (str/bytes/numbers/None
    and tuples thereof — everything the shard ring can route and a
    snapshot can store) order by that encoding, so the order is stable
    across processes and runs.  Exotic key objects fall back to
    ``repr``: still a total order, but identity-bearing reprs
    (``<Foo at 0x...>``) make it process-local, and equal reprs of
    distinct keys degrade to insertion order.
    """
    # Lazy import: the shard package imports the engine at module
    # import time; by query time the cycle is long resolved.
    from ..shard.hashing import _key_bytes

    try:
        token = _key_bytes(key).hex()
    except TypeError:
        token = repr(key)
    return (type(key).__name__, token)


class Subscription:
    """Handle for a standing-query callback (see
    :meth:`SubscriberAPI.subscribe`); call :meth:`cancel` to detach."""

    def __init__(
        self,
        owner: "SubscriberAPI",
        callback: Callable[[Set[Hashable]], None],
        keys: Optional[Set[Hashable]],
    ):
        self._owner = owner
        self.callback = callback
        self.keys = keys
        self.fired = 0

    def cancel(self) -> None:
        """Detach this subscription; no further notifications fire —
        including later in a dispatch already in flight."""
        self._owner._subscriptions = [
            s for s in self._owner._subscriptions if s is not self
        ]

    def _notify(self, touched: Set[Hashable]) -> None:
        relevant = touched if self.keys is None else touched & self.keys
        if relevant:
            self.fired += 1
            self.callback(relevant)


class SubscriberAPI:
    """Mixin: standing-query subscriptions over batch notifications.

    The host engine initialises ``self._subscriptions = []`` and calls
    :meth:`_notify` once per applied batch with the set of touched keys
    (and once per ``advance_time`` with the keys whose windows expired
    buckets).
    """

    _subscriptions: List[Subscription]

    def subscribe(
        self,
        callback: Callable[[Set[Hashable]], None],
        keys: Optional[Iterable[Hashable]] = None,
    ) -> Subscription:
        """Register ``callback(touched_keys)`` to fire after every batch
        that touches a subscribed key (all keys when ``keys`` is None).

        This is the engine half of the paper's standing queries: a
        subscriber re-evaluates its tracker predicates only when the
        hulls it watches may have moved.
        """
        sub = Subscription(self, callback, None if keys is None else set(keys))
        self._subscriptions.append(sub)
        return sub

    def _notify(self, touched: Set[Hashable]) -> None:
        # Snapshot the list, then re-check membership per subscription:
        # a callback may cancel any subscription (itself included) or
        # add new ones mid-dispatch.  Cancelled ones must not fire late;
        # fresh ones first see the next batch.
        for sub in tuple(self._subscriptions):
            if sub in self._subscriptions:
                sub._notify(touched)


class ExtentQueryAPI:
    """Mixin: global extent queries folded over ``merged_summary``.

    Any engine exposing ``merged_summary(keys)`` gets the Section 6
    global answers — the union hull, diameter, and width — with one
    shared definition, so the tiers cannot diverge on query semantics.
    Each call builds one merged reduction; callers wanting several
    answers from the same state should take ``merged_summary()`` once
    and run the query layer on it directly.
    """

    def merged_hull(
        self, keys: Optional[Iterable[Hashable]] = None
    ) -> List[Point]:
        """The all-keys (or selected-keys) approximate union hull."""
        return self.merged_summary(keys).hull()

    def diameter(self, keys: Optional[Iterable[Hashable]] = None) -> float:
        """Approximate diameter of the union of the selected streams
        (0.0 before any data) via the existing query layer."""
        from ..queries import diameter as diameter_query

        merged = self.merged_summary(keys)
        if not merged.hull():
            return 0.0
        return diameter_query(merged)

    def width(self, keys: Optional[Iterable[Hashable]] = None) -> float:
        """Approximate width of the union of the selected streams
        (0.0 before any data) via the existing query layer."""
        from ..queries import width as width_query

        merged = self.merged_summary(keys)
        if not merged.hull():
            return 0.0
        return width_query(merged)


class EventTimeAPI:
    """Mixin: the bounded-lateness event-time surface both tiers share.

    The host engine sets ``self._event_clock`` (an
    :class:`~repro.engine.time.EventClock`, or None under the strict
    policy) and ``self._late_drops`` (the per-key count-and-drop
    ledger) — the watermark translation and the late accounting then
    cannot drift between the tiers.  An engine may also set
    ``self._on_late`` (the dead-letter hook): every late batch slice is
    then handed to the callback as ``(key, points, ts, watermark)``
    before being dropped, with the hand-off counted in
    ``repro_dead_letter_records_total``.
    """

    _late_drops: dict
    _on_late: Optional[Callable] = None

    @property
    def watermark(self) -> Optional[float]:
        """The bounded-lateness watermark — the event time at or
        before which the stream is final (None under the strict policy
        or before any event time was observed)."""
        clock = self._event_clock
        if clock is None or clock.watermark == -math.inf:
            return None
        return clock.watermark

    def late_drops(self) -> dict:
        """Per-key counts of records dropped for arriving later than
        the watermark (empty under the strict policy — there, a stale
        timestamp is an error, never a silent drop)."""
        return dict(self._late_drops)

    @property
    def late_dropped(self) -> int:
        """Total records dropped as later-than-watermark."""
        return sum(self._late_drops.values())

    def _record_late(
        self, key: Hashable, count: int, points=None, ts=None
    ) -> None:
        """Account one key's late slice; dead-letter it if hooked.

        ``points``/``ts`` are the raw dropped records (any array-likes);
        they are only materialised as arrays when a hook is installed,
        so the count-only default pays nothing beyond the counters.
        """
        self._late_drops[key] = self._late_drops.get(key, 0) + count
        _obs.LATE_DROPPED_RECORDS.inc(count)
        hook = self._on_late
        if hook is None:
            return
        pts = (
            np.asarray(points, dtype=np.float64).reshape(-1, 2)
            if points is not None
            else np.empty((0, 2), dtype=np.float64)
        )
        ts_run = (
            np.asarray(ts, dtype=np.float64)
            if ts is not None
            else np.empty(0, dtype=np.float64)
        )
        hook(key, pts, ts_run, self.watermark)
        _obs.DEAD_LETTER_RECORDS.inc(count)


def split_records(
    records: Iterable[tuple], *, windowed: bool
) -> Tuple[List[Hashable], List[Tuple[float, float]], Optional[List[float]]]:
    """Normalise a ``(key, x, y[, ts])`` record iterable.

    Returns parallel ``(keys, points, ts)`` lists (``ts`` is None for an
    untimestamped batch).  Point values are passed through untouched —
    callers validate them vectorised via
    :func:`~repro.core.batch.as_point_array`, so one malformed record
    still rejects the whole batch before any summary is touched.

    Raises:
        ValueError: on 4-tuples for an unwindowed engine (the classic
            "ts requires a windowed engine" mistake gets a clear
            message instead of an unpacking error) and on batches that
            mix timestamped and untimestamped records.
    """
    keys: List[Hashable] = []
    pts: List[Tuple[float, float]] = []
    ts_list: List[float] = []
    saw_ts = saw_bare = False
    if not windowed:
        try:
            for key, x, y in records:
                keys.append(key)
                pts.append((x, y))
        except ValueError as exc:
            raise ValueError(
                "records must be (key, x, y) 3-tuples; ts requires a "
                "windowed engine"
            ) from exc
        return keys, pts, None
    for rec in records:
        keys.append(rec[0])
        pts.append((rec[1], rec[2]))
        # A 4-tuple with ts=None counts as untimestamped — callers that
        # always build 4-tuples can pass None on count windows.
        if len(rec) > 3 and rec[3] is not None:
            saw_ts = True
            ts_list.append(rec[3])
        else:
            saw_bare = True
    if saw_ts and saw_bare:
        raise ValueError(
            "mixed timestamped and untimestamped records in one batch"
        )
    return keys, pts, (ts_list if saw_ts else None)


def key_index_runs(
    key_arr: np.ndarray,
) -> Iterator[Tuple[Hashable, np.ndarray]]:
    """Group a parallel key array into per-key index runs.

    Yields ``(key, indices)`` with indices in stream order per key —
    the grouping primitive behind both tiers' array front doors.
    Comparable dtypes group with one stable ``argsort`` (no Python-level
    loop over records); object arrays (arbitrary, possibly incomparable
    hashables) group through a dict.  NumPy scalar keys are unboxed to
    native Python values so routing and storage see one key identity.
    """
    if key_arr.dtype == object:
        index_map: dict = {}
        for i, k in enumerate(key_arr.tolist()):
            index_map.setdefault(k, []).append(i)
        for k, idx in index_map.items():
            yield k, np.asarray(idx)
        return
    order = np.argsort(key_arr, kind="stable")
    sorted_keys = key_arr[order]
    boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(key_arr)]))
    for s, e in zip(starts, ends):
        key = sorted_keys[s]
        if isinstance(key, np.generic):
            key = key.item()  # native str/int, not a NumPy scalar
        yield key, order[s:e]


def unique_key_inverse(
    key_arr: np.ndarray,
) -> Tuple[List[Hashable], np.ndarray]:
    """The batch's distinct keys plus an inverse index array.

    Returns ``(uniq_keys, inverse)`` with ``uniq_keys`` native Python
    values (NumPy scalars unboxed, like :func:`key_index_runs`) and
    ``inverse[i]`` the position of record ``i``'s key in ``uniq_keys``
    — the fully vectorised grouping form: per-key aggregates become
    ``np.bincount(inverse, ...)`` and per-record lookups become one
    fancy index, with no Python-level loop over records.  Comparable
    dtypes go through one ``np.unique`` pass; object arrays (arbitrary
    hashables) group through a dict in first-appearance order.  Used by
    the shard tier's routing hot path, which maps ``uniq_keys`` through
    the hash ring once and broadcasts shard ids with the inverse.
    """
    if key_arr.dtype == object:
        index_of: dict = {}
        inverse = np.empty(len(key_arr), dtype=np.int64)
        for i, k in enumerate(key_arr.tolist()):
            inverse[i] = index_of.setdefault(k, len(index_of))
        return list(index_of), inverse
    uniq, inverse = np.unique(key_arr, return_inverse=True)
    return uniq.tolist(), inverse.astype(np.int64, copy=False)


def validate_ts_batch(
    ts_arr: np.ndarray,
    last: Optional[float],
    label: str,
    policy=None,
) -> None:
    """Shared timestamp validation, parameterised by the time policy.

    Under the default strict policy (``policy`` None or
    ``TimePolicy.strict()``): finite and non-decreasing, starting no
    earlier than ``last`` (the tier's boundary — a key's live summary
    clock, or a ring's high-water clock).  Under a bounded-lateness
    policy (:class:`~repro.engine.time.TimePolicy`), ordering is no
    longer an *error* — out-of-order arrivals are the point, and the
    reorder buffer / late-drop accounting own them — so only
    finiteness is enforced here.  ``label`` prefixes the error so the
    offending key/ring is named.

    Raises:
        ValueError: on non-finite timestamps; on decreasing timestamps
            under the strict policy.
    """
    if len(ts_arr) == 0:
        return
    if not np.isfinite(ts_arr).all():
        raise ValueError(f"{label}ts must be finite")
    if policy is not None and policy.bounded:
        return
    if (np.diff(ts_arr) < 0.0).any():
        raise ValueError(f"{label}ts must be non-decreasing within a batch")
    if last is not None and ts_arr[0] < last:
        raise ValueError(
            f"{label}ts must be non-decreasing: got {ts_arr[0]} after {last}"
        )


def check_snapshot_doc(doc: dict, fmt: str, version: int, what: str) -> None:
    """Validate the format/version header of an engine snapshot doc.

    Raises:
        ValueError: on a foreign format or unsupported version.
    """
    if doc.get("format") != fmt:
        raise ValueError(f"not {what}: {doc.get('format')!r}")
    if doc.get("version") != version:
        raise ValueError(
            f"unsupported {what} version {doc.get('version')!r}"
        )

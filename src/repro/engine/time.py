"""Event time for out-of-order streams: policies, watermarks, reordering.

The window layer (PR 3) enforces strictly monotonic event time — the
right contract for replayed logs, but real sensor/telemetry feeds
deliver records *out of order* within some bounded network/queueing
delay.  This module is the single place that time model lives, shared
by every tier:

* :class:`TimePolicy` — the policy as data: ``strict()`` (the default;
  any non-monotonic timestamp is rejected, exactly the pre-existing
  behaviour) or ``bounded_lateness(max_delay)`` (records may arrive up
  to ``max_delay`` time units after newer records; later than that they
  are *counted and dropped*, never silently applied).
* :class:`EventClock` — the watermark state machine.  The watermark is
  ``max event time observed - max_delay``: everything at or before it
  is final (no in-bound record can still arrive there), so buffered
  records up to the watermark can be released to the strictly-monotonic
  window path, and window buckets may expire only up to the watermark.
* :class:`ReorderBuffer` — holds admitted (point, ts) records per key
  until the watermark passes them, then releases them as one stably
  ts-sorted run.  Downstream, :class:`~repro.window.WindowedHullSummary`
  stays untouched and bit-exact: it only ever sees non-decreasing
  timestamps.

**Determinism.**  Lateness is judged record-by-record in arrival order
against the watermark induced by *preceding* arrivals (vectorised as a
prefix maximum), so whether a record is late never depends on batch
boundaries, key grouping, or which newer records share its batch.
Released runs are stable sorts by ts, so for a stream with distinct
timestamps any arrival order shuffled within ``max_delay`` replays the
exact sorted stream into the summaries — the bit-identical-parity
property the engines and the serving layer advertise.  Ties are
released in arrival order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["TimePolicy", "EventClock", "ReorderBuffer", "late_split"]


@dataclass(frozen=True)
class TimePolicy:
    """How an engine treats event-time order (policy as data).

    ``max_delay is None`` means strict monotonic event time — the
    default, and the only legal policy for count windows and
    unwindowed engines.  A finite positive ``max_delay`` means bounded
    lateness: records are admitted while they are no more than
    ``max_delay`` behind the newest event time seen, buffered, and
    applied in sorted order once the watermark passes them.
    """

    max_delay: Optional[float] = None

    def __post_init__(self):
        if self.max_delay is not None and not (
            math.isfinite(self.max_delay) and self.max_delay > 0.0
        ):
            raise ValueError("max_delay must be positive and finite")

    @classmethod
    def strict(cls) -> "TimePolicy":
        """Strictly monotonic event time (reject regressions)."""
        return cls(max_delay=None)

    @classmethod
    def bounded_lateness(cls, max_delay: float) -> "TimePolicy":
        """Admit records up to ``max_delay`` behind the newest event."""
        return cls(max_delay=float(max_delay))

    @property
    def bounded(self) -> bool:
        """True when this policy buffers/reorders (non-strict)."""
        return self.max_delay is not None


def late_split(
    ts_arr: np.ndarray, max_ts: Optional[float], max_delay: float
) -> Tuple[np.ndarray, float]:
    """Split a batch into in-bound and late records, in arrival order.

    Returns ``(late_mask, new_max_ts)``.  ``late_mask[i]`` is True when
    record ``i`` arrived more than ``max_delay`` behind the maximum
    event time of everything that *preceded* it (earlier batches —
    ``max_ts`` — plus earlier records of this batch, via a prefix
    maximum).  Judging against preceding arrivals only is what makes
    the verdict independent of batch boundaries: a record never becomes
    late because a newer record happened to share its batch.
    """
    prev = -math.inf if max_ts is None else max_ts
    # Prefix max *before* each record: shift the running max right by one.
    run = np.maximum.accumulate(np.concatenate(([prev], ts_arr[:-1])))
    late = ts_arr < run - max_delay
    return late, float(max(prev, ts_arr.max()))


class EventClock:
    """Watermark state for one bounded-lateness engine.

    Tracks the maximum event time observed (inserts, batches, and
    ``advance_time`` heartbeats all count) and derives the watermark
    ``max_ts - max_delay``.  The sharded tier computes this parent-side
    and ships the resulting watermark to its workers, so cross-shard
    release order is deterministic; a worker's clock then only follows
    the watermarks it is handed (:meth:`observe_watermark`).
    """

    __slots__ = ("max_delay", "max_ts", "watermark")

    def __init__(self, max_delay: float):
        self.max_delay = float(max_delay)
        self.max_ts: Optional[float] = None
        self.watermark: float = -math.inf

    def observe(self, new_max_ts: float) -> float:
        """Fold a newly observed maximum event time; returns the (never
        decreasing) watermark."""
        if self.max_ts is None or new_max_ts > self.max_ts:
            self.max_ts = new_max_ts
        self.watermark = max(self.watermark, self.max_ts - self.max_delay)
        return self.watermark

    def peek(self, new_max_ts: float) -> float:
        """The watermark :meth:`observe` *would* produce, without
        committing anything — what the shard parent ships with a batch
        before knowing whether routing will succeed (a rejected batch
        must not advance the clock)."""
        return max(self.watermark, new_max_ts - self.max_delay)

    def observe_watermark(self, watermark: float) -> float:
        """Fold an externally computed watermark (a shard worker
        trusting its parent's global clock)."""
        self.watermark = max(self.watermark, watermark)
        if self.max_ts is None or self.watermark + self.max_delay > self.max_ts:
            self.max_ts = self.watermark + self.max_delay
        return self.watermark

    def to_doc(self) -> Dict:
        """JSON-compatible state for engine snapshots."""
        return {
            "max_ts": self.max_ts,
            "watermark": (
                None if self.watermark == -math.inf else self.watermark
            ),
        }

    def load_doc(self, doc: Dict) -> None:
        max_ts = doc.get("max_ts")
        self.max_ts = float(max_ts) if max_ts is not None else None
        wm = doc.get("watermark")
        self.watermark = float(wm) if wm is not None else -math.inf


class ReorderBuffer:
    """Holds one key's admitted records until the watermark passes them.

    Records arrive as ``(points, ts)`` array chunks in arrival order;
    :meth:`release` hands back everything with ``ts <= watermark`` as
    one stably ts-sorted run (arrival order breaks ties) and keeps the
    rest.  Because admission requires ``ts >= watermark`` and the
    watermark never decreases, every released run starts at or after
    the end of the previous one — the concatenation of releases is a
    globally non-decreasing sequence, which is exactly what the strict
    monotonic window path downstream requires.
    """

    __slots__ = ("_pts", "_ts", "_size", "_min_ts")

    def __init__(self):
        self._pts: List[np.ndarray] = []
        self._ts: List[np.ndarray] = []
        self._size = 0
        self._min_ts = math.inf  # cheapest releasable ts (cached)

    def __len__(self) -> int:
        return self._size

    def add(self, pts: np.ndarray, ts: np.ndarray) -> None:
        """Append an arrival-order chunk of admitted records."""
        if len(pts):
            self._pts.append(np.asarray(pts, dtype=np.float64))
            ts = np.asarray(ts, dtype=np.float64)
            self._ts.append(ts)
            self._size += len(pts)
            self._min_ts = min(self._min_ts, float(ts.min()))

    def release(
        self, watermark: float
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Remove and return the ``(points, ts)`` run with
        ``ts <= watermark``, stably sorted by ts (None when nothing is
        releasable).  The common no-release probe — a deep backlog the
        watermark has not reached — is O(1) via the cached minimum, so
        per-batch release checks never pay for the backlog size; the
        kept remainder is a single sorted chunk, so repeat sorts run
        on mostly-sorted input."""
        if not self._size or self._min_ts > watermark:
            return None
        ts = np.concatenate(self._ts) if len(self._ts) > 1 else self._ts[0]
        pts = np.concatenate(self._pts) if len(self._pts) > 1 else self._pts[0]
        order = np.argsort(ts, kind="stable")
        ts = ts[order]
        pts = pts[order]
        cut = int(np.searchsorted(ts, watermark, side="right"))
        if cut < len(ts):
            self._pts = [pts[cut:]]
            self._ts = [ts[cut:]]
            self._size = len(ts) - cut
            self._min_ts = float(ts[cut])
        else:
            self._pts = []
            self._ts = []
            self._size = 0
            self._min_ts = math.inf
        return pts[:cut], ts[:cut]

    def to_doc(self) -> Dict:
        """JSON-compatible pending state (arrival order preserved)."""
        if not self._size:
            return {"points": [], "ts": []}
        pts = np.concatenate(self._pts)
        ts = np.concatenate(self._ts)
        return {
            "points": [[float(x), float(y)] for x, y in pts],
            "ts": [float(t) for t in ts],
        }

    @classmethod
    def from_doc(cls, doc: Dict) -> "ReorderBuffer":
        buf = cls()
        pts = doc.get("points", [])
        if pts:
            buf.add(
                np.asarray(pts, dtype=np.float64),
                np.asarray(doc.get("ts", []), dtype=np.float64),
            )
        return buf

"""The engine contract both tiers implement.

:class:`EngineProtocol` is the formal shape of "a keyed hull engine":
the in-process :class:`~repro.engine.engine.StreamEngine` and the
multi-process :class:`~repro.shard.engine.ShardedEngine` both satisfy
it, so callers — the CLI, the examples, the benchmarks, and above all
the :mod:`repro.serve` asyncio front door — are written once against
the protocol and take either tier (windowed or not) as a drop-in.

The contract, grouped by concern:

* **ingestion** — ``insert`` (one record), ``ingest`` (record tuples),
  ``ingest_arrays`` (parallel keys + ``(n, 2)`` block); windowed
  engines accept per-record ``ts`` and reject malformed batches
  atomically (no key touched on failure);
* **time** — ``advance_time(now)`` expires stale window buckets with
  no new data (ValueError on engines without a time-based window);
  under a bounded-lateness window policy (see :mod:`repro.engine.time`)
  it doubles as the event-time heartbeat that advances the watermark
  and flushes the reorder buffers, and ``watermark`` /
  ``late_drops()`` expose the policy's state and count-and-drop
  accounting;
* **keyed queries** — ``keys``, ``__len__``, ``hull(key)``,
  ``summary(key)`` (created lazily on first touch; the sharded tier
  returns a detached copy of the worker-owned state);
* **global queries** — ``merged_summary`` folds the selected live
  streams into one summary of the base scheme; ``merged_hull`` /
  ``diameter`` / ``width`` derive from it (see
  :class:`~repro.engine.common.ExtentQueryAPI`);
* **standing queries** — ``subscribe(callback, keys=None)`` fires after
  every batch with the touched key set (and after ``advance_time``
  with the keys whose windows expired);
* **persistence** — ``snapshot_state()`` returns the engine's full
  JSON-compatible state, ``snapshot(path)`` writes it; every tier also
  offers ``from_snapshot_state`` / ``restore`` constructors (their
  signatures are tier-specific: the stream tier takes a factory, the
  sharded tier carries its spec in the document);
* **bookkeeping / lifecycle** — ``stats()`` (an object with at least
  ``streams`` / ``points_ingested`` / ``batches_ingested`` /
  ``evictions`` / ``sample_points`` and the window bucket counters),
  ``close()``, and context-manager use.

``isinstance(engine, EngineProtocol)`` checks structurally (the class
is ``runtime_checkable``); the behavioural half of the contract —
identical results and identical error behaviour across tiers — is
enforced by ``tests/engine/test_protocol_conformance.py``.
"""

from __future__ import annotations

from pathlib import Path
from typing import (
    Hashable,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..core.base import HullSummary
from ..geometry.vec import Point

__all__ = ["EngineProtocol", "PROTOCOL_MEMBERS"]


#: Every member the conformance suite checks for on both tiers.
PROTOCOL_MEMBERS: Tuple[str, ...] = (
    "window",
    "insert",
    "ingest",
    "ingest_arrays",
    "advance_time",
    "keys",
    "__len__",
    "hull",
    "summary",
    "merged_summary",
    "merged_hull",
    "diameter",
    "width",
    "watermark",
    "late_drops",
    "subscribe",
    "stats",
    "snapshot_state",
    "snapshot",
    "close",
    "__enter__",
    "__exit__",
)


@runtime_checkable
class EngineProtocol(Protocol):
    """Structural type for a keyed hull engine (either tier)."""

    @property
    def window(self):
        """The engine's :class:`~repro.window.WindowConfig`, or None."""
        ...

    # -- ingestion ---------------------------------------------------------

    def insert(
        self, key: Hashable, x: float, y: float, ts: Optional[float] = None
    ) -> bool:
        """Route one record; True if the key's summary changed."""
        ...

    def ingest(self, records: Iterable[tuple]) -> int:
        """Batch-route ``(key, x, y[, ts])`` records; changed count."""
        ...

    def ingest_arrays(
        self, keys: Sequence[Hashable], points, ts=None
    ) -> int:
        """Route a parallel key sequence and ``(n, 2)`` point block."""
        ...

    def advance_time(self, now: float) -> int:
        """Expire stale window buckets; total expired across keys."""
        ...

    # -- queries -----------------------------------------------------------

    def keys(self) -> List[Hashable]:
        """All live stream keys."""
        ...

    def __len__(self) -> int: ...

    def hull(self, key: Hashable) -> List[Point]:
        """Approximate hull of one keyed stream ([] if never fed)."""
        ...

    def summary(self, key: Hashable) -> HullSummary:
        """The summary for ``key``, created lazily on first use."""
        ...

    def merged_summary(
        self, keys: Optional[Iterable[Hashable]] = None
    ) -> HullSummary:
        """One summary covering the union of the selected streams."""
        ...

    def merged_hull(
        self, keys: Optional[Iterable[Hashable]] = None
    ) -> List[Point]:
        """The union hull of the selected streams."""
        ...

    def diameter(self, keys: Optional[Iterable[Hashable]] = None) -> float:
        """Approximate diameter of the union of the selected streams."""
        ...

    def width(self, keys: Optional[Iterable[Hashable]] = None) -> float:
        """Approximate width of the union of the selected streams."""
        ...

    @property
    def watermark(self) -> Optional[float]:
        """The bounded-lateness watermark (event time at or before
        which the stream is final), or None under the strict policy."""
        ...

    def late_drops(self) -> dict:
        """Per-key counts of later-than-watermark dropped records
        (empty under the strict policy)."""
        ...

    def subscribe(self, callback, keys=None):
        """Standing-query callback fired per batch with touched keys."""
        ...

    def stats(self):
        """Aggregate counters across all live streams."""
        ...

    # -- persistence / lifecycle -------------------------------------------

    def snapshot_state(self) -> dict:
        """The engine's full state as a JSON-compatible document."""
        ...

    def snapshot(self, path) -> Path:
        """Write :meth:`snapshot_state` to a JSON file."""
        ...

    def close(self) -> None:
        """Release engine resources (idempotent)."""
        ...

    def __enter__(self): ...

    def __exit__(self, *exc) -> None: ...

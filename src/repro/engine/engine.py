"""The multi-stream hull engine.

One :class:`~repro.core.base.HullSummary` bounds one stream in O(r)
space — the engine manages *many* of them: a fleet of vehicles, a grid
of sensors, one summary per user.  It is the architectural seam the
scaling roadmap builds on (sharding keys across engines, batching
records per key, caching hot summaries) and deliberately stays simple:

* **factory-injected scheme** — the engine is agnostic to which summary
  it manages; pass ``lambda: AdaptiveHull(32)`` (exactly like the
  query-layer trackers) and every key lazily gets its own instance on
  first touch;
* **batch routing** — :meth:`StreamEngine.ingest` takes an iterable of
  ``(key, x, y)`` records, groups them by key, and hands each group to
  the summary's vectorised :meth:`insert_many`;
  :meth:`StreamEngine.ingest_arrays` takes a parallel ``keys`` array
  and ``(n, 2)`` points block and routes with NumPy grouping;
* **eviction/compaction hooks** — an optional ``max_streams`` LRU bound
  with an ``on_evict`` callback, plus :meth:`StreamEngine.compact` for
  predicate-driven sweeps (drop idle keys, persist-and-forget, …);
* **standing queries** — :meth:`StreamEngine.subscribe` registers a
  callback that fires after every batch with the set of touched keys,
  and :meth:`StreamEngine.attach_tracker` binds engine-owned summaries
  into a :class:`~repro.queries.trackers.MultiStreamTracker` so the
  paper's separation/containment/overlap queries run live against
  engine state;
* **snapshot/restore** — :meth:`StreamEngine.snapshot` serialises every
  summary through the :mod:`repro.streams.io` summary format;
  :meth:`StreamEngine.restore` rebuilds an identical engine (identical
  hulls, counters, and refinement state for the core schemes).

The engine is the in-process tier of the
:class:`~repro.engine.protocol.EngineProtocol` contract; the keyed
routing, subscription dispatch, and global query folds it shares with
the multi-process :class:`~repro.shard.engine.ShardedEngine` live in
:mod:`repro.engine.common`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from ..core.base import HullSummary, coerce_point
from ..core.batch import as_key_array, as_point_array, as_ts_array
from ..geometry.vec import Point
from ..obs import metrics as OBS
from ..obs import registry as obs_registry
from ..obs.trace import span
from ..streams.io import summary_from_state, summary_state
from ..window import WindowConfig, windowed_factory
from .common import (
    BaseStats,
    EventTimeAPI,
    ExtentQueryAPI,
    SubscriberAPI,
    Subscription,
    canonical_key_order,
    check_snapshot_doc,
    key_index_runs,
    split_records,
    validate_ts_batch,
)
from .time import EventClock, ReorderBuffer, TimePolicy, late_split

__all__ = ["StreamEngine", "EngineStats", "Subscription"]

SummaryFactory = Callable[[], HullSummary]
PathLike = Union[str, Path]

ENGINE_FORMAT = "repro.engine"
ENGINE_FORMAT_VERSION = 1


@dataclass
class EngineStats(BaseStats):
    """Aggregate bookkeeping across all keyed streams.

    The bucket fields describe the sliding-window layer and stay zero
    on unwindowed engines: ``buckets`` is the current live bucket
    total, ``bucket_merges``/``bucket_expiries`` count coalesces and
    whole-bucket expiries over the engine's lifetime (evicted keys'
    counts included).  The event-time fields stay zero under the
    strict (default) time policy: ``late_dropped`` counts records that
    arrived later than the bounded-lateness watermark (counted and
    dropped, never applied — per-key breakdown via
    :meth:`StreamEngine.late_drops`), ``buffered`` is the number of
    admitted records still held in reorder buffers, waiting for the
    watermark to pass them.
    """

    def __str__(self) -> str:
        return (
            f"streams={self.streams} points={self.points_ingested:,} "
            f"batches={self.batches_ingested} evictions={self.evictions} "
            f"stored={self.sample_points}" + self._suffix()
        )


class StreamEngine(SubscriberAPI, ExtentQueryAPI, EventTimeAPI):
    """Thousands of keyed hull summaries behind one batch front door.

    Args:
        factory: zero-argument callable producing a fresh summary; one
            is created lazily per key on first touch.
        max_streams: optional LRU bound on live summaries; exceeding it
            evicts the least-recently-touched key (after calling
            ``on_evict``).
        on_evict: optional ``callback(key, summary)`` invoked before a
            summary is dropped (eviction or :meth:`compact`) — the
            natural place to persist it via
            :func:`repro.streams.io.save_summary`.
        window: optional :class:`~repro.window.WindowConfig` (or kwargs
            dict).  When set, every key gets a
            :class:`~repro.window.WindowedHullSummary` wrapping the
            factory's scheme: ingestion accepts per-record timestamps,
            :meth:`advance_time` expires stale buckets across all keys,
            and every query answers over the sliding window instead of
            the whole stream prefix.  A config with ``max_delay`` opts
            a time window into bounded-lateness event time
            (:mod:`repro.engine.time`): out-of-order records within
            the bound are held in per-key reorder buffers and applied
            in sorted order once the watermark passes them (queries
            answer over the *applied* state), while later-than-
            watermark records are counted per key and dropped.
        on_late: optional dead-letter callback
            ``callback(key, points, ts, watermark)`` invoked with each
            key's later-than-watermark batch slice *before* it is
            dropped (``points`` is ``(n, 2)``, ``ts`` parallel, and
            ``watermark`` the cut the records missed).  Count-only
            accounting remains the default; the callback may also be
            carried on ``WindowConfig(on_late=...)``.  Requires a
            bounded-lateness window.  Callback exceptions propagate
            (like ``on_evict``), failing the offending ingest call.
        durability: optional
            :class:`~repro.durable.DurabilityConfig` (or a bare WAL
            directory path).  When set, every mutation is appended to
            a write-ahead log *before* it is applied — crash recovery
            via :func:`repro.durable.recover_stream_engine` replays
            the tail onto the latest compacted snapshot, bit-identical
            by determinism.  A fresh engine requires the directory
            empty; continuing an existing log goes through recovery.
    """

    def __init__(
        self,
        factory: SummaryFactory,
        *,
        max_streams: Optional[int] = None,
        on_evict: Optional[Callable[[Hashable, HullSummary], None]] = None,
        window=None,
        on_late=None,
        durability=None,
    ):
        if max_streams is not None and max_streams < 1:
            raise ValueError("max_streams must be >= 1")
        self.window = WindowConfig.coerce(window)
        self._base_factory = factory
        if self.window is not None:
            self._factory = windowed_factory(factory, self.window)
        else:
            self._factory = factory
        # Event-time policy: strict monotonic unless the window opts
        # into bounded lateness, in which case the engine owns the
        # watermark clock and one reorder buffer per key (the window
        # summaries themselves stay strictly monotonic and untouched).
        self.time_policy = (
            self.window.time_policy
            if self.window is not None and self.window.timed
            else TimePolicy.strict()
        )
        self._event_clock: Optional[EventClock] = (
            EventClock(self.time_policy.max_delay)
            if self.time_policy.bounded
            else None
        )
        hook = on_late if on_late is not None else (
            self.window.on_late if self.window is not None else None
        )
        if hook is not None and not self.time_policy.bounded:
            raise ValueError(
                "on_late requires a bounded-lateness window (max_delay)"
            )
        self._on_late = hook
        self._buffers: Dict[Hashable, ReorderBuffer] = {}
        self._late_drops: Dict[Hashable, int] = {}
        self._summaries: Dict[Hashable, HullSummary] = {}
        self._subscriptions: List[Subscription] = []
        self._tracker_bindings: Dict[Hashable, List] = {}
        self.max_streams = max_streams
        self.on_evict = on_evict
        self.points_ingested = 0
        self.batches_ingested = 0
        self.evictions = 0
        # Window counters of already-evicted keys, so engine-lifetime
        # stats survive LRU churn.
        self._retired_bucket_merges = 0
        self._retired_bucket_expiries = 0
        self._wal = None
        self._dead_letter_log = None
        if durability is not None:
            self.attach_durability(durability, require_empty=True)

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "StreamEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Release engine resources: seal the write-ahead and
        dead-letter logs if durability is attached (otherwise a no-op
        for the in-process tier, here for
        :class:`~repro.engine.protocol.EngineProtocol` lifecycle
        symmetry with the sharded tier)."""
        if self._wal is not None:
            self._wal.close()
        if self._dead_letter_log is not None:
            self._dead_letter_log.close()

    # -- durability --------------------------------------------------------

    @property
    def wal(self):
        """The attached :class:`~repro.durable.WalWriter`, or None."""
        return self._wal

    def _wal_meta(self) -> dict:
        """Engine configuration captured into the log, so recovery can
        rebuild the factory/window without the caller restating them
        (possible only when the factory is a SummarySpec.build)."""
        owner = getattr(self._base_factory, "__self__", None)
        return {
            "tier": "engine",
            "spec": owner.to_doc()
            if owner is not None and hasattr(owner, "to_doc")
            else None,
            "window": self.window.to_doc() if self.window is not None else None,
        }

    def attach_durability(self, durability, *, require_empty: bool = False):
        """Attach a write-ahead log (and, for bounded-lateness windows,
        a dead-letter log) to an already-built engine.

        This is the recovery half of the ``durability=`` constructor
        kwarg: :func:`repro.durable.recover_stream_engine` replays the
        log first and then attaches a continuing writer, so replayed
        entries are never re-appended.  ``durability`` may be a
        :class:`~repro.durable.DurabilityConfig` or a bare directory.
        """
        from ..durable.deadletter import attach_dead_letters
        from ..durable.wal import DurabilityConfig, WalError, WalWriter

        if self._wal is not None:
            raise WalError("durability is already attached")
        config = (
            durability
            if isinstance(durability, DurabilityConfig)
            else DurabilityConfig(durability)
        )
        self._wal = WalWriter(
            config, meta=self._wal_meta(), require_empty=require_empty
        )
        if config.dead_letters:
            self._dead_letter_log = attach_dead_letters(self, config.path)
        return self._wal

    def _maybe_compact(self) -> None:
        if self._wal is not None and self._wal.should_compact():
            self._wal.write_snapshot(self.snapshot_state())

    # -- keyed access ------------------------------------------------------

    @property
    def summary_factory(self) -> SummaryFactory:
        """The effective per-key factory (window-wrapped when the
        engine is windowed) — what snapshot restore must produce."""
        return self._factory

    def __len__(self) -> int:
        return len(self._summaries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._summaries

    def keys(self) -> List[Hashable]:
        """Live stream keys, least-recently-touched first."""
        return list(self._summaries)

    def get(self, key: Hashable) -> Optional[HullSummary]:
        """The summary for ``key``, or None if the key is not live."""
        return self._summaries.get(key)

    def summary(self, key: Hashable) -> HullSummary:
        """The summary for ``key``, created lazily on first use."""
        summary = self._summaries.get(key)
        if summary is None:
            summary = self._factory()
            self._summaries[key] = summary
            # Keep attached trackers pointing at the live object: after
            # an eviction, the key's next touch re-binds the fresh
            # summary so standing queries never read dead state.
            for tracker in self._tracker_bindings.get(key, ()):
                tracker.bind(key, summary)
            self._enforce_bound()
        return summary

    def hull(self, key: Hashable) -> List[Point]:
        """Approximate hull of a keyed stream ([] if never fed)."""
        summary = self._summaries.get(key)
        return summary.hull() if summary is not None else []

    def adopt(self, key: Hashable, summary: HullSummary) -> HullSummary:
        """Install an externally built summary under ``key``.

        Used by the shard layer when a whole-ring snapshot is restored
        onto a different worker count: each deserialised summary is
        adopted by whichever engine now owns its key.  Replaces any live
        summary for the key, re-binds attached trackers, and enforces
        the LRU bound like any other touch.
        """
        self._summaries.pop(key, None)
        self._summaries[key] = summary
        for tracker in self._tracker_bindings.get(key, ()):
            tracker.bind(key, summary)
        self._enforce_bound()
        return summary

    def merged_summary(
        self, keys: Optional[Iterable[Hashable]] = None
    ) -> HullSummary:
        """One summary covering the union of the selected keyed streams.

        Builds a fresh summary from the engine's factory and folds every
        (live) selected summary into it — the all-keys reduction a shard
        worker answers global queries with (:meth:`HullSummary.merge`
        leaves its right operand untouched, so the engine's own
        summaries are never mutated; the cross-shard *tree* reduction
        over disposable deserialised summaries lives in
        :func:`~repro.core.base.tree_merge`).  ``keys=None`` merges
        every live stream; unknown keys are skipped.
        """
        # Fold in canonical key order: the merged answer then depends
        # only on what was ingested per key — never on batch
        # interleaving or LRU touch history — which is the property the
        # serving layer's bit-identical parity rests on.
        if keys is None:
            selection = list(self._summaries)
        else:
            selection = [k for k in keys if k in self._summaries]
        selection.sort(key=canonical_key_order)
        selected = [self._summaries[k] for k in selection]
        if self.window is not None:
            # Windowed engines reduce over per-key *merged views* (plain
            # summaries of the base scheme): windows themselves refuse
            # cross-key merging, and the global answer should cover the
            # union of the live windows.
            merged = self._base_factory()
            for s in selected:
                merged.merge(s.merged_view())
            return merged
        merged = self._factory()
        for s in selected:
            merged.merge(s)
        return merged

    # -- event time --------------------------------------------------------

    # ``watermark`` / ``late_drops`` / ``late_dropped`` come from
    # EventTimeAPI (shared with the sharded tier).

    @property
    def buffered_records(self) -> int:
        """Admitted records still waiting in reorder buffers."""
        return sum(len(b) for b in self._buffers.values())

    def adopt_pending(self, key: Hashable, buffer_doc: dict) -> None:
        """Install a serialised reorder buffer under ``key`` (the shard
        layer's re-sharded-restore hook, mirroring :meth:`adopt` for
        not-yet-released records).

        Raises:
            ValueError: on an engine without a bounded-lateness window
                (there is nothing to buffer into).
        """
        if self._event_clock is None:
            raise ValueError(
                "adopt_pending requires a bounded-lateness window"
            )
        buf = ReorderBuffer.from_doc(buffer_doc)
        if len(buf):
            self._buffers[key] = buf

    def advance_time(
        self, now: float, watermark: Optional[float] = None
    ) -> int:
        """Advance every live windowed summary's clock (time-based
        windows only); returns the total number of expired buckets.
        Clocks that already ran ahead are left alone.  Subscribers are
        notified with the keys whose windows expired buckets — their
        hulls moved without any new data.

        Under a bounded-lateness policy ``now`` is an *event-time
        heartbeat*: it advances the watermark to ``now - max_delay``,
        the reorder buffers flush everything the new watermark passed
        (released keys notify subscribers too), and only then do the
        summaries expire — and only up to the watermark, never to raw
        ``now``, so a bucket can never expire while in-bound records
        that belong near it are still buffered.  ``watermark`` is the
        shard tier's internal hook: the parent computes the global
        watermark once and ships it, so every worker releases at the
        same cut no matter how keys are sharded.

        Raises:
            ValueError: when the engine has no time-based window, or
                ``watermark`` is passed under the strict policy.
        """
        return self.advance_time_detail(now, watermark=watermark)[0]

    def advance_time_detail(
        self, now: float, watermark: Optional[float] = None
    ) -> Tuple[int, List[Hashable]]:
        """:meth:`advance_time`, also returning the keys whose windows
        expired buckets (or received flushed records) — what a shard
        worker ships to the parent so ring-level subscribers see the
        same notifications as local ones."""
        if self.window is None or not self.window.timed:
            raise ValueError(
                "advance_time requires an engine with a time-based window"
            )
        now = float(now)
        if not math.isfinite(now):
            raise ValueError("advance_time requires a finite timestamp")
        if self._wal is not None:
            # Expiry and watermark advances mutate state too: a
            # recovery that skipped them would diverge from the live
            # engine the moment a bucket aged out.
            self._wal.append_advance(now, watermark)
        if self._event_clock is None:
            if watermark is not None:
                raise ValueError(
                    "watermark requires a bounded-lateness window"
                )
            total = 0
            touched: Set[Hashable] = set()
            for key, s in self._summaries.items():
                expired = s.advance_time(now)
                if expired:
                    total += expired
                    touched.add(key)
            if total:
                OBS.ENGINE_EXPIRED_BUCKETS.inc(total)
            if touched:
                self._notify(touched)
            return total, list(touched)
        if watermark is None:
            wm = self._event_clock.observe(now)
        else:
            wm = self._event_clock.observe_watermark(float(watermark))
        touched = set()
        # Flush the reorder buffers FIRST: the advance may have made
        # buffered in-bound records final, and expiry must never run
        # before they reach their buckets (nor may the summary clocks
        # jump past timestamps still owed to them).
        for key in list(self._buffers):
            released = self._buffers[key].release(wm)
            if released is not None:
                self._apply_released(key, released[0], released[1])
                touched.add(key)
        total = 0
        if math.isfinite(wm):
            for key, s in self._summaries.items():
                expired = s.advance_time(wm)
                if expired:
                    total += expired
                    touched.add(key)
        if total:
            OBS.ENGINE_EXPIRED_BUCKETS.inc(total)
        if touched:
            self._notify(touched)
        return total, list(touched)

    def stats(self) -> EngineStats:
        """Aggregate counters across all live streams.

        Also refreshes the engine-level obs gauges and folds the
        process registry snapshot into the document's ``obs`` field
        (one of the three export surfaces of :mod:`repro.obs`).
        """
        live = list(self._summaries.values())
        sample_points = sum(s.sample_size for s in live)
        buffered = self.buffered_records
        OBS.ENGINE_STREAMS.set(len(live))
        OBS.ENGINE_SAMPLE_POINTS.set(sample_points)
        OBS.ENGINE_BUFFERED_RECORDS.set(buffered)
        return EngineStats(
            streams=len(live),
            points_ingested=self.points_ingested,
            batches_ingested=self.batches_ingested,
            evictions=self.evictions,
            sample_points=sample_points,
            buckets=sum(getattr(s, "bucket_count", 0) for s in live),
            bucket_merges=self._retired_bucket_merges
            + sum(getattr(s, "buckets_merged", 0) for s in live),
            bucket_expiries=self._retired_bucket_expiries
            + sum(getattr(s, "buckets_expired", 0) for s in live),
            late_dropped=self.late_dropped,
            buffered=buffered,
            obs=obs_registry().collect(),
        )

    # -- ingestion ---------------------------------------------------------

    def insert(
        self,
        key: Hashable,
        x: float,
        y: float,
        ts: Optional[float] = None,
        watermark: Optional[float] = None,
    ) -> bool:
        """Route a single record; returns True if a summary changed.

        ``ts`` is the record's event time — required per record on an
        engine with a time-based window, rejected on an unwindowed
        engine.  Under bounded lateness the record is buffered until
        the watermark passes it (a record later than the watermark is
        counted and dropped, with the subscriber notified), so the
        return value reflects changes applied by releases during
        *this* call; ``watermark`` is the shard tier's internal hook
        (the record was pre-screened and the global watermark computed
        parent-side).
        """
        # Validate the whole record first: a rejected record must not
        # touch the LRU order, create the key, or evict a victim.
        p = coerce_point((x, y))
        if ts is not None:
            if self.window is None:
                raise ValueError("ts requires a windowed engine")
            ts = float(ts)
            if not np.isfinite(ts):
                raise ValueError("ts must be finite")
        if self.window is not None and ts is None and self.window.timed:
            raise ValueError(
                "time-based windows require an explicit ts per insert"
            )
        if self._wal is not None:
            self._wal.append_insert(key, p[0], p[1], ts, watermark)
        if self._event_clock is not None:
            changed = self._insert_bounded(key, p, ts, watermark)
            self._maybe_compact()
            return changed
        if watermark is not None:
            raise ValueError("watermark requires a bounded-lateness window")
        if self.window is not None and ts is not None:
            live = self._summaries.get(key)
            last = live.last_ts if live is not None else None
            if last is not None and ts < last:
                raise ValueError(
                    f"timestamps must be non-decreasing: got {ts} after {last}"
                )
        self._touch(key)
        summary = self.summary(key)
        if ts is None:
            changed = summary.insert(p)
        else:
            changed = summary.insert(p, ts=ts)
        self.points_ingested += 1
        OBS.ENGINE_INGEST_RECORDS.inc()
        self._notify({key})
        self._maybe_compact()
        return changed

    def _insert_bounded(
        self,
        key: Hashable,
        p: Tuple[float, float],
        ts: float,
        ext_watermark: Optional[float],
    ) -> bool:
        """Single-record bounded-lateness path: judge against the
        watermark, buffer, release what became final."""
        if ext_watermark is None:
            if ts < self._event_clock.watermark:
                self._record_late(key, 1, points=(p,), ts=(ts,))
                self._notify({key})
                return False
            wm = self._event_clock.observe(ts)
        else:
            wm = self._event_clock.observe_watermark(float(ext_watermark))
        buf = self._buffers.setdefault(key, ReorderBuffer())
        buf.add(np.asarray([p], dtype=np.float64), np.asarray([ts]))
        changed = False
        released = buf.release(wm)
        if released is not None:
            changed = self._apply_released(key, released[0], released[1]) > 0
        self.points_ingested += 1
        OBS.ENGINE_INGEST_RECORDS.inc()
        self._notify({key})
        return changed

    def ingest(
        self, records: Iterable[Tuple[Hashable, float, float]], chunk: int = 4096
    ) -> int:
        """Batch-route ``(key, x, y)`` records; returns changed count.

        Records are grouped by key and each group is ingested through
        the summary's (vectorised) :meth:`insert_many`.  On a windowed
        engine, records may instead be ``(key, x, y, ts)`` — all or
        none of a batch must carry timestamps.  Subscribers are
        notified once, after the whole batch, with the set of touched
        keys; an empty batch is a no-op.

        This is :func:`~repro.engine.common.split_records` feeding
        :meth:`ingest_arrays`, so both front doors (and both tiers —
        the sharded ``ingest`` delegates the same way) share one
        grouping/validation path.
        """
        keys, pts, ts_list = split_records(
            records, windowed=self.window is not None
        )
        return self.ingest_arrays(keys, pts, chunk=chunk, ts=ts_list)

    def ingest_arrays(
        self,
        keys: Sequence[Hashable],
        points,
        chunk: int = 4096,
        ts=None,
        watermark: Optional[float] = None,
    ) -> int:
        """Batch-route a parallel ``keys`` sequence and ``(n, 2)`` block.

        The NumPy-native front door: grouping is one ``argsort`` over
        the key array (:func:`~repro.engine.common.key_index_runs`), so
        a million-record batch routes without a Python-level loop over
        records.  On a windowed engine ``ts`` may carry event time —
        one scalar for the whole batch or a parallel length-``n``
        array; per-key timestamp runs must be non-decreasing (a
        globally time-ordered batch always is) under the strict
        policy.  Under bounded lateness the batch may be arbitrarily
        out of order: each record is judged in arrival order against
        the watermark of everything *before* it (late ones are counted
        and dropped, with subscribers notified), the rest are buffered
        and the runs the new watermark finalises are released sorted;
        the changed count covers records applied by this call's
        releases.  ``watermark`` is the shard tier's internal hook (a
        pre-screened slice plus the parent's global watermark).
        """
        arr = as_point_array(points)
        key_arr = as_key_array(keys, len(arr))
        ts_arr = self._check_batch_ts(ts, len(arr))
        if len(arr) == 0:
            return 0
        if self._wal is not None:
            # Write-ahead: the ack the caller gets implies the batch is
            # durable.  A slice the engine rejects *after* this point
            # rejects identically on replay (determinism), so recovery
            # skips it and still lands on the acknowledged state.
            self._wal.append_batch(key_arr, arr, ts_arr, watermark)
        p0, b0 = self.points_ingested, self.batches_ingested
        with span("engine.ingest", records=len(arr)) as sp:
            changed = self._ingest_validated(
                key_arr, arr, ts_arr, chunk, watermark
            )
        OBS.ENGINE_INGEST_BATCH_SECONDS.observe(sp.duration)
        if self.points_ingested > p0:
            OBS.ENGINE_INGEST_RECORDS.inc(self.points_ingested - p0)
        if self.batches_ingested > b0:
            OBS.ENGINE_INGEST_BATCHES.inc(self.batches_ingested - b0)
        self._maybe_compact()
        return changed

    def _ingest_validated(
        self,
        key_arr: np.ndarray,
        arr: np.ndarray,
        ts_arr,
        chunk: int,
        watermark: Optional[float],
    ) -> int:
        if self._event_clock is not None:
            return self._ingest_bounded(key_arr, arr, ts_arr, chunk, watermark)
        if watermark is not None:
            raise ValueError("watermark requires a bounded-lateness window")
        if ts_arr is None:
            # Untimestamped: stream the groups lazily — no reason to
            # hold every per-key slice of a huge batch at once.
            groups = (
                (k, arr[idx], None) for k, idx in key_index_runs(key_arr)
            )
            return self._ingest_groups(groups, chunk)
        # Timestamped runs are validated for every key before any is
        # applied, mirroring the records path's cross-key atomicity.
        validated = []
        for k, idx in key_index_runs(key_arr):
            validated.append(
                (k, arr[idx], self._check_group_ts(k, ts_arr[idx]))
            )
        return self._ingest_groups(validated, chunk)

    def _check_batch_ts(self, ts, n: int):
        """Normalise a batch-level ts argument (None, scalar, or
        parallel array) without per-key semantics yet.  Missing ts on a
        timed window (and, under bounded lateness, any non-finite ts)
        is rejected here — before any key is touched or evicted — to
        keep the batch rejection atomic."""
        if ts is not None and self.window is None:
            raise ValueError("ts requires a windowed engine")
        if (
            ts is None
            and n
            and self.window is not None
            and self.window.timed
        ):
            raise ValueError(
                "time-based windows require a ts on every record"
            )
        ts_arr = as_ts_array(ts, n)
        if ts_arr is not None and self.time_policy.bounded:
            validate_ts_batch(ts_arr, None, "", policy=self.time_policy)
        return ts_arr

    def _check_group_ts(self, key: Hashable, run_ts) -> np.ndarray:
        """Validate one key's timestamp run against its live summary so
        the whole batch can be rejected before any group is applied."""
        seq = np.asarray(run_ts, dtype=np.float64)
        summary = self._summaries.get(key)
        last = summary.last_ts if summary is not None else None
        validate_ts_batch(seq, last, f"key {key!r}: ")
        return seq

    def _ingest_groups(self, groups, chunk: int) -> int:
        changed = 0
        touched: Set[Hashable] = set()
        for key, pts, ts in groups:
            self._touch(key)
            summary = self.summary(key)
            before = summary.points_seen if hasattr(summary, "points_seen") else None
            if ts is None:
                changed += summary.insert_many(pts, chunk=chunk)
            else:
                changed += summary.insert_many(pts, chunk=chunk, ts=ts)
            self.points_ingested += (
                summary.points_seen - before if before is not None else len(pts)
            )
            touched.add(key)
        if not touched:
            return 0  # an empty batch is a no-op on every tier
        self.batches_ingested += 1
        self._notify(touched)
        return changed

    def _ingest_bounded(
        self,
        key_arr: np.ndarray,
        arr: np.ndarray,
        ts_arr: np.ndarray,
        chunk: int,
        ext_watermark: Optional[float],
    ) -> int:
        """Batch bounded-lateness path: split late records off in
        arrival order, buffer the rest per key, release every touched
        key's finalised run under the new watermark.  Late drops are
        counted per key and surfaced to subscribers alongside the keys
        whose summaries actually changed."""
        if ext_watermark is None:
            late, new_max = late_split(
                ts_arr, self._event_clock.max_ts, self._event_clock.max_delay
            )
            wm = self._event_clock.observe(new_max)
        else:
            # The shard parent pre-screened the slice and computed the
            # global watermark; nothing here can be late.
            late = None
            wm = self._event_clock.observe_watermark(float(ext_watermark))
        changed = 0
        admitted = 0
        # Notification contract (same on both tiers): a batch notifies
        # every key with admitted records — buffered or applied — plus
        # the keys with late drops; release-without-new-data paths
        # (advance_time) notify the released keys separately.
        touched: Set[Hashable] = set()
        for key, idx in key_index_runs(key_arr):
            if late is not None:
                late_mask = late[idx]
                late_count = int(late_mask.sum())
                if late_count:
                    late_idx = idx[late_mask]
                    self._record_late(
                        key,
                        late_count,
                        points=arr[late_idx],
                        ts=ts_arr[late_idx],
                    )
                    touched.add(key)
                    idx = idx[~late_mask]
                    if len(idx) == 0:
                        continue
            admitted += len(idx)
            touched.add(key)
            buf = self._buffers.setdefault(key, ReorderBuffer())
            buf.add(arr[idx], ts_arr[idx])
            released = buf.release(wm)
            if released is not None:
                changed += self._apply_released(
                    key, released[0], released[1], chunk
                )
        if admitted:
            self.points_ingested += admitted
            self.batches_ingested += 1
        if touched:
            self._notify(touched)
        return changed

    def _apply_released(
        self, key: Hashable, pts: np.ndarray, ts_run: np.ndarray, chunk: int = 4096
    ) -> int:
        """Feed one finalised (sorted) run to the key's summary through
        the unchanged strictly-monotonic window path."""
        self._touch(key)
        summary = self.summary(key)
        OBS.ENGINE_RELEASED_RECORDS.inc(len(pts))
        return summary.insert_many(pts, chunk=chunk, ts=ts_run)

    # -- eviction / compaction ---------------------------------------------

    def evict(self, key: Hashable) -> HullSummary:
        """Drop a keyed summary (KeyError if not live) and return it.

        The ``on_evict`` hook runs first, while the summary is still
        queryable — persist it there if it must survive.  Eviction
        drops the key's *whole* state: on a bounded-lateness engine
        any not-yet-released buffered records go with it (they would
        otherwise resurrect the key with only the buffered tail once
        the watermark passed them).  Lifetime accounting — late-drop
        counts, retired bucket counters — survives, like any other
        engine-level stat.
        """
        summary = self._summaries[key]
        if self.on_evict is not None:
            self.on_evict(key, summary)
        del self._summaries[key]
        self._buffers.pop(key, None)
        self.evictions += 1
        OBS.ENGINE_EVICTIONS.inc()
        self._retired_bucket_merges += getattr(summary, "buckets_merged", 0)
        self._retired_bucket_expiries += getattr(summary, "buckets_expired", 0)
        return summary

    def extract(
        self, key: Hashable
    ) -> Optional[Tuple[Optional[HullSummary], Optional[dict]]]:
        """Remove a key *for migration*: returns ``(summary,
        buffer_doc)``, or None when the key holds no state here.

        Unlike :meth:`evict` this is not an eviction — no ``on_evict``
        hook, no eviction counter: the key's whole state (summary plus
        any not-yet-released reorder buffer) is leaving for another
        engine, which adopts it via :meth:`adopt` /
        :meth:`adopt_pending`.  ``points_ingested`` drops by the
        summary's own stream length, mirroring what adoption adds on
        the destination, so per-engine counters stay truthful across a
        live resharding.  ``summary`` may be None when only buffered
        records exist (admitted but never released under bounded
        lateness)."""
        summary = self._summaries.pop(key, None)
        buf = self._buffers.pop(key, None)
        if summary is None and buf is None:
            return None
        if summary is not None:
            self.points_ingested -= int(
                getattr(summary, "points_seen", 0) or 0
            )
        buffer_doc = buf.to_doc() if buf is not None and len(buf) else None
        return summary, buffer_doc

    def compact(
        self, drop: Callable[[Hashable, HullSummary], bool]
    ) -> List[Hashable]:
        """Evict every key for which ``drop(key, summary)`` is true;
        returns the evicted keys.  The workhorse for idle-key sweeps
        (e.g. ``engine.compact(lambda k, s: s.points_seen == 0)``)."""
        victims = [k for k, s in self._summaries.items() if drop(k, s)]
        for k in victims:
            self.evict(k)
        return victims

    def _touch(self, key: Hashable) -> None:
        """Mark a key most-recently-used (dict order is the LRU list)."""
        summary = self._summaries.pop(key, None)
        if summary is not None:
            self._summaries[key] = summary

    def _enforce_bound(self) -> None:
        if self.max_streams is None:
            return
        while len(self._summaries) > self.max_streams:
            self.evict(next(iter(self._summaries)))

    # -- standing queries ---------------------------------------------------

    # ``subscribe`` / ``_notify`` come from SubscriberAPI (shared with
    # the sharded tier, reentrancy-safe dispatch included).

    def attach_tracker(
        self,
        tracker,
        keys: Iterable[Hashable],
        on_update: Optional[Callable[[Set[Hashable]], None]] = None,
    ) -> Optional[Subscription]:
        """Bind engine-owned summaries into a multi-stream tracker.

        Each key's (lazily created) summary is registered with
        ``tracker`` under the same name, so tracker queries — distance,
        separability, containment, overlap — read the live engine
        state without copying points.  An optional ``on_update``
        callback is subscribed to batches touching the bound keys —
        the hook for re-evaluating the tracker's standing queries only
        when the hulls they watch may have moved; the returned
        :class:`Subscription` cancels it.

        Bindings survive LRU eviction: when an evicted key is touched
        again and a fresh summary is created, every tracker attached to
        that key is re-bound to the new object (until then the tracker
        answers from the last pre-eviction state).  Note that binding
        more keys than ``max_streams`` allows will itself evict the
        earliest ones.
        """
        keys = list(keys)
        for key in keys:
            self._tracker_bindings.setdefault(key, [])
            if tracker not in self._tracker_bindings[key]:
                self._tracker_bindings[key].append(tracker)
            tracker.bind(key, self.summary(key))
        if on_update is not None:
            return self.subscribe(on_update, keys)
        return None

    # -- snapshot / restore --------------------------------------------------

    def snapshot_state(self) -> dict:
        """The engine's full state as a JSON-compatible document.

        This is the payload :meth:`snapshot` writes to disk and the
        shard layer ships over worker pipes — one entry per live summary
        through the :mod:`repro.streams.io` summary format, plus the
        engine counters.  Keys must be JSON scalars (str/int/float/
        bool); anything else raises TypeError — hash-only keys cannot
        round-trip a text format.
        """
        entries = []
        for key, summary in self._summaries.items():
            self._check_snapshot_key(key)
            entries.append([key, summary_state(summary)])
        doc = {
            "format": ENGINE_FORMAT,
            "version": ENGINE_FORMAT_VERSION,
            "points_ingested": self.points_ingested,
            "batches_ingested": self.batches_ingested,
            "evictions": self.evictions,
            "window": self.window.to_doc() if self.window else None,
            "summaries": entries,
        }
        if self._event_clock is not None:
            buffers = []
            for key, buf in self._buffers.items():
                if not len(buf):
                    continue
                self._check_snapshot_key(key)
                buffers.append([key, buf.to_doc()])
            late = []
            for key, n in self._late_drops.items():
                self._check_snapshot_key(key)
                late.append([key, n])
            doc["time"] = {
                **self._event_clock.to_doc(),
                "buffers": buffers,
                "late_drops": late,
            }
        return doc

    @staticmethod
    def _check_snapshot_key(key: Hashable) -> None:
        if not isinstance(key, (str, int, float, bool)):
            raise TypeError(
                f"snapshot keys must be JSON scalars, got {type(key).__name__}"
            )

    def snapshot(self, path: PathLike) -> Path:
        """Serialise every live summary to a JSON snapshot file (see
        :meth:`snapshot_state` for the document and key constraints)."""
        path = Path(path)
        path.write_text(json.dumps(self.snapshot_state()), encoding="utf-8")
        return path

    @classmethod
    def from_snapshot_state(
        cls,
        doc: dict,
        factory: SummaryFactory,
        *,
        max_streams: Optional[int] = None,
        on_evict: Optional[Callable[[Hashable, HullSummary], None]] = None,
        window=None,
        on_late=None,
    ) -> "StreamEngine":
        """Rebuild an engine from a :meth:`snapshot_state` document.

        ``factory`` must produce the same scheme/configuration the
        snapshot was taken with (checked per summary); the restored
        engine has identical hulls and counters and keeps streaming.
        A windowed snapshot restores its own window config by default;
        passing ``window`` explicitly must match the snapshot's.
        """
        check_snapshot_doc(
            doc, ENGINE_FORMAT, ENGINE_FORMAT_VERSION, "an engine snapshot"
        )
        snap_window = doc.get("window")
        snap_window = (
            WindowConfig.from_doc(snap_window) if snap_window else None
        )
        window = WindowConfig.coerce(window)
        if window is None:
            window = snap_window
        elif window != snap_window:
            raise ValueError(
                f"snapshot window {snap_window!r} does not match requested "
                f"window {window!r}; the restored engine would expire under "
                "a different policy"
            )
        engine = cls(
            factory,
            max_streams=max_streams,
            on_evict=on_evict,
            window=window,
            on_late=on_late,
        )
        for key, snap in doc["summaries"]:
            engine._summaries[key] = summary_from_state(
                snap, factory=engine._factory
            )
        engine.points_ingested = int(doc.get("points_ingested", 0))
        engine.batches_ingested = int(doc.get("batches_ingested", 0))
        engine.evictions = int(doc.get("evictions", 0))
        time_doc = doc.get("time")
        if time_doc is not None:
            if engine._event_clock is None:  # window said strict, doc says not
                raise ValueError(
                    "snapshot carries reorder-buffer state but the window "
                    "has no bounded-lateness policy"
                )
            engine._event_clock.load_doc(time_doc)
            for key, buf_doc in time_doc.get("buffers", []):
                engine.adopt_pending(key, buf_doc)
            engine._late_drops = {
                key: int(n) for key, n in time_doc.get("late_drops", [])
            }
        engine._enforce_bound()
        return engine

    @classmethod
    def restore(
        cls,
        path: PathLike,
        factory: SummaryFactory,
        *,
        max_streams: Optional[int] = None,
        on_evict: Optional[Callable[[Hashable, HullSummary], None]] = None,
        window=None,
        on_late=None,
    ) -> "StreamEngine":
        """Rebuild an engine from a :meth:`snapshot` file."""
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_snapshot_state(
            doc,
            factory,
            max_streams=max_streams,
            on_evict=on_evict,
            window=window,
            on_late=on_late,
        )

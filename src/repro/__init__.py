"""repro — Adaptive Sampling for Geometric Problems over Data Streams.

A complete reproduction of Hershberger & Suri (PODS 2004; Computational
Geometry 39 (2008) 191-208): streaming convex-hull summaries with
provably optimal O(D/r^2) error using at most 2r+1 adaptive samples,
together with every substrate, baseline, query, and experiment the
paper describes — grown into a batch-first, multi-stream engine.

Quickstart (single stream, point at a time)::

    from repro import AdaptiveHull

    hull = AdaptiveHull(r=32)
    for x, y in stream:
        hull.insert((x, y))
    polygon = hull.hull()           # CCW convex polygon, <= 2r+1 points

Batch quickstart — real feeds arrive as ``(n, 2)`` NumPy blocks, and
``insert_many`` ingests them through a vectorised containment
pre-filter (several times the sequential throughput, bit-for-bit the
same result)::

    import numpy as np
    from repro import AdaptiveHull

    hull = AdaptiveHull(r=32)
    hull.insert_many(np.random.default_rng(0).normal(size=(100_000, 2)))

Many streams — one summary per vehicle/sensor/user — go through the
:class:`StreamEngine`: keyed batch routing, lazy per-key summaries,
LRU eviction, standing-query subscriptions, and JSON snapshot/restore::

    from repro import AdaptiveHull, SeparationTracker, StreamEngine

    engine = StreamEngine(lambda: AdaptiveHull(r=32))
    engine.ingest([("drone-1", 0.5, 1.2), ("drone-2", 3.1, -0.4)])
    engine.ingest_arrays(keys, points)          # NumPy-native routing

    tracker = SeparationTracker(lambda: AdaptiveHull(r=32))
    engine.attach_tracker(tracker, ["drone-1", "drone-2"])
    tracker.separable("drone-1", "drone-2")     # live standing query

    engine.snapshot("fleet.json")               # checkpoint...
    engine = StreamEngine.restore("fleet.json", lambda: AdaptiveHull(r=32))

Summaries are *mergeable* (``a |= b`` folds another summary of the same
scheme/config into ``a``, preserving the error bounds), which scales
the engine across processes: the :class:`ShardedEngine` routes keys
over N workers by consistent hashing and answers global queries through
a tree reduction of per-shard merged summaries::

    from repro import ShardedEngine, SummarySpec

    with ShardedEngine(SummarySpec("AdaptiveHull", {"r": 32}), shards=4) as eng:
        eng.ingest_arrays(keys, points)         # parallel fan-out
        eng.merged_hull()                       # global union hull
        eng.snapshot("ring.json")               # whole-ring checkpoint

Monitoring workloads ask about the *recent* window, not the whole
prefix — stale extremes must age out.  Both engine tiers take a
``window=`` config that gives every key a
:class:`~repro.window.WindowedHullSummary`: bucketed summaries merged
through the same algebra, whole-bucket expiry, logarithmic space::

    from repro import AdaptiveHull, StreamEngine, WindowConfig

    engine = StreamEngine(lambda: AdaptiveHull(32),
                          window=WindowConfig(horizon=300.0))
    engine.ingest_arrays(keys, points, ts=timestamps)
    engine.advance_time(now)                    # expire with no new data
    engine.merged_summary().hull()              # hull of the live windows

Real feeds arrive *out of order*: ``WindowConfig(horizon=...,
max_delay=D)`` opts a time window into bounded lateness
(:mod:`repro.engine.time`) — records up to ``D`` behind the newest
event are reordered behind a watermark (hulls bit-identical to the
sorted stream), later ones are counted and dropped, never silently
applied.

Both tiers implement one formal contract, :class:`EngineProtocol`
(ingest / queries / standing-query subscribe / snapshots / lifecycle),
so they are drop-in interchangeable — and the :mod:`repro.serve`
package serves any of them asynchronously: a bounded batch-coalescing
ingest queue, standing-query push to asyncio subscribers, periodic
window expiry ticks, and a newline-delimited-JSON TCP server with a
matching client (results bit-identical to direct synchronous calls)::

    from repro import AdaptiveHull, StreamEngine
    from repro.serve import AsyncHullService, HullServer

    engine = StreamEngine(lambda: AdaptiveHull(32))
    async with AsyncHullService(engine, own_engine=True) as service:
        async with HullServer(service, port=8765) as server:
            await server.serve_forever()

Production streams also need to survive crashes: ``durability=`` gives
either tier a write-ahead log (appended *before* apply, so recovery =
latest snapshot + tail replay, bit-identical by determinism), the
sharded tier takes ``standbys=`` hot replicas per shard (promoted
automatically when a primary dies) and resizes its ring online with
``resize(n)``, moving only the proportional key slice::

    from repro import DurabilityConfig, ShardedEngine, SummarySpec
    from repro.durable import recover_engine

    cfg = DurabilityConfig("waldir")
    with ShardedEngine(SummarySpec("AdaptiveHull", {"r": 32}), shards=4,
                       standbys=1, durability=cfg) as eng:
        eng.ingest_arrays(keys, points)         # durable before applied
        eng.resize(8)                           # live, serving throughout

    eng = recover_engine("waldir")              # after a crash

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .core.adaptive_hull import AdaptiveHull
from .core.base import HullSummary
from .core.fixed_size import FixedSizeAdaptiveHull
from .core.uniform_hull import UniformHull
from .baselines import (
    DudleyKernelHull,
    ExactHull,
    PartiallyAdaptiveHull,
    RadialHistogramHull,
    RandomSampleHull,
)
from .engine import (
    EngineProtocol,
    EngineStats,
    StreamEngine,
    Subscription,
    TimePolicy,
)
from .extensions.clusterhull import ClusterHull
from .serve import AsyncHullClient, AsyncHullService, HullServer
from .shard import HashRing, ShardedEngine, ShardError, ShardStats, SummarySpec, tree_merge
from .queries import (
    ContainmentTracker,
    OverlapTracker,
    SeparationTracker,
    diameter,
    enclosing_circle,
    extent,
    farthest_neighbor,
    width,
)
from .streams.io import load_summary, save_summary
from .window import WindowConfig, WindowedHullSummary

# After the engine tiers: repro.durable composes over both of them.
from .durable import DurabilityConfig, WalError

__version__ = "1.5.0"

__all__ = [
    "AdaptiveHull",
    "FixedSizeAdaptiveHull",
    "UniformHull",
    "HullSummary",
    "PartiallyAdaptiveHull",
    "RadialHistogramHull",
    "DudleyKernelHull",
    "ExactHull",
    "RandomSampleHull",
    "ClusterHull",
    "StreamEngine",
    "EngineStats",
    "Subscription",
    "EngineProtocol",
    "AsyncHullService",
    "HullServer",
    "AsyncHullClient",
    "ShardedEngine",
    "ShardError",
    "ShardStats",
    "SummarySpec",
    "HashRing",
    "tree_merge",
    "WindowConfig",
    "WindowedHullSummary",
    "DurabilityConfig",
    "WalError",
    "TimePolicy",
    "save_summary",
    "load_summary",
    "diameter",
    "width",
    "extent",
    "farthest_neighbor",
    "enclosing_circle",
    "SeparationTracker",
    "ContainmentTracker",
    "OverlapTracker",
    "__version__",
]

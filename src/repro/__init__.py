"""repro — Adaptive Sampling for Geometric Problems over Data Streams.

A complete reproduction of Hershberger & Suri (PODS 2004; Computational
Geometry 39 (2008) 191-208): streaming convex-hull summaries with
provably optimal O(D/r^2) error using at most 2r+1 adaptive samples,
together with every substrate, baseline, query, and experiment the
paper describes.

Quickstart::

    from repro import AdaptiveHull

    hull = AdaptiveHull(r=32)
    for x, y in stream:
        hull.insert((x, y))
    polygon = hull.hull()           # CCW convex polygon, <= 2r+1 points

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .core.adaptive_hull import AdaptiveHull
from .core.base import HullSummary
from .core.fixed_size import FixedSizeAdaptiveHull
from .core.uniform_hull import UniformHull
from .baselines import (
    DudleyKernelHull,
    ExactHull,
    PartiallyAdaptiveHull,
    RadialHistogramHull,
    RandomSampleHull,
)
from .extensions.clusterhull import ClusterHull
from .queries import (
    ContainmentTracker,
    OverlapTracker,
    SeparationTracker,
    diameter,
    enclosing_circle,
    extent,
    farthest_neighbor,
    width,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveHull",
    "FixedSizeAdaptiveHull",
    "UniformHull",
    "HullSummary",
    "PartiallyAdaptiveHull",
    "RadialHistogramHull",
    "DudleyKernelHull",
    "ExactHull",
    "RandomSampleHull",
    "ClusterHull",
    "diameter",
    "width",
    "extent",
    "farthest_neighbor",
    "enclosing_circle",
    "SeparationTracker",
    "ContainmentTracker",
    "OverlapTracker",
    "__version__",
]

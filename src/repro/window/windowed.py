"""Sliding-window hull summaries on the merge algebra.

Hershberger–Suri summaries answer extent queries over the *entire*
stream prefix; monitoring workloads ask about the recent past — "the
hull of the last N points", "the diameter over the last T seconds" —
where stale extremes must age out.  No single summary can un-insert a
point, but the merge layer (PR 2) makes a bucketed design work:

* the stream is chopped into **buckets**, each summarised independently
  by any registered scheme (:func:`repro.streams.io.scheme_registry`);
* old buckets are **expired whole** — dropping a bucket forgets its
  points exactly, no un-insertion needed;
* queries **tree-fold the live buckets** through
  :meth:`~repro.core.base.HullSummary.merge` into one ordinary summary
  (the *merged view*), on which the whole existing query surface —
  ``hull``, ``diameter``, ``width``, ``DirectionalExtentIndex`` — runs
  unchanged.

To keep the bucket count logarithmic, sealed buckets coalesce
geometrically in the style of exponential histograms (Datar, Gionis,
Indyk & Motwani, SODA 2002): at most ``level_width`` buckets per size
class; overflow merges the two oldest of the class into the next
class.  Space is therefore ``O(r * level_width * log n)`` points for a
window holding ``n`` points of an ``O(r)``-space scheme, against the
``O(n)`` of an exact re-compute baseline.

Window semantics are the usual bucketed approximation, and the slack is
explicit and bounded:

* **count windows** (``last_n=N``): the live buckets cover the most
  recent ``covered_count`` points, with ``N <= covered_count <=
  N + count_cap`` (``count_cap = max(head_capacity, N // 4)`` — bucket
  merges that would exceed it are refused, so the oldest bucket, the
  only source of over-coverage, stays small);
* **time windows** (``horizon=T``): every bucket's time span is capped
  at ``T / 4`` (the head is sealed early, merges that would span more
  are refused), and a bucket expires once its *newest* point falls out
  of the horizon — so a point is guaranteed gone once it is older than
  ``T + T/4``, and ``advance_time`` alone (no new points) also expires.

Every stored sample remains a genuine input point from a live bucket,
so the windowed hull never overshoots the true hull of the covered
points, and the scheme's one-sided error bound (Theorem 5.4 for the
adaptive hull, degraded by at most a constant factor through the
merges) holds against the covered window's true hull.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from ..core.base import HullSummary, coerce_point
from ..core.batch import DEFAULT_CHUNK, as_point_array, as_ts_array
from ..geometry.vec import Point, dot, unit
from ..obs import metrics as OBS
from ..streams.io import summary_from_state, summary_state
from .config import WindowConfig

__all__ = ["WindowedHullSummary", "windowed_factory"]


class _Bucket:
    """One sealed stream segment: a summary plus its count/time extent."""

    __slots__ = ("summary", "count", "level", "start_ts", "end_ts")

    def __init__(self, summary, count, level, start_ts, end_ts):
        self.summary = summary
        self.count = count
        self.level = level
        self.start_ts = start_ts
        self.end_ts = end_ts


#: Canonicalisation memo: (scheme name, config JSON) -> canonical spec.
#: A windowed engine constructs one summary per key, and re-probing the
#: scheme per key would double every key's construction cost; distinct
#: scheme configs per process are few, so the memo stays tiny.
_CANONICAL_SPECS: Dict[tuple, object] = {}


def _coerce_scheme(scheme):
    """Normalise any factory-ish scheme description to a *canonical*
    SummarySpec: one probe build turns partial constructor kwargs
    (``{"r": 16}``) into the full ``get_config()``, so window configs
    compare equal across tiers no matter which form created them.
    Spec-shaped inputs are memoised, so per-key re-coercion of an
    already-canonical spec costs a dict lookup, not a probe build."""
    import json

    # Lazy import: SummarySpec lives in the shard layer, which imports
    # the engine (and hence this package) at module level.
    from ..shard.spec import SummarySpec

    if isinstance(scheme, dict):
        scheme = SummarySpec.from_doc(scheme)
    elif isinstance(scheme, type) and issubclass(scheme, HullSummary):
        scheme = SummarySpec.of(scheme)
    if isinstance(scheme, SummarySpec):
        if scheme.scheme == WindowedHullSummary.__name__:
            raise TypeError("cannot window a windowed summary")
        key = (scheme.scheme, json.dumps(scheme.config, sort_keys=True))
        cached = _CANONICAL_SPECS.get(key)
        if cached is not None:
            return cached
        probe = scheme.build()
    elif isinstance(scheme, HullSummary):
        key = None
        probe = scheme
    elif callable(scheme):
        key = None
        probe = scheme()
        if not isinstance(probe, HullSummary):
            raise TypeError(
                f"scheme factory produced {type(probe).__name__}, "
                "expected a HullSummary"
            )
    else:
        raise TypeError(
            "scheme must be a SummarySpec, a registered summary "
            "class/instance/factory, or a spec doc; got "
            f"{type(scheme).__name__}"
        )
    if isinstance(probe, WindowedHullSummary):
        raise TypeError("cannot window a windowed summary")
    canonical = SummarySpec.for_summary(probe)
    canonical_key = (
        canonical.scheme,
        json.dumps(canonical.config, sort_keys=True),
    )
    _CANONICAL_SPECS[canonical_key] = canonical
    if key is not None:
        _CANONICAL_SPECS[key] = canonical
    return canonical


def windowed_factory(scheme, config: WindowConfig):
    """A zero-argument factory of windowed summaries under ``config``.

    This is how both engine tiers wrap their per-key factories: the
    scheme is coerced to a :class:`~repro.shard.spec.SummarySpec`
    *once* here (one probe build), not once per key, and the window
    policy is threaded in one place so the tiers cannot drift.
    """
    spec = _coerce_scheme(scheme)

    def build() -> "WindowedHullSummary":
        return WindowedHullSummary(
            spec,
            last_n=config.last_n,
            horizon=config.horizon,
            head_capacity=config.head_capacity,
            level_width=config.level_width,
            warm_start=config.warm_start,
        )

    return build


class WindowedHullSummary(HullSummary):
    """Hull summary of (approximately) the most recent window of a stream.

    Args:
        scheme: which summary each bucket gets — a
            :class:`~repro.shard.spec.SummarySpec`, a registered
            :class:`~repro.core.base.HullSummary` class, instance, or
            zero-argument factory (e.g. ``lambda: AdaptiveHull(32)``),
            or a spec doc dict.
        last_n / horizon / head_capacity / level_width: the window
            policy — see :class:`~repro.window.WindowConfig`.

    Count windows take plain :meth:`insert` calls; time windows require
    an explicit, non-decreasing ``ts`` per insert and support
    :meth:`advance_time` for expiry without new data.  The summary
    quacks like any :class:`HullSummary` (``hull``/``samples``/
    ``insert_many``/snapshots), so it drops into the engines, trackers,
    and the query layer; direct cross-window :meth:`merge` is refused —
    merge :meth:`merged_view` snapshots instead (that is how the shard
    tier reduces windowed global queries).
    """

    name = "windowed"

    def __init__(
        self,
        scheme,
        *,
        last_n: Optional[int] = None,
        horizon: Optional[float] = None,
        head_capacity: Optional[int] = None,
        level_width: int = 2,
        warm_start: bool = False,
    ):
        self._cfg = WindowConfig(
            last_n=last_n,
            horizon=horizon,
            head_capacity=head_capacity,
            level_width=level_width,
            warm_start=warm_start,
        )
        self._spec = _coerce_scheme(scheme)
        self._head_capacity = self._cfg.effective_head_capacity
        if self._cfg.timed:
            self._count_cap = None
            self._span_cap = self._cfg.horizon / 4.0
        else:
            self._count_cap = max(self._head_capacity, self._cfg.last_n // 4)
            self._span_cap = None
        self._sealed: List[_Bucket] = []  # oldest first
        self._sealed_total = 0
        self._head: HullSummary = self._spec.build()
        self._head_count = 0
        # Warm-start bookkeeping: the previous bucket's hull vertices
        # offered to the fresh head, and the (live) bucket they came
        # from.  Seeds are purged the moment the head seals or the
        # source bucket leaves the window, so they can never outlive
        # the stream points they are.
        self._head_seeds: Optional[frozenset] = None
        self._head_seed_bucket: Optional[_Bucket] = None
        self._head_start_ts: Optional[float] = None
        self._head_end_ts: Optional[float] = None
        self._now: Optional[float] = None
        self._sealed_cache: Optional[HullSummary] = None
        self._view: Optional[HullSummary] = None
        self._view_generation = -1
        self.points_seen = 0
        self.buckets_sealed = 0
        self.buckets_merged = 0
        self.buckets_expired = 0

    # -- introspection -----------------------------------------------------

    @property
    def config(self) -> WindowConfig:
        """The window policy this summary enforces."""
        return self._cfg

    @property
    def spec(self):
        """The per-bucket summary scheme (as a SummarySpec)."""
        return self._spec

    @property
    def covered_count(self) -> int:
        """Points currently held in live buckets — the actual window
        length (between the target and target + slack; live points are
        always exactly the most recent ``covered_count`` of the
        stream)."""
        return self._sealed_total + self._head_count

    @property
    def bucket_count(self) -> int:
        """Live buckets, counting a non-empty head."""
        return len(self._sealed) + (1 if self._head_count else 0)

    @property
    def last_ts(self) -> Optional[float]:
        """Latest time observed (insert ``ts`` or ``advance_time``)."""
        return self._now

    def buckets(self) -> List[Dict]:
        """Read-only bucket ledger, oldest first (diagnostics/CLI)."""
        out = [
            {
                "count": b.count,
                "level": b.level,
                "start_ts": b.start_ts,
                "end_ts": b.end_ts,
                "samples": b.summary.sample_size,
            }
            for b in self._sealed
        ]
        if self._head_count:
            out.append(
                {
                    "count": self._head_count,
                    "level": -1,  # the open head
                    "start_ts": self._head_start_ts,
                    "end_ts": self._head_end_ts,
                    "samples": self._head.sample_size,
                }
            )
        return out

    # -- ingestion ---------------------------------------------------------

    def insert(self, p: Point, ts: Optional[float] = None) -> bool:
        """Process one stream point (``ts`` required for time windows).

        Raises:
            ValueError: on non-finite points, a missing/decreasing
                timestamp (time windows enforce monotonic event time).
        """
        p = coerce_point(p)
        ts = self._check_ts(ts)
        if (
            self._span_cap is not None
            and self._head_count
            and ts - self._head_start_ts > self._span_cap
        ):
            self._seal_head()
        changed = self._head.insert(p)
        self._note_head_point(ts)
        if self._head_count >= self._head_capacity:
            self._seal_head()
        self._expire()
        if changed:
            self._bump_generation()
        return changed

    def insert_many(
        self, points, chunk: int = DEFAULT_CHUNK, ts=None
    ) -> int:
        """Batch ingestion; returns the summary-changing point count.

        ``ts`` may be None (count windows), one timestamp for the whole
        batch, or a parallel length-``n`` non-decreasing sequence.  The
        batch is validated atomically before any point lands; slices
        are fed to the head bucket's own (vectorised)
        :meth:`insert_many` between seals.
        """
        arr = as_point_array(points)
        n = len(arr)
        ts_arr = self._check_ts_batch(ts, n)
        if n == 0:
            return 0
        changed = 0
        pos = 0
        while pos < n:
            room = self._head_capacity - self._head_count
            if room <= 0:
                self._seal_head()
                continue
            end = pos + min(room, n - pos)
            if ts_arr is not None and self._span_cap is not None:
                start = (
                    self._head_start_ts
                    if self._head_count
                    else float(ts_arr[pos])
                )
                limit = int(
                    np.searchsorted(
                        ts_arr, start + self._span_cap, side="right"
                    )
                )
                if limit <= pos:
                    if self._head_count:
                        self._seal_head()
                        continue
                    limit = pos + 1  # one point never exceeds the span
                end = min(end, limit)
            changed += self._head.insert_many(arr[pos:end], chunk=chunk)
            count = end - pos
            if ts_arr is not None:
                if self._head_count == 0:
                    self._head_start_ts = float(ts_arr[pos])
                self._head_end_ts = float(ts_arr[end - 1])
                self._now = float(ts_arr[end - 1])
            self._head_count += count
            self.points_seen += count
            pos = end
            if self._head_count >= self._head_capacity:
                self._seal_head()
            self._expire()
        if changed:
            self._bump_generation()
        return changed

    def advance_time(self, now: float) -> int:
        """Advance the window clock without new data; expire stale
        buckets.  Returns how many buckets were dropped.  ``now``
        earlier than the latest observed time is clamped (per-key event
        time may run ahead of a broadcast wall clock).

        Raises:
            ValueError: on count-based windows (no clock) or a
                non-finite ``now``.
        """
        if not self._cfg.timed:
            raise ValueError("advance_time requires a time-based window")
        now = float(now)
        if not math.isfinite(now):
            raise ValueError("advance_time requires a finite timestamp")
        if self._now is None or now > self._now:
            self._now = now
        before = self.buckets_expired
        self._expire()
        return self.buckets_expired - before

    # -- queries -----------------------------------------------------------

    def merged_view(self) -> HullSummary:
        """One ordinary summary covering the live window (cached).

        The full query layer — ``diameter``, ``width``,
        ``DirectionalExtentIndex`` — runs on it unchanged.  Treat it as
        read-only: it is rebuilt lazily (sealed buckets fold into a
        churn-invalidated sub-cache, so a rebuild after plain inserts
        costs two merges, not one per bucket) and callers may
        :meth:`~repro.core.base.HullSummary.merge` it into their own
        summaries (merging never mutates its right operand).
        """
        if self._view is not None and self._view_generation == self.generation:
            return self._view
        view = self._spec.build()
        view.merge(self._sealed_merged())
        if self._head_count:
            view.merge(self._head)
        self._view = view
        self._view_generation = self.generation
        return view

    def hull(self) -> List[Point]:
        """Approximate hull of the live window (CCW convex polygon)."""
        return self.merged_view().hull()

    def samples(self) -> List[Point]:
        """Stored samples of the merged view (all are live input points)."""
        return self.merged_view().samples()

    @property
    def sample_size(self) -> int:
        """Points actually stored across the live buckets.

        O(buckets), no view construction — the engine's ``stats()``
        calls this per key per call, and building a merged view just to
        count (which also dedups, under-reporting storage) would make
        stats a hull-merge workload.
        """
        total = sum(b.summary.sample_size for b in self._sealed)
        if self._head_count:
            total += self._head.sample_size
        return total

    def support(self, theta: float) -> float:
        """Inner bound on the window's support function at angle
        ``theta`` (``-inf`` while the window is empty)."""
        u = unit(theta)
        return max(
            (dot(s, u) for s in self.merged_view().samples()),
            default=-math.inf,
        )

    # -- merging -----------------------------------------------------------

    def merge(self, other) -> "HullSummary":
        """Refused: two windows' bucket timelines cannot interleave
        after the fact.  Merge :meth:`merged_view` snapshots instead —
        that is how the engines reduce windowed global queries."""
        raise TypeError(
            "windowed summaries do not merge; merge their merged_view() "
            "snapshots instead"
        )

    # -- persistence ---------------------------------------------------------

    def get_config(self) -> Dict:
        """Constructor kwargs recreating an equivalent empty window.

        ``max_delay`` (bounded-lateness tolerance) is engine-level
        policy, not summary state — the summary itself is always
        strictly monotonic and only ever sees watermark-released
        sorted runs — so it is not part of the summary config.
        """
        cfg = self._cfg.to_doc()
        cfg.pop("max_delay", None)
        return {"scheme": self._spec.to_doc(), **cfg}

    def state_dict(self) -> Dict:
        """JSON-serialisable snapshot: every bucket in the
        :mod:`repro.streams.io` summary format plus the window ledger."""
        return {
            "now": self._now,
            "points_seen": self.points_seen,
            "buckets_sealed": self.buckets_sealed,
            "buckets_merged": self.buckets_merged,
            "buckets_expired": self.buckets_expired,
            "head": {
                "count": self._head_count,
                "start_ts": self._head_start_ts,
                "end_ts": self._head_end_ts,
                "state": summary_state(self._head),
            },
            "head_seeds": (
                sorted([p[0], p[1]] for p in self._head_seeds)
                if self._head_seeds is not None
                else None
            ),
            "head_seed_bucket": (
                self._sealed.index(self._head_seed_bucket)
                if self._head_seed_bucket is not None
                else None
            ),
            "sealed": [
                {
                    "count": b.count,
                    "level": b.level,
                    "start_ts": b.start_ts,
                    "end_ts": b.end_ts,
                    "state": summary_state(b.summary),
                }
                for b in self._sealed
            ],
        }

    def load_state(self, state: Dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this (fresh)
        window: identical buckets, counters, and clock."""
        self._sealed = [
            _Bucket(
                summary_from_state(doc["state"], factory=self._spec.build),
                int(doc["count"]),
                int(doc["level"]),
                doc["start_ts"],
                doc["end_ts"],
            )
            for doc in state["sealed"]
        ]
        self._sealed_total = sum(b.count for b in self._sealed)
        head = state["head"]
        self._head = summary_from_state(
            head["state"], factory=self._spec.build
        )
        self._head_count = int(head["count"])
        self._head_start_ts = head["start_ts"]
        self._head_end_ts = head["end_ts"]
        seeds = state.get("head_seeds")
        seed_idx = state.get("head_seed_bucket")
        if seeds is not None and seed_idx is not None:
            self._head_seeds = frozenset(
                (float(p[0]), float(p[1])) for p in seeds
            )
            self._head_seed_bucket = self._sealed[int(seed_idx)]
        else:
            self._head_seeds = None
            self._head_seed_bucket = None
        self._now = state["now"]
        self.points_seen = int(state["points_seen"])
        self.buckets_sealed = int(state["buckets_sealed"])
        self.buckets_merged = int(state["buckets_merged"])
        self.buckets_expired = int(state["buckets_expired"])
        self._sealed_cache = None
        self._view = None
        self._bump_generation()

    # -- internals -----------------------------------------------------------

    def _check_ts(self, ts) -> Optional[float]:
        if ts is None:
            if self._cfg.timed:
                raise ValueError(
                    "time-based windows require an explicit ts per insert"
                )
            return None
        ts = float(ts)
        if not math.isfinite(ts):
            raise ValueError("ts must be finite")
        if self._now is not None and ts < self._now:
            raise ValueError(
                f"timestamps must be non-decreasing: got {ts} after "
                f"{self._now}"
            )
        return ts

    def _check_ts_batch(self, ts, n: int) -> Optional[np.ndarray]:
        ts_arr = as_ts_array(ts, n)
        if ts_arr is None:
            if self._cfg.timed and n:
                raise ValueError(
                    "time-based windows require explicit ts for every batch"
                )
            return None
        if n == 0:
            return ts_arr
        if not np.isfinite(ts_arr).all():
            raise ValueError("ts must be finite")
        if (np.diff(ts_arr) < 0.0).any():
            raise ValueError("ts must be non-decreasing within a batch")
        if self._now is not None and ts_arr[0] < self._now:
            raise ValueError(
                f"timestamps must be non-decreasing: got {ts_arr[0]} "
                f"after {self._now}"
            )
        return ts_arr

    def _note_head_point(self, ts: Optional[float]) -> None:
        if ts is not None:
            if self._head_count == 0:
                self._head_start_ts = ts
            self._head_end_ts = ts
            self._now = ts
        self._head_count += 1
        self.points_seen += 1

    def _seal_head(self) -> None:
        if self._head_count == 0:
            return
        # Seeds never enter a sealed bucket: the sealed summary must
        # hold only its own segment's points, or expiry would serve
        # foreign (possibly already-forgotten) extremes.
        self._purge_head_seeds()
        bucket = _Bucket(
            self._head,
            self._head_count,
            0,
            self._head_start_ts,
            self._head_end_ts,
        )
        self._sealed.append(bucket)
        self._sealed_total += self._head_count
        self._reset_head()
        self.buckets_sealed += 1
        OBS.WINDOW_BUCKET_SEALS.inc()
        self._sealed_cache = None
        self._bump_generation()
        if self._cfg.warm_start:
            self._seed_head(bucket)
        self._coalesce()

    def _reset_head(self) -> None:
        self._head = self._spec.build()
        self._head_count = 0
        self._head_start_ts = None
        self._head_end_ts = None
        self._head_seeds = None
        self._head_seed_bucket = None

    def _seed_head(self, source: _Bucket) -> None:
        """Warm-start the fresh head with the previous bucket's hull.

        A cold head's young hull mutates on most incoming points (the
        ~4x ingest gap the ROADMAP names); offering the just-sealed
        bucket's hull vertices first gives the containment filter a
        full-size hull immediately, so the bulk of the next segment is
        discarded vectorised.  The seeds are genuine live stream points
        (they belong to ``source``, which is live); they are tracked so
        :meth:`_purge_head_seeds` can remove them before they could
        outlive their bucket.

        The inherent trade-off (why ``warm_start`` is opt-in): a
        genuine point discarded because the *seed* hull covered it is
        never stored, so its coverage rests on the seed source bucket;
        once that bucket expires, the window's error against the exact
        live-window hull can transiently exceed the cold-head bound —
        by at most the expired bucket's extent, healing once the
        seeded bucket itself expires.  Soundness is never affected:
        every served vertex is a live input point.
        """
        seeds = source.summary.hull()
        if len(seeds) < 3:
            return  # a degenerate hull certifies nothing — stay cold
        self._head.insert_many(seeds)
        self._head_seeds = frozenset(seeds)
        self._head_seed_bucket = source

    def _purge_head_seeds(self) -> None:
        """Rebuild the open head from its genuine samples only.

        Called when the head seals and when the seeds' source bucket
        leaves the window.  Every retained sample is a genuine input
        point of the head's own segment afterwards, which is what keeps
        the windowed hull an inner approximation of the *live* points.
        Genuine points the seeded filter already discarded are gone
        (see :meth:`_seed_head` for the coverage trade-off); a genuine
        point exactly equal to a seed is likewise dropped — both are
        strictly conservative losses, never unsound ones.
        """
        if self._head_seeds is None:
            return
        seeds = self._head_seeds
        self._head_seeds = None
        self._head_seed_bucket = None
        genuine = [s for s in self._head.samples() if s not in seeds]
        fresh = self._spec.build()
        if genuine:
            fresh.insert_many(genuine)
        self._head = fresh
        self._bump_generation()

    def _can_merge(self, older: _Bucket, newer: _Bucket) -> bool:
        if (
            self._count_cap is not None
            and older.count + newer.count > self._count_cap
        ):
            return False
        if (
            self._span_cap is not None
            and older.start_ts is not None
            and newer.end_ts is not None
            and newer.end_ts - older.start_ts > self._span_cap
        ):
            return False
        return True

    def _coalesce(self) -> None:
        """Exponential-histogram compaction: while some size class holds
        more than ``level_width`` buckets, merge its two oldest
        (adjacent — levels are non-increasing oldest-to-newest) into
        the next class.  Merges that would break the count/span caps
        are refused, which is what keeps expiry granular."""
        while True:
            by_level: Dict[int, List[int]] = {}
            for i, b in enumerate(self._sealed):
                by_level.setdefault(b.level, []).append(i)
            merged = False
            for level in sorted(by_level):
                idxs = by_level[level]
                if len(idxs) <= self._cfg.level_width:
                    continue
                i = idxs[0]
                older, newer = self._sealed[i], self._sealed[i + 1]
                if newer.level != level or not self._can_merge(older, newer):
                    continue
                older.summary.merge(newer.summary)
                older.count += newer.count
                if newer.end_ts is not None:
                    older.end_ts = newer.end_ts
                older.level += 1
                if newer is self._head_seed_bucket:
                    # The seeds' source segment now lives inside the
                    # absorbing bucket; follow it so the purge-on-expiry
                    # trigger keeps firing at the right moment.
                    self._head_seed_bucket = older
                del self._sealed[i + 1]
                self.buckets_merged += 1
                OBS.WINDOW_BUCKET_MERGES.inc()
                self._sealed_cache = None
                merged = True
                break
            if not merged:
                return

    def _expire(self) -> None:
        if self._cfg.timed:
            if self._now is None:
                return
            cutoff = self._now - self._cfg.horizon
            while (
                self._sealed
                and self._sealed[0].end_ts is not None
                and self._sealed[0].end_ts < cutoff
            ):
                self._drop_oldest()
            if (
                self._head_count
                and self._head_end_ts is not None
                and self._head_end_ts < cutoff
            ):
                # The open head itself went stale (advance_time with no
                # new data): drop its contents as one expiry.
                self._reset_head()
                self.buckets_expired += 1
                OBS.WINDOW_BUCKET_EXPIRIES.inc()
                self._bump_generation()
        else:
            n = self._cfg.last_n
            while (
                self._sealed
                and self.covered_count - self._sealed[0].count >= n
            ):
                self._drop_oldest()

    def _drop_oldest(self) -> None:
        b = self._sealed.pop(0)
        self._sealed_total -= b.count
        self.buckets_expired += 1
        OBS.WINDOW_BUCKET_EXPIRIES.inc()
        self._sealed_cache = None
        if b is self._head_seed_bucket:
            # The head's seeds just left the window with their bucket:
            # purge them so the head can never serve expired points.
            self._purge_head_seeds()
        self._bump_generation()

    def _sealed_merged(self) -> HullSummary:
        if self._sealed_cache is None:
            folded = self._spec.build()
            for b in self._sealed:
                folded.merge(b.summary)
            self._sealed_cache = folded
        return self._sealed_cache

"""Window policy as data.

:class:`WindowConfig` is the engine-facing description of a sliding
window: count-based (``last_n``) or time-based (``horizon``), plus the
bucketing knobs.  It is a plain frozen dataclass so it can be passed to
:class:`~repro.engine.StreamEngine`, pickled to shard workers, and
embedded in snapshot documents (:meth:`to_doc`/:meth:`from_doc`),
mirroring how :class:`~repro.shard.spec.SummarySpec` describes a
summary scheme.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

__all__ = ["WindowConfig"]


@dataclass(frozen=True)
class WindowConfig:
    """Sliding-window policy for a :class:`WindowedHullSummary`.

    Exactly one of ``last_n`` (count-based: the hull of roughly the
    last N points) and ``horizon`` (time-based: the hull of roughly the
    last T time units, driven by explicit insert timestamps) must be
    set.

    Args:
        last_n: window length in points (>= 1).
        horizon: window length in time units (> 0, finite).
        head_capacity: points accumulated in the open head bucket
            before it is sealed; defaults to ``max(1, last_n // 8)``
            (capped at 4096) for count windows and 256 for time
            windows.  Smaller values track the window more tightly at
            the cost of more bucket churn.
        level_width: sealed buckets tolerated per size class before the
            two oldest coalesce (>= 1; the exponential-histogram fanout
            parameter — bucket count grows with
            ``level_width * log(n)``).
        max_delay: bounded-lateness tolerance for out-of-order event
            time (time windows only).  ``None`` (the default) keeps the
            strict monotonic-ts contract; a positive finite value lets
            records arrive up to ``max_delay`` time units behind the
            newest event time seen — the engines buffer them in a
            :class:`~repro.engine.time.ReorderBuffer` and release
            sorted runs once the watermark (``max ts - max_delay``)
            passes, while records later than the watermark are counted
            and dropped.  See :mod:`repro.engine.time`.
        warm_start: opt-in ingest accelerator — seed every fresh head
            bucket with the previous bucket's hull vertices so the
            young hull's containment filter starts hot.  The seeds are
            purged when the head seals and when their source bucket
            expires, so the windowed hull stays a sound inner
            approximation (it never serves an expired point).  The
            trade-off: genuine points discarded *because* the seed
            hull covered them are not stored, so after the seed source
            expires the window's error bound against the exact live
            window hull can transiently exceed the cold-head bound —
            by at most the expired bucket's extent, self-healing once
            the seeded bucket itself expires.  Off by default: the
            strict Theorem 5.4-style window bound is the library's
            headline guarantee.  See
            :class:`~repro.window.WindowedHullSummary`.
        on_late: optional dead-letter callback
            ``callback(key, points, ts, watermark)`` the hosting engine
            invokes with each key's later-than-watermark slice before
            dropping it (requires ``max_delay``).  Callbacks are
            runtime-only policy: they are excluded from comparison and
            from :meth:`to_doc` (snapshots restore with count-only
            accounting unless the restorer re-attaches a hook), and the
            shard parent strips them before shipping the config to
            workers (lateness is judged parent-side).
    """

    last_n: Optional[int] = None
    horizon: Optional[float] = None
    head_capacity: Optional[int] = None
    level_width: int = 2
    warm_start: bool = False
    max_delay: Optional[float] = None
    on_late: Optional[Callable] = field(default=None, compare=False)

    def __post_init__(self):
        if (self.last_n is None) == (self.horizon is None):
            raise ValueError(
                "exactly one of last_n (count window) and horizon "
                "(time window) must be set"
            )
        if self.last_n is not None and self.last_n < 1:
            raise ValueError("last_n must be >= 1")
        if self.horizon is not None and not (
            math.isfinite(self.horizon) and self.horizon > 0.0
        ):
            raise ValueError("horizon must be positive and finite")
        if self.head_capacity is not None and self.head_capacity < 1:
            raise ValueError("head_capacity must be >= 1")
        if self.level_width < 1:
            raise ValueError("level_width must be >= 1")
        if self.max_delay is not None:
            if self.horizon is None:
                raise ValueError(
                    "max_delay (bounded lateness) requires a time-based "
                    "window (horizon)"
                )
            if not (math.isfinite(self.max_delay) and self.max_delay > 0.0):
                raise ValueError("max_delay must be positive and finite")
        if self.on_late is not None:
            if self.max_delay is None:
                raise ValueError(
                    "on_late (dead-letter hook) requires bounded lateness "
                    "(max_delay) — the strict policy raises on late "
                    "records instead of dropping them"
                )
            if not callable(self.on_late):
                raise TypeError("on_late must be callable")

    @property
    def timed(self) -> bool:
        """True for time-based windows (inserts require timestamps)."""
        return self.horizon is not None

    @property
    def time_policy(self):
        """The :class:`~repro.engine.time.TimePolicy` this window
        implies (strict unless ``max_delay`` is set)."""
        # Lazy import: the engine package imports this module.
        from ..engine.time import TimePolicy

        return TimePolicy(max_delay=self.max_delay)

    @property
    def effective_head_capacity(self) -> int:
        """The head-bucket seal threshold after defaulting."""
        if self.head_capacity is not None:
            return self.head_capacity
        if self.last_n is not None:
            return max(1, min(self.last_n // 8, 4096))
        return 256

    @classmethod
    def coerce(cls, window) -> Optional["WindowConfig"]:
        """Accept a config, a kwargs dict, or None (no window)."""
        if window is None or isinstance(window, cls):
            return window
        if isinstance(window, dict):
            return cls(**window)
        raise TypeError(
            f"expected a WindowConfig, a kwargs dict, or None; "
            f"got {type(window).__name__}"
        )

    def to_doc(self) -> Dict:
        """JSON-compatible form for snapshot headers."""
        return {
            "last_n": self.last_n,
            "horizon": self.horizon,
            "head_capacity": self.head_capacity,
            "level_width": self.level_width,
            "warm_start": self.warm_start,
            "max_delay": self.max_delay,
        }

    @classmethod
    def from_doc(cls, doc: Dict) -> "WindowConfig":
        """Inverse of :meth:`to_doc` (pre-warm-start docs were cold,
        pre-event-time docs were strict)."""
        max_delay = doc.get("max_delay")
        return cls(
            last_n=doc.get("last_n"),
            horizon=doc.get("horizon"),
            head_capacity=doc.get("head_capacity"),
            level_width=int(doc.get("level_width", 2)),
            warm_start=bool(doc.get("warm_start", False)),
            max_delay=float(max_delay) if max_delay is not None else None,
        )

"""Sliding-window & time-decayed hull summaries (bucketed merge algebra).

See :mod:`repro.window.windowed` for the design.  The engines accept a
:class:`WindowConfig` (``StreamEngine(..., window=WindowConfig(last_n=10_000))``)
to give every keyed stream its own :class:`WindowedHullSummary`.
"""

from .config import WindowConfig
from .windowed import WindowedHullSummary, windowed_factory

__all__ = ["WindowConfig", "WindowedHullSummary", "windowed_factory"]

"""Command-line interface for the reproduction harness.

Usage::

    python -m repro table1 [--section disk|square|ellipse|changing]
                           [--n N] [--r R] [--seed S]
    python -m repro fig10  [--out DIR] [--n N]
    python -m repro scaling [--n N]
    python -m repro lower-bound
    python -m repro work
    python -m repro demo   [--n N]
    python -m repro engine [--keys K] [--n N] [--r R] [--batch B]
                           [--snapshot PATH] [--seed S]
    python -m repro shard  [--keys K] [--n N] [--r R] [--batch B]
                           [--workers W] [--snapshot PATH] [--seed S]
    python -m repro window [--keys K] [--n N] [--r R] [--batch B]
                           [--last-n N | --horizon T] [--workers W]
                           [--snapshot PATH] [--seed S]

Every subcommand prints the corresponding table/series from the paper's
evaluation; ``demo`` runs a quick end-to-end summary with queries,
``engine`` exercises the multi-stream batch engine: K keyed streams,
shuffled record batches, per-key hulls, and (optionally) a snapshot/
restore round trip; ``shard`` runs the same keyed workload through the
multi-process :class:`~repro.shard.ShardedEngine` — consistent-hash
routing across W workers, global merged-hull queries, and a whole-ring
snapshot/restore check; ``window`` streams drifting clusters through a
sliding-window engine (count- or time-based) and contrasts the live
window's hull/diameter with the ever-growing all-time hull.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction harness for 'Adaptive sampling for geometric "
            "problems over data streams' (Hershberger & Suri, PODS 2004)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", help="reproduce (part of) Table 1")
    t1.add_argument(
        "--section",
        choices=["disk", "square", "ellipse", "changing"],
        action="append",
        help="restrict to one or more sections (default: all)",
    )
    t1.add_argument("--n", type=int, default=20_000, help="stream length")
    t1.add_argument("--r", type=int, default=16, help="adaptive parameter r")
    t1.add_argument("--seed", type=int, default=0)

    fig = sub.add_parser("fig10", help="regenerate the Fig. 10 SVG panels")
    fig.add_argument("--out", default="fig10_output", help="output directory")
    fig.add_argument("--n", type=int, default=20_000)

    sc = sub.add_parser("scaling", help="error scaling sweep (Theorem 5.4)")
    sc.add_argument("--n", type=int, default=12_000)
    sc.add_argument(
        "--r-values", type=int, nargs="+", default=[8, 16, 32, 64]
    )

    sub.add_parser("lower-bound", help="Theorem 5.5 lower-bound sweep")
    sub.add_parser("work", help="amortized per-point work counters")

    demo = sub.add_parser("demo", help="summarise a stream and run queries")
    demo.add_argument("--n", type=int, default=50_000)
    demo.add_argument("--r", type=int, default=32)

    eng = sub.add_parser(
        "engine", help="multi-stream batch ingestion engine demo"
    )
    eng.add_argument("--keys", type=int, default=200, help="keyed streams")
    eng.add_argument(
        "--n", type=int, default=200_000, help="total records across all keys"
    )
    eng.add_argument("--r", type=int, default=32, help="adaptive parameter r")
    eng.add_argument(
        "--batch", type=int, default=20_000, help="records per ingest batch"
    )
    eng.add_argument(
        "--snapshot", default=None, help="write a snapshot here and verify restore"
    )
    eng.add_argument("--seed", type=int, default=0)

    sh = sub.add_parser(
        "shard", help="sharded multi-process ingestion engine demo"
    )
    sh.add_argument("--keys", type=int, default=64, help="keyed streams")
    sh.add_argument(
        "--n", type=int, default=100_000, help="total records across all keys"
    )
    sh.add_argument("--r", type=int, default=32, help="adaptive parameter r")
    sh.add_argument(
        "--batch", type=int, default=20_000, help="records per ingest batch"
    )
    sh.add_argument(
        "--workers", type=int, default=2, help="shard worker processes"
    )
    sh.add_argument(
        "--snapshot", default=None,
        help="write a whole-ring snapshot here and verify restore",
    )
    sh.add_argument("--seed", type=int, default=0)

    win = sub.add_parser(
        "window", help="sliding-window hull engine demo (drifting clusters)"
    )
    win.add_argument("--keys", type=int, default=16, help="keyed streams")
    win.add_argument(
        "--n", type=int, default=100_000, help="total records across all keys"
    )
    win.add_argument("--r", type=int, default=32, help="adaptive parameter r")
    win.add_argument(
        "--batch", type=int, default=10_000, help="records per ingest batch"
    )
    mode = win.add_mutually_exclusive_group()
    mode.add_argument(
        "--last-n", type=int, default=None,
        help="count-based window per key (default 5000)",
    )
    mode.add_argument(
        "--horizon", type=float, default=None,
        help="time-based window in time units (records carry ts)",
    )
    win.add_argument(
        "--workers", type=int, default=0,
        help="shard worker processes (0 = in-process StreamEngine)",
    )
    win.add_argument(
        "--snapshot", default=None,
        help="write an engine snapshot here and verify restore",
    )
    win.add_argument("--seed", type=int, default=0)

    return parser


def _cmd_table1(args: argparse.Namespace) -> int:
    from .experiments import format_table1, run_table1

    rows = run_table1(
        n=args.n, r=args.r, seed=args.seed, sections=args.section
    )
    print(format_table1(rows))
    return 0


def _cmd_fig10(args: argparse.Namespace) -> int:
    from .experiments import make_fig10

    adaptive, uniform = make_fig10(args.out, n=args.n)
    print(f"wrote {adaptive}")
    print(f"wrote {uniform}")
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from .experiments import error_scaling, loglog_slope

    points = error_scaling(args.r_values, n=args.n)
    print(f"{'r':>5} {'scheme':>10} {'error':>12} {'samples':>8}")
    for p in points:
        print(f"{p.r:>5} {p.scheme:>10} {p.error:>12.6f} {p.sample_size:>8}")
    print()
    print(f"log-log slope adaptive: {loglog_slope(points, 'adaptive'):+.2f}  (theory -2)")
    print(f"log-log slope uniform : {loglog_slope(points, 'uniform'):+.2f}  (theory -1)")
    return 0


def _cmd_lower_bound(_args: argparse.Namespace) -> int:
    from .experiments import lower_bound_sweep

    points = lower_bound_sweep([8, 16, 32, 64, 128])
    print(f"{'r':>5} {'optimal':>12} {'adaptive':>12} {'D/r^2':>12}")
    for p in points:
        print(
            f"{p.r:>5} {p.optimal_error:>12.3e} {p.adaptive_error:>12.3e} "
            f"{p.theory:>12.3e}"
        )
    return 0


def _cmd_work(_args: argparse.Namespace) -> int:
    from .experiments import work_per_point

    points = work_per_point([8, 16, 32, 64, 128], n=20_000)
    print(f"{'r':>5} {'processed':>10} {'nodes/pt':>9} {'refine':>7} {'unref':>6}")
    for w in points:
        print(
            f"{w.r:>5} {100 * w.processed_fraction:>9.2f}% "
            f"{w.nodes_visited_per_point:>9.2f} {w.refinements:>7} "
            f"{w.unrefinements:>6}"
        )
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    import math

    from .core import AdaptiveHull
    from .queries import diameter, enclosing_circle, width
    from .streams import as_tuples, ellipse_stream

    hull = AdaptiveHull(args.r)
    for p in as_tuples(ellipse_stream(args.n, a=8.0, b=2.0, rotation=0.4, seed=1)):
        hull.insert(p)
    print(f"points seen  : {hull.points_seen:,}")
    print(f"points stored: {hull.sample_size} (bound {2 * args.r + 1})")
    print(f"diameter     : {diameter(hull):.4f}")
    print(f"width        : {width(hull):.4f}")
    (cx, cy), rad = enclosing_circle(hull)
    print(f"circle       : ({cx:.3f}, {cy:.3f}) r={rad:.4f}")
    print(
        f"error bound  : {16 * math.pi * hull.perimeter / args.r ** 2:.4f} "
        f"(Corollary 5.2)"
    )
    return 0


def _cmd_engine(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from .core import AdaptiveHull
    from .engine import StreamEngine
    from .geometry import area as polygon_area

    if args.keys < 1:
        raise SystemExit("engine: --keys must be >= 1")
    if args.batch < 1:
        raise SystemExit("engine: --batch must be >= 1")
    rng = np.random.default_rng(args.seed)
    keys = np.array([f"stream-{i:04d}" for i in range(args.keys)])
    centers = rng.uniform(-100.0, 100.0, (args.keys, 2))

    engine = StreamEngine(lambda: AdaptiveHull(args.r))
    t0 = time.perf_counter()
    done = 0
    while done < args.n:
        b = min(args.batch, args.n - done)
        idx = rng.integers(0, args.keys, b)
        pts = centers[idx] + rng.normal(0.0, 2.0, (b, 2))
        engine.ingest_arrays(keys[idx], pts)
        done += b
    elapsed = time.perf_counter() - t0

    stats = engine.stats()
    print(f"streams      : {stats.streams}")
    print(f"records      : {stats.points_ingested:,} in {stats.batches_ingested} batches")
    print(f"stored       : {stats.sample_points:,} sample points "
          f"(bound {args.keys * (2 * args.r + 1):,})")
    print(f"maintenance  : {stats.evictions} evictions, "
          f"{stats.bucket_merges} bucket merges, "
          f"{stats.bucket_expiries} bucket expiries")
    print(f"throughput   : {done / elapsed:,.0f} records/sec")
    areas = sorted(
        ((abs(polygon_area(engine.hull(k))), k) for k in engine.keys()),
        reverse=True,
    )
    print("largest hulls:")
    for a, k in areas[:5]:
        print(f"  {k}: area {a:.2f}, {len(engine.hull(k))} vertices")

    if args.snapshot:
        path = engine.snapshot(args.snapshot)
        restored = StreamEngine.restore(path, lambda: AdaptiveHull(args.r))
        ok = all(restored.hull(k) == engine.hull(k) for k in engine.keys())
        print(f"snapshot     : {path} ({path.stat().st_size:,} bytes)")
        print(f"restore check: {len(engine)} keys, identical hulls: {ok}")
        if not ok:
            return 1
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from .shard import ShardedEngine, SummarySpec

    if args.keys < 1:
        raise SystemExit("shard: --keys must be >= 1")
    if args.batch < 1:
        raise SystemExit("shard: --batch must be >= 1")
    if args.workers < 1:
        raise SystemExit("shard: --workers must be >= 1")
    rng = np.random.default_rng(args.seed)
    keys = np.array([f"stream-{i:04d}" for i in range(args.keys)])
    centers = rng.uniform(-100.0, 100.0, (args.keys, 2))
    spec = SummarySpec("AdaptiveHull", {"r": args.r})

    with ShardedEngine(spec, shards=args.workers) as engine:
        t0 = time.perf_counter()
        done = 0
        while done < args.n:
            b = min(args.batch, args.n - done)
            idx = rng.integers(0, args.keys, b)
            pts = centers[idx] + rng.normal(0.0, 2.0, (b, 2))
            engine.ingest_arrays(keys[idx], pts)
            done += b
        elapsed = time.perf_counter() - t0

        stats = engine.stats()
        loads = ", ".join(
            f"shard {i}: {s['streams']} keys / {s['points_ingested']:,} pts"
            for i, s in enumerate(stats.per_shard)
        )
        print(f"workers      : {args.workers}")
        print(f"streams      : {stats.streams}")
        print(f"records      : {stats.points_ingested:,} in "
              f"{stats.batches_ingested} batches")
        print(f"stored       : {stats.sample_points:,} sample points")
        print(f"throughput   : {done / elapsed:,.0f} records/sec")
        print(f"ring load    : {loads}")
        # One whole-ring reduction serves all three global answers.
        from .queries import diameter, width

        merged = engine.merged_summary()
        print(f"global hull  : {len(merged.hull())} vertices over "
              f"{merged.points_seen:,} points")
        print(f"global diam  : {diameter(merged):.4f}")
        print(f"global width : {width(merged):.4f}")

        if args.snapshot:
            path = engine.snapshot(args.snapshot)
            restored = ShardedEngine.restore(path)
            try:
                all_keys = engine.keys()
                ok = all(restored.hull(k) == engine.hull(k) for k in all_keys)
            finally:
                restored.close()
            print(f"snapshot     : {path} ({path.stat().st_size:,} bytes)")
            print(f"restore check: {len(all_keys)} keys, identical hulls: {ok}")
            if not ok:
                return 1
    return 0


def _cmd_window(args: argparse.Namespace) -> int:
    import math
    import time

    import numpy as np

    from .core import AdaptiveHull
    from .queries import diameter
    from .streams import drifting_clusters_stream
    from .window import WindowConfig

    if args.keys < 1:
        raise SystemExit("window: --keys must be >= 1")
    if args.batch < 1:
        raise SystemExit("window: --batch must be >= 1")
    if args.workers < 0:
        raise SystemExit("window: --workers must be >= 0")
    if args.last_n is not None and args.last_n < 1:
        raise SystemExit("window: --last-n must be >= 1")
    if args.horizon is not None and not (
        args.horizon > 0.0 and math.isfinite(args.horizon)
    ):
        raise SystemExit("window: --horizon must be positive and finite")
    if args.last_n is not None:
        window = WindowConfig(last_n=args.last_n)
    elif args.horizon is not None:
        window = WindowConfig(horizon=args.horizon)
    else:
        window = WindowConfig(last_n=5000)

    rng = np.random.default_rng(args.seed)
    pts = drifting_clusters_stream(
        args.n, n_clusters=max(2, args.keys // 4), drift=0.1, seed=args.seed
    )
    keys = np.array([f"stream-{i:04d}" for i in range(args.keys)])[
        rng.integers(0, args.keys, args.n)
    ]
    # One time unit per 1000 records; only sent for time-based windows.
    ts = np.arange(args.n, dtype=np.float64) / 1000.0

    all_time = AdaptiveHull(args.r)  # the contrast: extremes never age out
    all_time.insert_many(pts)  # fed outside the timed region

    def run(engine):
        t0 = time.perf_counter()
        for s in range(0, args.n, args.batch):
            e = min(s + args.batch, args.n)
            kw = {"ts": ts[s:e]} if window.timed else {}
            engine.ingest_arrays(keys[s:e], pts[s:e], **kw)
        return time.perf_counter() - t0

    mode = (
        f"last_n={window.last_n}" if not window.timed
        else f"horizon={window.horizon}"
    )
    if args.workers:
        from .shard import ShardedEngine, SummarySpec

        spec = SummarySpec("AdaptiveHull", {"r": args.r})
        with ShardedEngine(
            spec, shards=args.workers, window=window
        ) as engine:
            elapsed = run(engine)
            stats = engine.stats()
            windowed_diam = engine.diameter()
            merged_hull = engine.merged_hull()
            snapshot_ok = None
            if args.snapshot:
                path = engine.snapshot(args.snapshot)
                restored = ShardedEngine.restore(path)
                try:
                    snapshot_ok = all(
                        restored.hull(k) == engine.hull(k)
                        for k in engine.keys()
                    )
                finally:
                    restored.close()
    else:
        from .engine import StreamEngine

        engine = StreamEngine(lambda: AdaptiveHull(args.r), window=window)
        elapsed = run(engine)
        stats = engine.stats()
        merged = engine.merged_summary()
        merged_hull = merged.hull()
        windowed_diam = diameter(merged) if merged_hull else 0.0
        snapshot_ok = None
        if args.snapshot:
            path = engine.snapshot(args.snapshot)
            restored = StreamEngine.restore(
                path, lambda: AdaptiveHull(args.r)
            )
            snapshot_ok = all(
                restored.hull(k) == engine.hull(k) for k in engine.keys()
            )

    tier = f"sharded x{args.workers}" if args.workers else "in-process"
    print(f"engine       : {tier}, window {mode}, r={args.r}")
    print(f"streams      : {stats.streams}")
    print(f"records      : {stats.points_ingested:,} in "
          f"{stats.batches_ingested} batches")
    print(f"stored       : {stats.sample_points:,} sample points in "
          f"{stats.buckets} buckets")
    print(f"maintenance  : {stats.bucket_merges} bucket merges, "
          f"{stats.bucket_expiries} bucket expiries")
    print(f"throughput   : {args.n / elapsed:,.0f} records/sec")
    print(f"window hull  : {len(merged_hull)} vertices, "
          f"diameter {windowed_diam:.3f}")
    print(f"all-time hull: {len(all_time.hull())} vertices, "
          f"diameter {diameter(all_time):.3f}  <- stale extremes retained")
    if snapshot_ok is not None:
        print(f"restore check: identical hulls: {snapshot_ok}")
        if not snapshot_ok:
            return 1
    return 0


_COMMANDS = {
    "table1": _cmd_table1,
    "fig10": _cmd_fig10,
    "scaling": _cmd_scaling,
    "lower-bound": _cmd_lower_bound,
    "work": _cmd_work,
    "demo": _cmd_demo,
    "engine": _cmd_engine,
    "shard": _cmd_shard,
    "window": _cmd_window,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface for the reproduction harness.

Usage::

    python -m repro table1 [--section disk|square|ellipse|changing]
                           [--n N] [--r R] [--seed S]
    python -m repro fig10  [--out DIR] [--n N]
    python -m repro scaling [--n N]
    python -m repro lower-bound
    python -m repro work
    python -m repro demo   [--n N]
    python -m repro engine [--keys K] [--n N] [--r R] [--batch B]
                           [--snapshot PATH] [--seed S]
    python -m repro shard  [--keys K] [--n N] [--r R] [--batch B]
                           [--workers W] [--replicas N] [--wal-dir DIR]
                           [--snapshot PATH] [--seed S]
    python -m repro window [--keys K] [--n N] [--r R] [--batch B]
                           [--last-n N | --horizon T] [--max-delay D]
                           [--workers W] [--snapshot PATH] [--seed S]
    python -m repro serve run   [--host H] [--port P] [--r R]
                                [--last-n N | --horizon T] [--max-delay D]
                                [--workers W] [--replicas N] [--wal-dir DIR]
                                [--tick SEC] [--duration SEC]
                                [--selfcheck] [--snapshot PATH]
                                [--metrics-port P]
    python -m repro serve bench [--n N] [--keys K] [--batch B] [--r R]
                                [--workers W] [--queries Q]
    python -m repro metrics [--keys K] [--n N] [--r R] [--batch B]
                            [--workers W] [--last-n N | --horizon T]
                            [--max-delay D] [--format prom|json]
                            [--watch SEC] [--seed S]
    python -m repro durable inspect WAL_DIR
    python -m repro durable recover WAL_DIR [--workers W] [--replicas N]
                                    [--snapshot PATH] [--compact]
    python -m repro durable dead-letters WAL_DIR [--limit K]
                                    [--replay] [--truncate]

Every subcommand prints the corresponding table/series from the paper's
evaluation; ``demo`` runs a quick end-to-end summary with queries,
``engine`` exercises the multi-stream batch engine: K keyed streams,
shuffled record batches, per-key hulls, and (optionally) a snapshot/
restore round trip; ``shard`` runs the same keyed workload through the
multi-process :class:`~repro.shard.ShardedEngine` — consistent-hash
routing across W workers, global merged-hull queries, and a whole-ring
snapshot/restore check; ``window`` streams drifting clusters through a
sliding-window engine (count- or time-based) and contrasts the live
window's hull/diameter with the ever-growing all-time hull; ``serve``
is the asyncio front door — ``run`` starts the NDJSON TCP server over
either engine tier, ``bench`` measures ingest throughput and query
latency through the async facade and the TCP loop against direct
synchronous calls (with a bit-identical parity check); ``metrics``
runs a keyed workload through either tier and dumps (or, with
``--watch``, periodically re-prints per-second *rates* from a scrape
history of) the :mod:`repro.obs` registry as a Prometheus text page or
a JSON snapshot; ``durable`` operates on a write-ahead log directory —
``inspect`` summarises segments/snapshots/tail without replaying,
``recover`` rebuilds the engine (snapshot + tail replay, bit-identical
by determinism) and reports what came back, ``dead-letters`` lists and
optionally redrives the later-than-watermark records the bounded-
lateness window dropped.  ``--wal-dir`` on ``shard``/``serve run``
makes ingest durable (and recovers first when the directory already
holds a log); ``--replicas`` adds that many standby workers per shard,
promoted automatically when a primary dies.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction harness for 'Adaptive sampling for geometric "
            "problems over data streams' (Hershberger & Suri, PODS 2004)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", help="reproduce (part of) Table 1")
    t1.add_argument(
        "--section",
        choices=["disk", "square", "ellipse", "changing"],
        action="append",
        help="restrict to one or more sections (default: all)",
    )
    t1.add_argument("--n", type=int, default=20_000, help="stream length")
    t1.add_argument("--r", type=int, default=16, help="adaptive parameter r")
    t1.add_argument("--seed", type=int, default=0)

    fig = sub.add_parser("fig10", help="regenerate the Fig. 10 SVG panels")
    fig.add_argument("--out", default="fig10_output", help="output directory")
    fig.add_argument("--n", type=int, default=20_000)

    sc = sub.add_parser("scaling", help="error scaling sweep (Theorem 5.4)")
    sc.add_argument("--n", type=int, default=12_000)
    sc.add_argument(
        "--r-values", type=int, nargs="+", default=[8, 16, 32, 64]
    )

    sub.add_parser("lower-bound", help="Theorem 5.5 lower-bound sweep")
    sub.add_parser("work", help="amortized per-point work counters")

    demo = sub.add_parser("demo", help="summarise a stream and run queries")
    demo.add_argument("--n", type=int, default=50_000)
    demo.add_argument("--r", type=int, default=32)

    eng = sub.add_parser(
        "engine", help="multi-stream batch ingestion engine demo"
    )
    eng.add_argument("--keys", type=int, default=200, help="keyed streams")
    eng.add_argument(
        "--n", type=int, default=200_000, help="total records across all keys"
    )
    eng.add_argument("--r", type=int, default=32, help="adaptive parameter r")
    eng.add_argument(
        "--batch", type=int, default=20_000, help="records per ingest batch"
    )
    eng.add_argument(
        "--snapshot", default=None, help="write a snapshot here and verify restore"
    )
    eng.add_argument("--seed", type=int, default=0)

    sh = sub.add_parser(
        "shard", help="sharded multi-process ingestion engine demo"
    )
    sh.add_argument("--keys", type=int, default=64, help="keyed streams")
    sh.add_argument(
        "--n", type=int, default=100_000, help="total records across all keys"
    )
    sh.add_argument("--r", type=int, default=32, help="adaptive parameter r")
    sh.add_argument(
        "--batch", type=int, default=20_000, help="records per ingest batch"
    )
    sh.add_argument(
        "--workers", type=int, default=2, help="shard worker processes"
    )
    sh.add_argument(
        "--snapshot", default=None,
        help="write a whole-ring snapshot here and verify restore",
    )
    sh.add_argument(
        "--transport", choices=["pickle", "frames", "shm"], default="frames",
        help="worker pipe protocol (frames = zero-copy default)",
    )
    sh.add_argument(
        "--replicas", type=int, default=0,
        help="standby replica workers per shard (promoted on primary death)",
    )
    sh.add_argument(
        "--wal-dir", default=None,
        help="write-ahead log directory: batches are durable before they "
        "apply; a directory holding a prior log is recovered first",
    )
    sh.add_argument("--seed", type=int, default=0)

    win = sub.add_parser(
        "window", help="sliding-window hull engine demo (drifting clusters)"
    )
    win.add_argument("--keys", type=int, default=16, help="keyed streams")
    win.add_argument(
        "--n", type=int, default=100_000, help="total records across all keys"
    )
    win.add_argument("--r", type=int, default=32, help="adaptive parameter r")
    win.add_argument(
        "--batch", type=int, default=10_000, help="records per ingest batch"
    )
    mode = win.add_mutually_exclusive_group()
    mode.add_argument(
        "--last-n", type=int, default=None,
        help="count-based window per key (default 5000)",
    )
    mode.add_argument(
        "--horizon", type=float, default=None,
        help="time-based window in time units (records carry ts)",
    )
    win.add_argument(
        "--max-delay", type=float, default=None,
        help="bounded-lateness tolerance (time windows only): records are "
        "fed out of order within this bound, reordered by the watermark, "
        "and later-than-watermark records are counted and dropped",
    )
    win.add_argument(
        "--workers", type=int, default=0,
        help="shard worker processes (0 = in-process StreamEngine)",
    )
    win.add_argument(
        "--snapshot", default=None,
        help="write an engine snapshot here and verify restore",
    )
    win.add_argument("--seed", type=int, default=0)

    srv = sub.add_parser(
        "serve", help="asyncio serving front door (NDJSON over TCP)"
    )
    srv_sub = srv.add_subparsers(dest="serve_cmd", required=True)

    run = srv_sub.add_parser("run", help="start the hull server")
    run.add_argument("--host", default="127.0.0.1")
    run.add_argument(
        "--port", type=int, default=0,
        help="listen port (0 picks an ephemeral port, printed on start)",
    )
    run.add_argument("--r", type=int, default=32, help="adaptive parameter r")
    mode = run.add_mutually_exclusive_group()
    mode.add_argument(
        "--last-n", type=int, default=None,
        help="count-based window per key (default: no window)",
    )
    mode.add_argument(
        "--horizon", type=float, default=None,
        help="time-based window in seconds (records carry wall-clock ts)",
    )
    run.add_argument(
        "--max-delay", type=float, default=None,
        help="bounded-lateness tolerance in seconds (needs --horizon): "
        "out-of-order records within the bound are reordered by the "
        "watermark; later ones are counted and dropped",
    )
    run.add_argument(
        "--workers", type=int, default=0,
        help="shard worker processes (0 = in-process StreamEngine)",
    )
    run.add_argument(
        "--replicas", type=int, default=0,
        help="standby replica workers per shard (needs --workers >= 1)",
    )
    run.add_argument(
        "--wal-dir", default=None,
        help="write-ahead log directory: ingest is durable before it "
        "applies; a directory holding a prior log is recovered first "
        "(the logged window/spec win over the flags)",
    )
    run.add_argument(
        "--tick", type=float, default=None,
        help="advance_time tick interval in seconds (time windows only; "
        "uses the wall clock)",
    )
    run.add_argument(
        "--duration", type=float, default=0.0,
        help="serve for this many seconds then drain and exit (0 = forever)",
    )
    run.add_argument(
        "--selfcheck", action="store_true",
        help="run a loopback client workload against the live server, "
        "verify results, then exit",
    )
    run.add_argument(
        "--snapshot", default=None,
        help="write a final engine snapshot here on shutdown",
    )
    run.add_argument(
        "--metrics-port", type=int, default=None,
        help="additionally serve plain-HTTP GET /metrics (Prometheus "
        "text format) on this port (0 = ephemeral, printed on start)",
    )

    sbench = srv_sub.add_parser(
        "bench", help="async facade + TCP throughput/latency vs direct calls"
    )
    sbench.add_argument("--n", type=int, default=50_000, help="records")
    sbench.add_argument("--keys", type=int, default=32, help="keyed streams")
    sbench.add_argument(
        "--batch", type=int, default=2_000, help="records per batch"
    )
    sbench.add_argument("--r", type=int, default=32)
    sbench.add_argument(
        "--workers", type=int, default=0,
        help="shard worker processes (0 = in-process StreamEngine)",
    )
    sbench.add_argument(
        "--queries", type=int, default=20, help="global queries per path"
    )
    sbench.add_argument("--seed", type=int, default=0)

    gw = sub.add_parser(
        "gateway",
        help="multi-tenant HTTP/SSE front door (auth, quotas, rate limits)",
    )
    gw.add_argument("--host", default="127.0.0.1")
    gw.add_argument(
        "--port", type=int, default=0,
        help="listen port (0 picks an ephemeral port, printed on start)",
    )
    gw.add_argument(
        "--tenants", default=None,
        help="tenant registry config (.json or .toml; see repro.gateway); "
        "default: a demo registry with tenants alpha/beta (tokens "
        "alpha-token/beta-token) and admin token admin-token",
    )
    gw.add_argument("--r", type=int, default=32, help="adaptive parameter r")
    mode = gw.add_mutually_exclusive_group()
    mode.add_argument(
        "--last-n", type=int, default=None,
        help="count-based window per key (default: no window)",
    )
    mode.add_argument(
        "--horizon", type=float, default=None,
        help="time-based window in seconds (records carry wall-clock ts)",
    )
    gw.add_argument(
        "--max-delay", type=float, default=None,
        help="bounded-lateness tolerance in seconds (needs --horizon)",
    )
    gw.add_argument(
        "--workers", type=int, default=0,
        help="shard worker processes (0 = in-process StreamEngine)",
    )
    gw.add_argument(
        "--replicas", type=int, default=0,
        help="standby replica workers per shard (needs --workers >= 1)",
    )
    gw.add_argument(
        "--wal-dir", default=None,
        help="write-ahead log directory (recovered first when it holds "
        "a prior log; the logged window/spec win over the flags)",
    )
    gw.add_argument(
        "--tick", type=float, default=None,
        help="advance_time tick interval in seconds (time windows only)",
    )
    gw.add_argument(
        "--duration", type=float, default=0.0,
        help="serve for this many seconds then drain and exit (0 = forever)",
    )
    gw.add_argument(
        "--selfcheck", action="store_true",
        help="run a loopback multi-tenant workload against the live "
        "gateway, verify isolation and metrics, then exit",
    )
    gw.add_argument(
        "--snapshot", default=None,
        help="write a final engine snapshot here on shutdown",
    )
    gw.add_argument(
        "--metrics-port", type=int, default=None,
        help="additionally serve plain-HTTP GET /metrics on this port "
        "(0 = ephemeral, printed on start); the main port serves "
        "/metrics too",
    )

    met = sub.add_parser(
        "metrics",
        help="run a keyed workload and dump/watch the obs registry",
    )
    met.add_argument("--keys", type=int, default=32, help="keyed streams")
    met.add_argument(
        "--n", type=int, default=100_000, help="total records across all keys"
    )
    met.add_argument("--r", type=int, default=32, help="adaptive parameter r")
    met.add_argument(
        "--batch", type=int, default=10_000, help="records per ingest batch"
    )
    met.add_argument(
        "--workers", type=int, default=0,
        help="shard worker processes (0 = in-process StreamEngine)",
    )
    mode = met.add_mutually_exclusive_group()
    mode.add_argument(
        "--last-n", type=int, default=None,
        help="count-based window per key (default: no window)",
    )
    mode.add_argument(
        "--horizon", type=float, default=None,
        help="time-based window in time units (records carry ts)",
    )
    met.add_argument(
        "--max-delay", type=float, default=None,
        help="bounded-lateness tolerance (needs --horizon)",
    )
    met.add_argument(
        "--format", choices=["prom", "json"], default="prom",
        help="output format: Prometheus text exposition or JSON snapshot",
    )
    met.add_argument(
        "--watch", type=float, default=None,
        help="re-print the page at least this many seconds apart while "
        "the workload runs (default: dump once at the end)",
    )
    met.add_argument("--seed", type=int, default=0)

    dur = sub.add_parser(
        "durable",
        help="write-ahead log inspection, crash recovery, dead letters",
    )
    dur_sub = dur.add_subparsers(dest="durable_cmd", required=True)

    dins = dur_sub.add_parser(
        "inspect", help="summarise a WAL directory without replaying it"
    )
    dins.add_argument("wal_dir", help="write-ahead log directory")
    dins.add_argument(
        "--fsck", action="store_true",
        help="verify every segment's frame checksums, entry decoding, "
        "and sequence contiguity end-to-end (not just the torn tail); "
        "reports the first bad offset and exits 1 on mid-log corruption",
    )

    drec = dur_sub.add_parser(
        "recover", help="rebuild the engine from latest snapshot + WAL tail"
    )
    drec.add_argument("wal_dir", help="write-ahead log directory")
    drec.add_argument(
        "--workers", type=int, default=None,
        help="override the logged tier: 0 = in-process engine, N = ring "
        "of N shards (default: whatever the log's meta entry says)",
    )
    drec.add_argument(
        "--replicas", type=int, default=0,
        help="standby replica workers per shard (sharded tier only)",
    )
    drec.add_argument(
        "--snapshot", default=None,
        help="write the recovered engine's snapshot file here",
    )
    drec.add_argument(
        "--compact", action="store_true",
        help="write a WAL snapshot after recovery so the next recovery "
        "skips the replayed tail",
    )

    ddl = dur_sub.add_parser(
        "dead-letters", help="list/redrive the durable dead-letter log"
    )
    ddl.add_argument("wal_dir", help="write-ahead log directory")
    ddl.add_argument(
        "--limit", type=int, default=20,
        help="slices to list in detail (default 20)",
    )
    ddl.add_argument(
        "--replay", action="store_true",
        help="recover the engine from this WAL and re-ingest every dead "
        "letter, timestamps clamped up to the current watermark",
    )
    ddl.add_argument(
        "--truncate", action="store_true",
        help="drop the dead-letter log (alone, or after a clean --replay)",
    )

    return parser


def _cmd_table1(args: argparse.Namespace) -> int:
    from .experiments import format_table1, run_table1

    rows = run_table1(
        n=args.n, r=args.r, seed=args.seed, sections=args.section
    )
    print(format_table1(rows))
    return 0


def _cmd_fig10(args: argparse.Namespace) -> int:
    from .experiments import make_fig10

    adaptive, uniform = make_fig10(args.out, n=args.n)
    print(f"wrote {adaptive}")
    print(f"wrote {uniform}")
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from .experiments import error_scaling, loglog_slope

    points = error_scaling(args.r_values, n=args.n)
    print(f"{'r':>5} {'scheme':>10} {'error':>12} {'samples':>8}")
    for p in points:
        print(f"{p.r:>5} {p.scheme:>10} {p.error:>12.6f} {p.sample_size:>8}")
    print()
    print(f"log-log slope adaptive: {loglog_slope(points, 'adaptive'):+.2f}  (theory -2)")
    print(f"log-log slope uniform : {loglog_slope(points, 'uniform'):+.2f}  (theory -1)")
    return 0


def _cmd_lower_bound(_args: argparse.Namespace) -> int:
    from .experiments import lower_bound_sweep

    points = lower_bound_sweep([8, 16, 32, 64, 128])
    print(f"{'r':>5} {'optimal':>12} {'adaptive':>12} {'D/r^2':>12}")
    for p in points:
        print(
            f"{p.r:>5} {p.optimal_error:>12.3e} {p.adaptive_error:>12.3e} "
            f"{p.theory:>12.3e}"
        )
    return 0


def _cmd_work(_args: argparse.Namespace) -> int:
    from .experiments import work_per_point

    points = work_per_point([8, 16, 32, 64, 128], n=20_000)
    print(f"{'r':>5} {'processed':>10} {'nodes/pt':>9} {'refine':>7} {'unref':>6}")
    for w in points:
        print(
            f"{w.r:>5} {100 * w.processed_fraction:>9.2f}% "
            f"{w.nodes_visited_per_point:>9.2f} {w.refinements:>7} "
            f"{w.unrefinements:>6}"
        )
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    import math

    from .core import AdaptiveHull
    from .queries import diameter, enclosing_circle, width
    from .streams import as_tuples, ellipse_stream

    hull = AdaptiveHull(args.r)
    for p in as_tuples(ellipse_stream(args.n, a=8.0, b=2.0, rotation=0.4, seed=1)):
        hull.insert(p)
    print(f"points seen  : {hull.points_seen:,}")
    print(f"points stored: {hull.sample_size} (bound {2 * args.r + 1})")
    print(f"diameter     : {diameter(hull):.4f}")
    print(f"width        : {width(hull):.4f}")
    (cx, cy), rad = enclosing_circle(hull)
    print(f"circle       : ({cx:.3f}, {cy:.3f}) r={rad:.4f}")
    print(
        f"error bound  : {16 * math.pi * hull.perimeter / args.r ** 2:.4f} "
        f"(Corollary 5.2)"
    )
    return 0


def _cmd_engine(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from .core import AdaptiveHull
    from .engine import StreamEngine
    from .geometry import area as polygon_area

    if args.keys < 1:
        raise SystemExit("engine: --keys must be >= 1")
    if args.batch < 1:
        raise SystemExit("engine: --batch must be >= 1")
    rng = np.random.default_rng(args.seed)
    keys = np.array([f"stream-{i:04d}" for i in range(args.keys)])
    centers = rng.uniform(-100.0, 100.0, (args.keys, 2))

    engine = StreamEngine(lambda: AdaptiveHull(args.r))
    t0 = time.perf_counter()
    done = 0
    while done < args.n:
        b = min(args.batch, args.n - done)
        idx = rng.integers(0, args.keys, b)
        pts = centers[idx] + rng.normal(0.0, 2.0, (b, 2))
        engine.ingest_arrays(keys[idx], pts)
        done += b
    elapsed = time.perf_counter() - t0

    stats = engine.stats()
    print(f"streams      : {stats.streams}")
    print(f"records      : {stats.points_ingested:,} in {stats.batches_ingested} batches")
    print(f"stored       : {stats.sample_points:,} sample points "
          f"(bound {args.keys * (2 * args.r + 1):,})")
    print(f"maintenance  : {stats.evictions} evictions, "
          f"{stats.bucket_merges} bucket merges, "
          f"{stats.bucket_expiries} bucket expiries")
    print(f"throughput   : {done / elapsed:,.0f} records/sec")
    areas = sorted(
        ((abs(polygon_area(engine.hull(k))), k) for k in engine.keys()),
        reverse=True,
    )
    print("largest hulls:")
    for a, k in areas[:5]:
        print(f"  {k}: area {a:.2f}, {len(engine.hull(k))} vertices")

    if args.snapshot:
        path = engine.snapshot(args.snapshot)
        restored = StreamEngine.restore(path, lambda: AdaptiveHull(args.r))
        ok = all(restored.hull(k) == engine.hull(k) for k in engine.keys())
        print(f"snapshot     : {path} ({path.stat().st_size:,} bytes)")
        print(f"restore check: {len(engine)} keys, identical hulls: {ok}")
        if not ok:
            return 1
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from .shard import ShardedEngine, SummarySpec

    if args.keys < 1:
        raise SystemExit("shard: --keys must be >= 1")
    if args.batch < 1:
        raise SystemExit("shard: --batch must be >= 1")
    if args.workers < 1:
        raise SystemExit("shard: --workers must be >= 1")
    if args.replicas < 0:
        raise SystemExit("shard: --replicas must be >= 0")
    rng = np.random.default_rng(args.seed)
    keys = np.array([f"stream-{i:04d}" for i in range(args.keys)])
    centers = rng.uniform(-100.0, 100.0, (args.keys, 2))
    spec = SummarySpec("AdaptiveHull", {"r": args.r})

    durability = None
    if args.wal_dir is not None:
        from .durable import DurabilityConfig, recover_engine, wal_exists

        durability = DurabilityConfig(args.wal_dir)
    if durability is not None and wal_exists(args.wal_dir):
        # A prior run left a log: pick up exactly where it stopped
        # (the logged spec/window win over this invocation's flags).
        engine = recover_engine(
            args.wal_dir,
            workers=args.workers,
            standbys=args.replicas,
            transport=args.transport,
            durability=durability,
        )
    else:
        engine = ShardedEngine(
            spec,
            shards=args.workers,
            transport=args.transport,
            standbys=args.replicas,
            durability=durability,
        )

    with engine:
        replay = getattr(engine, "last_replay", None)
        if replay is not None:
            print(f"recovered    : {replay['entries']} WAL entries "
                  f"({replay['records']:,} records, "
                  f"{replay['rejected']} rejected)")
        t0 = time.perf_counter()
        done = 0
        while done < args.n:
            b = min(args.batch, args.n - done)
            idx = rng.integers(0, args.keys, b)
            pts = centers[idx] + rng.normal(0.0, 2.0, (b, 2))
            engine.ingest_arrays(keys[idx], pts)
            done += b
        elapsed = time.perf_counter() - t0

        stats = engine.stats()
        loads = ", ".join(
            f"shard {i}: {s['streams']} keys / {s['points_ingested']:,} pts"
            for i, s in enumerate(stats.per_shard)
        )
        print(f"workers      : {args.workers}")
        print(f"transport    : {args.transport}")
        print(f"streams      : {stats.streams}")
        print(f"records      : {stats.points_ingested:,} in "
              f"{stats.batches_ingested} batches")
        print(f"stored       : {stats.sample_points:,} sample points")
        print(f"throughput   : {done / elapsed:,.0f} records/sec")
        print(f"ring load    : {loads}")
        if args.replicas:
            print(f"replicas     : {stats.standbys} standbys, "
                  f"{stats.promotions} promotions")
        if engine.wal is not None:
            print(f"wal          : seq {engine.wal.last_seq} in "
                  f"{args.wal_dir}")
        # One whole-ring reduction serves all three global answers.
        from .queries import diameter, width

        merged = engine.merged_summary()
        print(f"global hull  : {len(merged.hull())} vertices over "
              f"{merged.points_seen:,} points")
        print(f"global diam  : {diameter(merged):.4f}")
        print(f"global width : {width(merged):.4f}")

        if args.snapshot:
            path = engine.snapshot(args.snapshot)
            restored = ShardedEngine.restore(path)
            try:
                all_keys = engine.keys()
                ok = all(restored.hull(k) == engine.hull(k) for k in all_keys)
            finally:
                restored.close()
            print(f"snapshot     : {path} ({path.stat().st_size:,} bytes)")
            print(f"restore check: {len(all_keys)} keys, identical hulls: {ok}")
            if not ok:
                return 1
    return 0


def _cmd_window(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from .core import AdaptiveHull
    from .queries import diameter
    from .streams import drifting_clusters_stream
    from .window import WindowConfig

    if args.keys < 1:
        raise SystemExit("window: --keys must be >= 1")
    if args.batch < 1:
        raise SystemExit("window: --batch must be >= 1")
    engine_cm, restore = _tier_engine(
        args, "window", default_window=WindowConfig(last_n=5000)
    )
    window = engine_cm.window

    rng = np.random.default_rng(args.seed)
    pts = drifting_clusters_stream(
        args.n, n_clusters=max(2, args.keys // 4), drift=0.1, seed=args.seed
    )
    keys = np.array([f"stream-{i:04d}" for i in range(args.keys)])[
        rng.integers(0, args.keys, args.n)
    ]
    # One time unit per 1000 records; only sent for time-based windows.
    ts = np.arange(args.n, dtype=np.float64) / 1000.0
    order = np.arange(args.n)
    if window is not None and window.max_delay is not None:
        # Bounded lateness: deliver the stream out of order (each
        # record delayed < max_delay) — the watermark reorders it.
        from .streams import bounded_shuffle

        order = bounded_shuffle(ts, window.max_delay, seed=args.seed)

    all_time = AdaptiveHull(args.r)  # the contrast: extremes never age out
    all_time.insert_many(pts)  # fed outside the timed region

    def run(engine):
        t0 = time.perf_counter()
        for s in range(0, args.n, args.batch):
            sl = order[s : min(s + args.batch, args.n)]
            kw = {"ts": ts[sl]} if window.timed else {}
            engine.ingest_arrays(keys[sl], pts[sl], **kw)
        if window.max_delay is not None:
            # Heartbeat past the last event so the watermark passes
            # everything still buffered before we query (2x the bound:
            # (t + d) - d can round below t in floats).
            engine.advance_time(float(ts[-1]) + 2 * window.max_delay)
        return time.perf_counter() - t0

    mode = (
        f"last_n={window.last_n}" if not window.timed
        else f"horizon={window.horizon}"
        + (
            f" max_delay={window.max_delay}"
            if window.max_delay is not None
            else ""
        )
    )
    with engine_cm as engine:
        elapsed = run(engine)
        stats = engine.stats()
        late = engine.late_dropped
        # One whole-engine reduction serves both global answers.
        merged = engine.merged_summary()
        merged_hull = merged.hull()
        windowed_diam = diameter(merged) if merged_hull else 0.0
        snapshot_ok = None
        if args.snapshot:
            path = engine.snapshot(args.snapshot)
            with restore(path) as restored:
                snapshot_ok = all(
                    restored.hull(k) == engine.hull(k)
                    for k in engine.keys()
                )

    tier = f"sharded x{args.workers}" if args.workers else "in-process"
    print(f"engine       : {tier}, window {mode}, r={args.r}")
    print(f"streams      : {stats.streams}")
    print(f"records      : {stats.points_ingested:,} in "
          f"{stats.batches_ingested} batches")
    print(f"stored       : {stats.sample_points:,} sample points in "
          f"{stats.buckets} buckets")
    print(f"maintenance  : {stats.bucket_merges} bucket merges, "
          f"{stats.bucket_expiries} bucket expiries")
    if window.max_delay is not None:
        print(f"event time   : shuffled within {window.max_delay}, "
              f"{late} late drops, {stats.buffered} still buffered")
    print(f"throughput   : {args.n / elapsed:,.0f} records/sec")
    print(f"window hull  : {len(merged_hull)} vertices, "
          f"diameter {windowed_diam:.3f}")
    print(f"all-time hull: {len(all_time.hull())} vertices, "
          f"diameter {diameter(all_time):.3f}  <- stale extremes retained")
    if snapshot_ok is not None:
        print(f"restore check: identical hulls: {snapshot_ok}")
        if not snapshot_ok:
            return 1
    return 0


def _tier_engine(args, prog: str, default_window=None):
    """Validate the shared tier/window flags and build the requested
    engine (both tiers implement EngineProtocol, so callers stay
    tier-agnostic).  Returns ``(engine, restore)`` with ``restore`` the
    tier's snapshot-file loader.  Shared by the ``window`` and
    ``serve`` subcommands so their construction cannot drift."""
    import math

    from .window import WindowConfig

    if args.workers < 0:
        raise SystemExit(f"{prog}: --workers must be >= 0")
    last_n = getattr(args, "last_n", None)
    horizon = getattr(args, "horizon", None)
    max_delay = getattr(args, "max_delay", None)
    if last_n is not None and last_n < 1:
        raise SystemExit(f"{prog}: --last-n must be >= 1")
    if horizon is not None and not (horizon > 0.0 and math.isfinite(horizon)):
        raise SystemExit(f"{prog}: --horizon must be positive and finite")
    if max_delay is not None:
        if horizon is None:
            raise SystemExit(f"{prog}: --max-delay needs --horizon")
        if not (max_delay > 0.0 and math.isfinite(max_delay)):
            raise SystemExit(f"{prog}: --max-delay must be positive and finite")
    if last_n is not None:
        window = WindowConfig(last_n=last_n)
    elif horizon is not None:
        window = WindowConfig(horizon=horizon, max_delay=max_delay)
    else:
        window = default_window
    standbys = getattr(args, "replicas", 0) or 0
    if standbys < 0:
        raise SystemExit(f"{prog}: --replicas must be >= 0")
    if standbys and not args.workers:
        raise SystemExit(f"{prog}: --replicas needs --workers >= 1")
    wal_dir = getattr(args, "wal_dir", None)
    durability = None
    recovering = False
    if wal_dir is not None:
        from .durable import DurabilityConfig, wal_exists

        durability = DurabilityConfig(wal_dir)
        recovering = wal_exists(wal_dir)
    if args.workers:
        from .shard import ShardedEngine, SummarySpec

        if recovering:
            from .durable import recover_engine

            # The logged spec/window win over the flags: replay is only
            # bit-identical under the configuration that wrote the log.
            engine = recover_engine(
                wal_dir,
                workers=args.workers,
                standbys=standbys,
                durability=durability,
            )
        else:
            engine = ShardedEngine(
                SummarySpec("AdaptiveHull", {"r": args.r}),
                shards=args.workers,
                window=window,
                standbys=standbys,
                durability=durability,
            )
        restore = ShardedEngine.restore
    else:
        from .engine import StreamEngine
        from .shard import SummarySpec

        # A spec-built factory (not a bare lambda) so an attached WAL
        # captures the configuration and recovery needs no restating.
        factory = SummarySpec("AdaptiveHull", {"r": args.r}).build
        if recovering:
            from .durable import recover_engine

            engine = recover_engine(wal_dir, workers=0, durability=durability)
        else:
            engine = StreamEngine(
                factory, window=window, durability=durability
            )
        restore = lambda p: StreamEngine.restore(p, factory)  # noqa: E731
    return engine, restore


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json
    import time

    import numpy as np

    from .obs import ScrapeHistory, render_snapshot

    if args.keys < 1:
        raise SystemExit("metrics: --keys must be >= 1")
    if args.batch < 1:
        raise SystemExit("metrics: --batch must be >= 1")
    if args.watch is not None and args.watch < 0.0:
        raise SystemExit("metrics: --watch must be >= 0")
    engine_cm, _ = _tier_engine(args, "metrics")
    window = engine_cm.window

    rng = np.random.default_rng(args.seed)
    keys = np.array([f"stream-{i:04d}" for i in range(args.keys)])
    centers = rng.uniform(-100.0, 100.0, (args.keys, 2))
    timed = window is not None and window.timed
    history = ScrapeHistory()
    span = args.watch or None

    def page(engine) -> str:
        obs = engine.stats().obs
        if args.format == "json":
            return json.dumps(obs, indent=2, sort_keys=True)
        return render_snapshot(obs)

    def rates_page(engine) -> str:
        # Watch prints *rates*, not totals: difference the scrape taken
        # now against the previous watch tick's (see repro.obs.history).
        history.record(engine.stats().obs)
        if args.format == "json":
            return json.dumps(
                history.rates(span=span), indent=2, sort_keys=True
            )
        return history.render(span=span)

    with engine_cm as engine:
        done = 0
        if args.watch is not None:
            history.record(engine.stats().obs)
        last_print = time.perf_counter()
        while done < args.n:
            b = min(args.batch, args.n - done)
            idx = rng.integers(0, args.keys, b)
            pts = centers[idx] + rng.normal(0.0, 2.0, (b, 2))
            kw = {}
            if timed:
                kw["ts"] = (np.arange(done, done + b, dtype=np.float64)
                            / 1000.0)
            engine.ingest_arrays(keys[idx], pts, **kw)
            done += b
            if args.watch is not None and (
                time.perf_counter() - last_print >= args.watch
            ):
                print(rates_page(engine))
                print(f"# --- after {done:,}/{args.n:,} records ---")
                last_print = time.perf_counter()
        # A global query so shard/transport reply paths show traffic.
        engine.merged_hull()
        print(page(engine))
    return 0


def _cmd_serve_run(args: argparse.Namespace) -> int:
    import asyncio
    import time

    from .serve import AsyncHullClient, AsyncHullService, HullServer

    if args.tick is not None and (
        args.horizon is None or args.tick <= 0.0
    ):
        raise SystemExit("serve: --tick needs --horizon and must be > 0")

    async def scrape_metrics(host: str, port: int) -> str:
        """One plain-HTTP GET /metrics round trip; returns the body."""
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(
                f"GET /metrics HTTP/1.0\r\nHost: {host}\r\n\r\n".encode()
            )
            await writer.drain()
            raw = await reader.read()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        head, _, body = raw.partition(b"\r\n\r\n")
        if b"200" not in head.split(b"\r\n", 1)[0]:
            raise RuntimeError(f"/metrics scrape failed: {head[:120]!r}")
        return body.decode("utf-8")

    async def selfcheck(port: int, metrics_port=None) -> bool:
        import numpy as np

        rng = np.random.default_rng(0)
        pts = rng.normal(0.0, 2.0, (2000, 2))
        # Synthetic event times run an hour AHEAD of the wall clock:
        # the --tick ticker advances the ring clock to time.time(), and
        # timestamps near "now" would race it (a tick between two
        # batches rejects the second batch as stale).
        now = time.time() + 3600.0
        client = await AsyncHullClient.connect(args.host, port)
        try:
            await client.ping()
            ts = now + np.arange(len(pts)) * 1e-4
            records = []
            for i, (x, y) in enumerate(pts):
                rec = [f"check-{i % 8}", float(x), float(y)]
                if args.horizon is not None:
                    rec.append(float(ts[i]))
                records.append(rec)
            late_expected = 0
            if args.horizon is not None and args.max_delay is not None:
                # Bounded lateness: ship the stream shuffled within the
                # bound — the server's watermark must reorder it — and
                # one record far beyond it, which must be counted and
                # dropped, never applied.
                from .streams import bounded_shuffle

                order = bounded_shuffle(ts, args.max_delay, seed=1)
                records = [records[i] for i in order]
                records.append(
                    ["check-late", 0.0, 0.0, float(ts[0]) - 10 * args.max_delay]
                )
                late_expected = 1
            queued = sum(
                [
                    await client.ingest(records[s : s + 500])
                    for s in range(0, len(records), 500)
                ]
            )
            await client.flush()
            if args.horizon is not None and args.max_delay is not None:
                # Heartbeat the watermark past the newest event so
                # nothing is still sitting in the reorder buffers (2x
                # the bound: (t + d) - d can round below t in floats).
                await client.advance_time(float(ts[-1]) + 2 * args.max_delay)
            hull = await client.merged_hull()
            diam = await client.diameter()
            stats = await client.stats()
            late_ok = True
            if late_expected:
                sstats = await client.service_stats()
                drops = await client.late_drops()
                late_ok = (
                    sstats["late_dropped"] == late_expected
                    and drops == {"check-late": late_expected}
                )
                print(f"selfcheck    : late drops {sstats['late_dropped']} "
                      f"(expected {late_expected})")
            print(f"selfcheck    : queued {queued}, streams "
                  f"{stats['streams']}, hull {len(hull)} vertices, "
                  f"diameter {diam:.3f}")
            metrics_ok = True
            if metrics_port is not None:
                # Scrape the plain-HTTP listener and print the page so
                # an outer harness (CI) can grep metric families from
                # this command's stdout.
                text = await scrape_metrics(args.host, metrics_port)
                metrics_ok = "repro_ingest_records_total" in text
                print(f"metrics      : scraped {len(text)} bytes from "
                      f"/metrics (ok={metrics_ok})")
                print(text)
            return (
                queued == len(records)
                and stats["points_ingested"] >= queued - late_expected
                and stats["late_dropped"] == late_expected
                and late_ok
                and metrics_ok
                and len(hull) >= 3
                and diam > 0.0
            )
        finally:
            await client.aclose()

    async def main() -> int:
        engine, _ = _tier_engine(args, "serve")
        replay = getattr(engine, "last_replay", None)
        if replay is not None:
            print(f"recovered    : {replay['entries']} WAL entries "
                  f"({replay['records']:,} records, "
                  f"{replay['rejected']} rejected)")
        service = AsyncHullService(
            engine,
            tick_interval=args.tick,
            clock=time.time if args.tick is not None else None,
            own_engine=True,
        )
        ok = True
        async with service:
            async with HullServer(
                service,
                args.host,
                args.port,
                metrics_port=args.metrics_port,
            ) as server:
                window = engine.window
                mode = (
                    "no window" if window is None
                    else f"last_n={window.last_n}" if not window.timed
                    else f"horizon={window.horizon}"
                    + (
                        f" max_delay={window.max_delay}"
                        if window.max_delay is not None
                        else ""
                    )
                )
                tier = (
                    f"sharded x{args.workers}" if args.workers
                    else "in-process"
                )
                print(f"serving      : {args.host}:{server.port} "
                      f"({tier}, {mode}, r={args.r})")
                if engine.wal is not None:
                    print(f"wal          : {args.wal_dir} "
                          f"(seq {engine.wal.last_seq})")
                if server.metrics_port is not None:
                    print(f"metrics      : http://{args.host}:"
                          f"{server.metrics_port}/metrics")
                if args.selfcheck:
                    ok = await selfcheck(
                        server.port, metrics_port=server.metrics_port
                    )
                elif args.duration > 0:
                    await asyncio.sleep(args.duration)
                else:
                    try:
                        await server.serve_forever()
                    except asyncio.CancelledError:
                        # Operator stop (Ctrl-C): fall through so the
                        # drain and the final snapshot still happen.
                        pass
            # Drain + final snapshot through aclose, which stays
            # correct even when the runner cancelled the drain task
            # too (Python 3.10's Ctrl-C cancels every task, not just
            # this one — a bare flush() would hang with no consumer).
            await service.aclose(final_snapshot=args.snapshot)
            sstats = service.service_stats()
            print(f"drained      : {sstats['ingested_records']:,} records "
                  f"({sstats['coalesced_batches']} batches coalesced, "
                  f"{sstats['ingest_errors']} rejected)")
            if args.snapshot:
                print(f"snapshot     : {args.snapshot}")
        return 0 if ok else 1

    try:
        return asyncio.run(main())
    except KeyboardInterrupt:
        # main() already drained and snapshotted on cancellation;
        # asyncio.run re-raises the interrupt afterwards.
        return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import asyncio
    import time

    import numpy as np

    from .serve import AsyncHullClient, AsyncHullService, HullServer

    if args.keys < 1 or args.batch < 1 or args.n < 1 or args.queries < 1:
        raise SystemExit("serve: --n/--keys/--batch/--queries must be >= 1")
    rng = np.random.default_rng(args.seed)
    keys = np.array([f"stream-{i:04d}" for i in range(args.keys)])
    centers = rng.uniform(-100.0, 100.0, (args.keys, 2))
    idx = rng.integers(0, args.keys, args.n)
    pts = centers[idx] + rng.normal(0.0, 2.0, (args.n, 2))
    all_keys = keys[idx]

    def batches():
        for s in range(0, args.n, args.batch):
            yield all_keys[s : s + args.batch], pts[s : s + args.batch]

    def run_direct():
        engine, _ = _tier_engine(args, "serve")
        with engine:
            t0 = time.perf_counter()
            for kb, pb in batches():
                engine.ingest_arrays(kb, pb)
            rate = args.n / (time.perf_counter() - t0)
            q0 = time.perf_counter()
            for _ in range(args.queries):
                hull = engine.merged_hull()
            q_lat = (time.perf_counter() - q0) / args.queries
            return rate, q_lat, hull

    async def run_service():
        engine, _ = _tier_engine(args, "serve")
        async with AsyncHullService(engine, own_engine=True) as service:
            t0 = time.perf_counter()
            for kb, pb in batches():
                await service.ingest_arrays(kb, pb)
            await service.flush()
            rate = args.n / (time.perf_counter() - t0)
            q0 = time.perf_counter()
            for _ in range(args.queries):
                hull = await service.merged_hull()
            q_lat = (time.perf_counter() - q0) / args.queries
            return rate, q_lat, hull

    async def run_tcp():
        engine, _ = _tier_engine(args, "serve")
        async with AsyncHullService(engine, own_engine=True) as service:
            async with HullServer(service) as server:
                client = await AsyncHullClient.connect(port=server.port)
                try:
                    t0 = time.perf_counter()
                    for kb, pb in batches():
                        await client.ingest(
                            [
                                (str(k), float(x), float(y))
                                for k, (x, y) in zip(kb, pb)
                            ]
                        )
                    await client.flush()
                    rate = args.n / (time.perf_counter() - t0)
                    q0 = time.perf_counter()
                    for _ in range(args.queries):
                        hull = await client.merged_hull()
                    q_lat = (time.perf_counter() - q0) / args.queries
                    return rate, q_lat, hull
                finally:
                    await client.aclose()

    d_rate, d_lat, d_hull = run_direct()
    s_rate, s_lat, s_hull = asyncio.run(run_service())
    t_rate, t_lat, t_hull = asyncio.run(run_tcp())
    print(f"{'path':>16} {'ingest rate':>16} {'query latency':>15}")
    for name, rate, lat in (
        ("direct sync", d_rate, d_lat),
        ("async facade", s_rate, s_lat),
        ("tcp loopback", t_rate, t_lat),
    ):
        print(f"{name:>16} {rate:>12,.0f} r/s {lat * 1e3:>11.2f} ms")
    parity = d_hull == s_hull == t_hull
    print(f"parity       : bit-identical global hulls: {parity}")
    return 0 if parity else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.serve_cmd == "bench":
        return _cmd_serve_bench(args)
    return _cmd_serve_run(args)


def _cmd_gateway(args: argparse.Namespace) -> int:
    import asyncio
    import time

    from .gateway import (
        GatewayClient,
        HullGateway,
        Tenant,
        TenantRegistry,
        tenant_dead_letter_hook,
    )
    from .serve import AsyncHullService

    if args.tick is not None and (
        args.horizon is None or args.tick <= 0.0
    ):
        raise SystemExit("gateway: --tick needs --horizon and must be > 0")
    if args.tenants is not None:
        try:
            registry = TenantRegistry.load(args.tenants)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"gateway: {exc}") from exc
        if len(registry) == 0:
            raise SystemExit(
                f"gateway: {args.tenants} defines no tenants"
            )
    else:
        registry = TenantRegistry(
            [
                Tenant(id="alpha", token="alpha-token"),
                Tenant(id="beta", token="beta-token"),
            ],
            admin_token="admin-token",
        )

    async def selfcheck(port: int) -> bool:
        import numpy as np

        tenants = registry.tenants()[:2]
        rng = np.random.default_rng(0)
        # Synthetic event times run ahead of the wall clock so a --tick
        # ticker can never mark them stale (same trick as serve).
        now = time.time() + 3600.0
        ok = True
        clients = []
        hulls = {}
        per_tenant = 600
        admin = (
            GatewayClient(args.host, port, registry.admin_token)
            if registry.admin_token is not None
            else None
        )
        if args.max_delay is not None and admin is None:
            raise SystemExit(
                "gateway: --selfcheck with --max-delay needs an "
                "admin_token in the tenants config (the reorder buffer "
                "is flushed through the admin advance_time verb)"
            )
        for t_i, tenant in enumerate(tenants):
            client = GatewayClient(args.host, port, tenant.token)
            clients.append(client)
            pts = rng.normal(10.0 * t_i, 2.0, (per_tenant, 2))
            # Strictly later ts range per tenant: the event clock is
            # global, so an earlier range would be late once the
            # previous tenant's flush advanced the watermark.
            base = now + 10.0 * t_i
            records = []
            for i, (x, y) in enumerate(pts):
                rec = [f"gw-{i % 4}", float(x), float(y)]
                if args.horizon is not None:
                    rec.append(base + i * 1e-4)
                records.append(rec)
            for s in range(0, len(records), 200):
                await client.ingest(
                    records[s:s + 200],
                    sync=s + 200 >= len(records),
                )
            if args.max_delay is not None:
                # Bounded lateness buffers everything within the bound;
                # push the watermark past it so the queries below see
                # the applied records.
                await admin.advance_time(
                    base + per_tenant * 1e-4 + 2 * args.max_delay
                )
            keys = await client.keys()
            hull = await client.hull("gw-0")
            hulls[tenant.id] = hull
            stats = await client.stats()
            print(f"selfcheck    : tenant {tenant.id} keys={len(keys)} "
                  f"hull={len(hull)} "
                  f"ingested={stats['ingested_records']}")
            ok = (
                ok
                and keys == [f"gw-{i}" for i in range(4)]
                and len(hull) >= 3
                and stats["ingested_records"] == per_tenant
            )
        if len(tenants) == 2:
            # The same client-side key name must resolve to disjoint
            # per-tenant streams (the clusters are 10 units apart).
            isolated = hulls[tenants[0].id] != hulls[tenants[1].id]
            print(f"selfcheck    : namespace isolation ok={isolated}")
            ok = ok and isolated
        # SSE: a subscriber must see its own ingest pushed.
        sse = await clients[0].subscribe()
        probe = ["gw-sse", 0.5, 0.5]
        if args.horizon is not None:
            probe.append(now + 60.0)
        await clients[0].ingest([probe], sync=True)
        if args.max_delay is not None:
            # Touch notifications fire on apply, not on buffering.
            await admin.advance_time(now + 60.0 + 2 * args.max_delay)
        event = await sse.next_event(timeout=10.0)
        sse_ok = (
            event["event"] == "update"
            and "gw-sse" in event["data"]["keys"]
        )
        print(f"selfcheck    : sse push ok={sse_ok}")
        ok = ok and sse_ok
        await sse.aclose()
        # Auth: an unknown token must be refused with 401.
        anon = GatewayClient(args.host, port, "not-a-token")
        status, _ = await anon.request("GET", "/v1/keys")
        print(f"selfcheck    : bogus token -> {status}")
        ok = ok and status == 401
        await anon.aclose()
        # Scrape /metrics and print the page so an outer harness (CI)
        # can grep per-tenant families from this command's stdout.
        text = await clients[0].metrics_text()
        labeled = f'tenant="{tenants[0].id}"' in text
        ok = (
            ok
            and "repro_gateway_requests_total" in text
            and labeled
        )
        print(f"metrics      : scraped {len(text)} bytes "
              f"(tenant label ok={labeled})")
        print(text)
        if admin is not None:
            await admin.aclose()
        for client in clients:
            await client.aclose()
        return ok

    async def main() -> int:
        engine, _ = _tier_engine(args, "gateway")
        replay = getattr(engine, "last_replay", None)
        if replay is not None:
            print(f"recovered    : {replay['entries']} WAL entries "
                  f"({replay['records']:,} records, "
                  f"{replay['rejected']} rejected)")
        if (
            engine.window is not None
            and engine.window.max_delay is not None
        ):
            # Attribute later-than-watermark drops to tenants before
            # any other late hook (e.g. the durable dead-letter log,
            # which recovery already chained) fires.
            engine._on_late = tenant_dead_letter_hook(
                chain=engine._on_late
            )
        service = AsyncHullService(
            engine,
            tick_interval=args.tick,
            clock=time.time if args.tick is not None else None,
            own_engine=True,
        )
        ok = True
        async with service:
            async with HullGateway(
                service,
                registry,
                host=args.host,
                port=args.port,
                metrics_port=args.metrics_port,
            ) as gateway:
                window = engine.window
                mode = (
                    "no window" if window is None
                    else f"last_n={window.last_n}" if not window.timed
                    else f"horizon={window.horizon}"
                    + (
                        f" max_delay={window.max_delay}"
                        if window.max_delay is not None
                        else ""
                    )
                )
                tier = (
                    f"sharded x{args.workers}" if args.workers
                    else "in-process"
                )
                print(f"gateway      : http://{args.host}:{gateway.port} "
                      f"({tier}, {mode}, r={args.r})")
                source = (
                    args.tenants if args.tenants is not None
                    else "demo registry (tokens alpha-token/beta-token, "
                    "admin admin-token)"
                )
                print(f"tenants      : {len(registry)} from {source}")
                if engine.wal is not None:
                    print(f"wal          : {args.wal_dir} "
                          f"(seq {engine.wal.last_seq})")
                if gateway.metrics_port is not None:
                    print(f"metrics      : http://{args.host}:"
                          f"{gateway.metrics_port}/metrics")
                if args.selfcheck:
                    ok = await selfcheck(gateway.port)
                elif args.duration > 0:
                    await asyncio.sleep(args.duration)
                else:
                    try:
                        await gateway.serve_forever()
                    except asyncio.CancelledError:
                        pass
            await service.aclose(final_snapshot=args.snapshot)
            sstats = service.service_stats()
            print(f"drained      : {sstats['ingested_records']:,} records "
                  f"({sstats['ingest_errors']} rejected)")
            if args.snapshot:
                print(f"snapshot     : {args.snapshot}")
        return 0 if ok else 1

    try:
        return asyncio.run(main())
    except KeyboardInterrupt:
        return 0


def _cmd_durable_inspect(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .durable import (
        DeadLetterLog,
        iter_entries,
        list_segments,
        list_snapshots,
        load_latest_snapshot,
        read_meta,
        wal_exists,
    )
    from .durable import WalError, fsck

    wal_dir = Path(args.wal_dir)
    if not wal_exists(wal_dir):
        print(f"no WAL at {wal_dir}")
        return 1
    meta = read_meta(wal_dir) or {}
    tier = meta.get("tier") or "unknown"
    if meta.get("shards"):
        tier += f" x{meta['shards']}"
    spec = meta.get("spec")
    window = meta.get("window")
    segments = list_segments(wal_dir)
    snapshots = list_snapshots(wal_dir)
    snap = load_latest_snapshot(wal_dir)
    after = snap[0] if snap is not None else 0
    counts: dict = {}
    records = 0
    last_seq = after
    tail_error = None
    try:
        for entry in iter_entries(wal_dir, after=after):
            last_seq = entry[0]
            counts[entry[1]] = counts.get(entry[1], 0) + 1
            if entry[1] == "batch":
                records += len(entry[3])
            elif entry[1] == "insert":
                records += 1
    except WalError as exc:
        # Without --fsck a broken tail is a hard error, as before; with
        # it, the fsck report below localises the damage instead.
        if not args.fsck:
            raise
        tail_error = exc
    seg_bytes = sum(p.stat().st_size for _, p in segments)
    print(f"wal dir      : {wal_dir}")
    print(f"tier         : {tier}")
    if spec:
        print(f"spec         : {spec.get('class')} {spec.get('config')}")
    print(f"window       : {window if window else 'none'}")
    print(f"segments     : {len(segments)} ({seg_bytes:,} bytes)")
    print(f"snapshots    : {len(snapshots)}"
          + (f" (latest covers seq {after})" if snap is not None else ""))
    if tail_error is not None:
        print(f"tail entries : unreadable ({tail_error})")
    else:
        print(f"tail entries : {sum(counts.values())} to replay "
              f"({records:,} records) -> seq {last_seq}")
        for kind in sorted(counts):
            print(f"  {kind:<10} : {counts[kind]}")
    rc = 0
    if args.fsck:
        report = fsck(wal_dir)
        for seg in report["segments"]:
            line = (f"  {seg['path']} : {seg['frames']} frames, "
                    f"{seg['bytes']:,} bytes")
            if seg["first_seq"] is not None:
                line += f", seq {seg['first_seq']}..{seg['last_seq']}"
            if seg["gap"] is not None:
                line += f" [GAP: {seg['gap']}]"
            if seg["error"] is not None:
                tag = "torn tail" if seg["torn_tail"] else "CORRUPT"
                line += (f" [{tag}: {seg['error']} at offset "
                         f"{seg['error_offset']}]")
            print(line)
        if report["ok"]:
            verdict = "clean" if report["first_error"] is None else "torn tail"
        else:
            verdict = "CORRUPT"
        print(f"fsck         : {verdict} ({report['entries']} entries, "
              f"{report['records']:,} records, last seq "
              f"{report['last_seq']})")
        if report["first_error"] is not None:
            print(f"first error  : {report['first_error']}")
        rc = 0 if report["ok"] else 1
    log = DeadLetterLog(wal_dir)
    try:
        print(f"dead letters : {len(log)}")
    finally:
        log.close()
    return rc


def _cmd_durable_recover(args: argparse.Namespace) -> int:
    from .durable import DurabilityConfig, recover_engine, wal_exists

    if args.workers is not None and args.workers < 0:
        raise SystemExit("durable: --workers must be >= 0")
    if args.replicas < 0:
        raise SystemExit("durable: --replicas must be >= 0")
    if args.compact and args.workers is not None:
        # A compaction snapshot written under a tier/shard override
        # would not load back under the logged meta on the next
        # default recovery.
        raise SystemExit(
            "durable: --compact cannot be combined with --workers "
            "(the snapshot must match the logged tier)"
        )
    if not wal_exists(args.wal_dir):
        print(f"no WAL at {args.wal_dir}")
        return 1
    engine = recover_engine(
        args.wal_dir,
        workers=args.workers,
        standbys=args.replicas,
        durability=DurabilityConfig(args.wal_dir) if args.compact else None,
    )
    try:
        replay = engine.last_replay
        stats = engine.stats()
        workers = getattr(engine, "num_shards", 0)
        tier = f"sharded x{workers}" if workers else "in-process"
        print(f"recovered    : {replay['entries']} WAL entries replayed "
              f"({replay['records']:,} records, "
              f"{replay['rejected']} rejected)")
        print(f"tier         : {tier}")
        print(f"streams      : {stats.streams}")
        print(f"records      : {stats.points_ingested:,}")
        print(f"stored       : {stats.sample_points:,} sample points")
        if args.snapshot:
            path = engine.snapshot(args.snapshot)
            print(f"snapshot     : {path}")
        if args.compact:
            engine.wal.write_snapshot(engine.snapshot_state())
            print(f"compacted    : WAL snapshot covers seq "
                  f"{engine.wal.last_seq}")
    finally:
        engine.close()
    return 0


def _cmd_durable_dead_letters(args: argparse.Namespace) -> int:
    import numpy as np

    from .durable import DeadLetterLog

    if args.limit < 0:
        raise SystemExit("durable: --limit must be >= 0")
    log = DeadLetterLog(args.wal_dir)
    try:
        entries = list(log.iter_entries())
        total = sum(len(e[3]) for e in entries)
        print(f"dead letters : {len(entries)} slices / {total:,} records")
        for seq, _, key, points, ts, watermark in entries[: args.limit]:
            ts_arr = np.asarray(ts, dtype=np.float64).reshape(-1)
            print(f"  #{seq} key={key!r} n={len(points)} "
                  f"ts=[{ts_arr.min():g}, {ts_arr.max():g}] "
                  f"watermark={watermark:g}")
        if len(entries) > args.limit:
            print(f"  ... {len(entries) - args.limit} more")
        if args.replay and entries:
            from .durable import DurabilityConfig, recover_engine, wal_exists

            if not wal_exists(args.wal_dir):
                print(f"no WAL at {args.wal_dir}: nothing to replay into")
                return 1
            # Redriven slices become fresh (logged) ingests; the
            # engine's own dead-letter hook stays off so the two
            # writers never race on the same log file.
            engine = recover_engine(
                args.wal_dir,
                durability=DurabilityConfig(args.wal_dir, dead_letters=False),
            )
            try:
                result = log.replay_into(engine)
            finally:
                engine.close()
            print(f"redriven     : {result['entries']} slices / "
                  f"{result['records']:,} records "
                  f"({result['skipped']} skipped)")
            if result["skipped"] and args.truncate:
                print("truncate skipped: some slices were still rejected")
                return 1
        if args.truncate:
            dropped = log.truncate()
            print(f"truncated    : {dropped} slices dropped")
    finally:
        log.close()
    return 0


def _cmd_durable(args: argparse.Namespace) -> int:
    if args.durable_cmd == "inspect":
        return _cmd_durable_inspect(args)
    if args.durable_cmd == "recover":
        return _cmd_durable_recover(args)
    return _cmd_durable_dead_letters(args)


_COMMANDS = {
    "table1": _cmd_table1,
    "fig10": _cmd_fig10,
    "scaling": _cmd_scaling,
    "lower-bound": _cmd_lower_bound,
    "work": _cmd_work,
    "demo": _cmd_demo,
    "engine": _cmd_engine,
    "shard": _cmd_shard,
    "window": _cmd_window,
    "serve": _cmd_serve,
    "gateway": _cmd_gateway,
    "metrics": _cmd_metrics,
    "durable": _cmd_durable,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

"""Refinement trees (Section 5.1).

The adaptively sampled hull refines each edge of the uniformly sampled
hull through a binary tree over dyadic angular ranges.  Each node covers
a range ``[lo, hi]`` (both :class:`~repro.geometry.directions.
DyadicDirection`), stores the hull edge ``(a, b)`` whose endpoints are
the extrema in those two directions, and — when refined — the extremum
``t`` in the bisecting direction together with two children covering the
half-ranges.

Node taxonomy (matching the paper):

* **edge leaf** — an unrefined range with ``a != b``; contributes one
  edge (and one uncertainty triangle) to the adaptive hull.
* **vertex node** — a range whose extremum collapsed onto a single
  point (``a == b``); a "zero-length edge that is not refined further".
* **internal node** — a refined range; its own edge data stays current
  so its weight/threshold can be re-evaluated for unrefinement.

The tree height is capped at ``k <= log2 r`` (Section 5.1): ``k = 0``
degenerates to uniform sampling, ``k = log2 r`` gives the full O(D/r^2)
error bound.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..geometry.directions import DyadicDirection
from ..geometry.vec import Point, Vector

__all__ = ["RefinementNode"]


class RefinementNode:
    """One node of a refinement tree.

    Attributes:
        lo, hi: the dyadic directions bounding the angular range.
        a, b: sample points extreme in ``lo`` / ``hi`` respectively.
        depth: refinement depth (the range spans ``theta0 / 2**depth``).
        mid: bisecting direction (set when the node is refined).
        t: extremum stored for ``mid`` (== left.b == right.a).
        left, right: children (None for leaves).
        alive: False once the node has been removed from its tree —
            stale queue entries check this flag (lazy deletion).
    """

    __slots__ = (
        "lo",
        "hi",
        "a",
        "b",
        "depth",
        "mid",
        "t",
        "left",
        "right",
        "alive",
        "_mid_vec",
        "_ell",
        "_ell_key",
        "_thr",
        "_eff",
    )

    def __init__(
        self,
        lo: DyadicDirection,
        hi: DyadicDirection,
        a: Point,
        b: Point,
        depth: int,
    ):
        self.lo = lo
        self.hi = hi
        self.a = a
        self.b = b
        self.depth = depth
        self.mid: Optional[DyadicDirection] = None
        self.t: Optional[Point] = None
        self.left: Optional["RefinementNode"] = None
        self.right: Optional["RefinementNode"] = None
        self.alive = True
        self._mid_vec: Optional[Vector] = None
        # Memoised ell_tilde for the edge (a, b): the dyadic range of a
        # node never changes, so the uncertainty-triangle geometry is a
        # pure function of the endpoints — the owner caches it here and
        # revalidates by comparing the key against the current (a, b).
        # The derived perimeter thresholds (exact and queue-rounded) are
        # cached alongside; ``_thr < 0`` marks them stale.
        self._ell: float = 0.0
        self._ell_key: Optional[tuple] = None
        self._thr: float = -1.0
        self._eff: float = 0.0

    # -- structure queries -------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return self.left is None

    @property
    def is_vertex(self) -> bool:
        """True for a collapsed (zero-length edge) node."""
        return self.a == self.b

    @property
    def mid_vector(self) -> Vector:
        """Unit vector of the bisecting direction (computed on demand)."""
        if self._mid_vec is None:
            if self.mid is None:
                self.mid = self.lo.bisect(self.hi)
            self._mid_vec = self.mid.vector
        return self._mid_vec

    # -- tree surgery -------------------------------------------------------

    def refine(self, t: Point) -> None:
        """Split this leaf at its bisecting direction with extremum ``t``.

        Children inherit the endpoint extrema; ``t`` becomes the shared
        endpoint.  Caller is responsible for having chosen ``t`` as the
        extremum among the stored candidates (Section 5.2, step 5c).
        """
        if not self.is_leaf:
            raise ValueError("refine called on an internal node")
        m = self.mid if self.mid is not None else self.lo.bisect(self.hi)
        self.mid = m
        self.t = t
        self.left = RefinementNode(self.lo, m, self.a, t, self.depth + 1)
        self.right = RefinementNode(m, self.hi, t, self.b, self.depth + 1)

    def unrefine(self) -> None:
        """Collapse this internal node back into a leaf.

        The entire subtree below is marked dead so stale threshold-queue
        entries can be recognised and dropped.
        """
        if self.is_leaf:
            return
        for child in (self.left, self.right):
            if child is not None:
                child.kill()
        self.left = None
        self.right = None
        self.t = None

    def kill(self) -> None:
        """Mark this node and its whole subtree as removed."""
        self.alive = False
        if self.left is not None:
            self.left.kill()
        if self.right is not None:
            self.right.kill()

    # -- traversal ------------------------------------------------------------

    def iter_leaves(self) -> Iterator["RefinementNode"]:
        """Yield the leaf nodes of this subtree in angular (CCW) order."""
        if self.is_leaf:
            yield self
        else:
            assert self.left is not None and self.right is not None
            yield from self.left.iter_leaves()
            yield from self.right.iter_leaves()

    def iter_internal(self) -> Iterator["RefinementNode"]:
        """Yield the internal nodes of this subtree (pre-order)."""
        if not self.is_leaf:
            yield self
            assert self.left is not None and self.right is not None
            yield from self.left.iter_internal()
            yield from self.right.iter_internal()

    def count_nodes(self) -> int:
        """Total number of nodes in this subtree."""
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return 1 + self.left.count_nodes() + self.right.count_nodes()

    def height(self) -> int:
        """Height of this subtree (0 for a leaf)."""
        if self.is_leaf:
            return 0
        assert self.left is not None and self.right is not None
        return 1 + max(self.left.height(), self.right.height())

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "internal"
        if self.is_vertex:
            kind = "vertex"
        return (
            f"RefinementNode({kind}, depth={self.depth}, "
            f"lo={self.lo!r}, hi={self.hi!r})"
        )

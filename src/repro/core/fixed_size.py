"""Fixed-size adaptive hull — the variant used in the paper's experiments.

Section 7: "the modified adaptive algorithm refines the maximum-weight
edges until the number of sample directions is 2r, even if that means
refining some edges with weight w(e) <= 1".  This makes the comparison
against a uniform hull with 2r directions exactly size-for-size.

The structure is the same refinement forest as
:class:`~repro.core.adaptive_hull.AdaptiveHull`; only the policy
changes: instead of the weight threshold driving refinement and the
perimeter queue driving unrefinement, a *budget* of exactly ``r``
internal nodes (r uniform + r adaptive = 2r directions) is maintained
greedily:

* under budget: refine the maximum-weight edge leaf;
* over budget (a collapse created slack elsewhere): unrefine the
  minimum-weight collapsible node;
* at budget: swap while the best refinable leaf outweighs the worst
  collapsible internal node — this is what re-aims the sampling
  directions when the stream's distribution shifts (the "changing
  ellipse" experiment).

Each swap strictly increases the total weight of the refined set, so the
rebalancing loop terminates; an iteration cap guards the degenerate
floating-point corner cases.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ..geometry.vec import Point, dot
from .adaptive_hull import AdaptiveHull
from .refinement import RefinementNode
from .weights import sample_weight

__all__ = ["FixedSizeAdaptiveHull"]

_SWAP_MARGIN = 1e-9


class FixedSizeAdaptiveHull(AdaptiveHull):
    """Adaptive hull with exactly ``2r`` sampling directions (Section 7).

    Args:
        r: uniform direction count; the total budget is ``2r``.
        height_limit: refinement-tree height cap (default ``log2 r``).
        max_swaps: safety cap on rebalance iterations per insertion.
    """

    name = "adaptive-fixed"

    def __init__(
        self,
        r: int,
        height_limit: Optional[int] = None,
        max_swaps: Optional[int] = None,
    ):
        super().__init__(r, height_limit=height_limit, queue_mode="exact")
        self.budget = r  # internal (refined) nodes == extra directions
        self.max_swaps = max_swaps if max_swaps is not None else 8 * r
        self.swaps = 0
        # Bulk-survivor safety (see _bulk_noop_safe): True only while
        # the last completed rebalance terminated naturally *after* the
        # latest forest mutation, i.e. while a rebalance is provably a
        # no-op and no-op survivors may skip it in bulk.
        self._budget_steady = True
        self._bulk_safe = True

    # -- persistence ----------------------------------------------------------

    def get_config(self):
        """Constructor kwargs that recreate an equivalent empty summary."""
        return {
            "r": self.r,
            "height_limit": self.k,
            "max_swaps": self.max_swaps,
        }

    def state_dict(self):
        state = super().state_dict()
        state["swaps"] = self.swaps
        return state

    def load_state(self, state) -> None:
        super().load_state(state)
        self.swaps = int(state.get("swaps", 0))

    # -- merging --------------------------------------------------------------

    def merge(self, other: "FixedSizeAdaptiveHull") -> "FixedSizeAdaptiveHull":
        """Adaptive merge, then restore the 2r-direction budget.

        The inherited union (direction-bucket-wise uniform merge plus
        re-offering the other operand's samples) runs under this class's
        disabled threshold policy, so afterwards one greedy rebalance
        brings the refined set back to exactly ``budget`` internal
        nodes — the same maintenance an ordinary insert performs.
        """
        super().merge(other)
        self._rebalance()
        self._rebuild_hull()
        self._bulk_safe = self._budget_steady
        self.swaps += other.swaps
        return self

    # -- policy overrides -----------------------------------------------------

    def _should_unrefine(self, node: RefinementNode, perim: float) -> bool:
        """Budget mode: thresholds never unrefine; only rebalance does."""
        return False

    def _try_refine(self, node: RefinementNode) -> None:
        """Budget mode: no threshold-driven refinement inside the walk."""
        return

    def _bulk_noop_safe(self) -> bool:
        """Bulk no-op accounting is sound only while a rebalance is
        provably a no-op: the forest is unchanged since a rebalance that
        terminated naturally (a re-run would rescan the same forest and
        immediately return).  A pending rebalance — mid-merge before the
        trailing one, or a run cut off by ``max_swaps`` — could still
        act on a state-preserving insert, so those fall back to the
        per-point path."""
        return self._bulk_safe

    def _rebuild_hull(self) -> None:
        # Any mutation makes the last completed rebalance stale until
        # the owning operation's trailing rebalance re-certifies it.
        self._bulk_safe = False
        super()._rebuild_hull()

    def insert(self, p: Point) -> bool:
        """Process a point, then rebalance the direction budget."""
        changed = super().insert(p)
        if changed:
            self._rebalance()
            self._rebuild_hull()
            self._bulk_safe = self._budget_steady
        return changed

    # -- rebalancing -------------------------------------------------------------

    def _node_weight(self, node: RefinementNode) -> float:
        return sample_weight(
            self._ell_tilde(node), self._uniform.perimeter, self.r, node.depth
        )

    def _scan(
        self,
    ) -> Tuple[int, Optional[RefinementNode], float, Optional[RefinementNode], float]:
        """One pass over the forest.

        Returns (internal_count, best_refinable_leaf, its_weight,
        worst_collapsible_internal, its_weight).
        """
        count = 0
        best_leaf: Optional[RefinementNode] = None
        best_w = -math.inf
        worst_int: Optional[RefinementNode] = None
        worst_w = math.inf
        stack: List[RefinementNode] = [
            root for root in self._roots if root is not None
        ]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                if not node.is_vertex and node.depth < self.k:
                    w = self._node_weight(node)
                    if w > best_w:
                        best_w = w
                        best_leaf = node
                continue
            count += 1
            assert node.left is not None and node.right is not None
            if node.left.is_leaf and node.right.is_leaf:
                w = self._node_weight(node)
                if w < worst_w:
                    worst_w = w
                    worst_int = node
            stack.append(node.left)
            stack.append(node.right)
        return count, best_leaf, best_w, worst_int, worst_w

    def _refine_leaf(self, leaf: RefinementNode) -> None:
        mv = leaf.mid_vector
        t = leaf.a if dot(leaf.a, mv) >= dot(leaf.b, mv) else leaf.b
        leaf.refine(t)
        self.refinements += 1

    def _rebalance(self) -> None:
        """Greedy budget maintenance (see module docstring).

        Sets ``_budget_steady``: True when the loop terminated naturally
        (no further action is possible, so an immediate re-run would be
        a no-op — the certificate the bulk-survivor fast path needs),
        False when the ``max_swaps`` cap cut it off mid-rebalance.
        """
        self._budget_steady = True
        if self._uniform.perimeter <= 0.0:
            return
        for _ in range(self.max_swaps):
            count, best_leaf, best_w, worst_int, worst_w = self._scan()
            if count < self.budget:
                if best_leaf is None:
                    return
                self._refine_leaf(best_leaf)
                continue
            if count > self.budget:
                if worst_int is None:
                    return
                worst_int.unrefine()
                self.unrefinements += 1
                continue
            # At budget: swap only on a strict improvement.
            if (
                best_leaf is None
                or worst_int is None
                or best_w <= worst_w + _SWAP_MARGIN
            ):
                return
            worst_int.unrefine()
            self.unrefinements += 1
            # Rescan: the collapsed subtree may have contained best_leaf.
            _count, best_leaf, best_w, _wi, _ww = self._scan()
            if best_leaf is not None:
                self._refine_leaf(best_leaf)
            self.swaps += 1
        self._budget_steady = False

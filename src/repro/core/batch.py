"""Vectorised batch ingestion for containment-filtering summaries.

Real callers rarely arrive with one point at a time: sensor buses,
replayed recordings, and the :class:`~repro.engine.StreamEngine` all
deliver ``(n, 2)`` NumPy blocks.  On the paper's workloads the vast
majority of stream points fall *inside* the current sample hull and are
discarded by the per-point containment fast path — so the batch hot
path can be turned into array operations: test a whole segment against
the sample hull with one vectorised orientation sweep, skip the certain
insiders in bulk, and fall back to per-point :meth:`insert` only for
the rare survivors.

Exact equivalence with sequential ``insert`` is non-negotiable (the
``tests/engine/test_batch_equivalence.py`` suite enforces it), and two
subtleties guard it:

* The vectorised containment test is *conservative*: it certifies a
  point as inside only when every edge cross product clears a margin
  (:data:`MASK_MARGIN`) three orders of magnitude wider than the EPS
  tolerance of :func:`~repro.geometry.polygon.contains_point`.  A
  certified point is therefore guaranteed to also be discarded by the
  sequential containment test; anything near the boundary simply takes
  the per-point path, which is bit-for-bit the sequential code.
* Sample hulls do not grow monotonically — an extremum update can
  *shrink* the hull (dropping a formerly covered region), which would
  invalidate an already-computed mask.  After every summary-changing
  insert the driver checks (vectorised) that the new hull still covers
  the hull the mask was filtered against; while the hull only grows
  (the overwhelmingly common case) the mask stays valid, and a genuine
  shrink downgrades the rest of the current segment to the plain
  per-point loop.

Segments adapt: they start small — while the young hull still changes
on most points, masks would be invalidated immediately — and double up
to ``chunk`` as the hull stabilises, which is what turns the steady
state into nearly pure NumPy.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..geometry.vec import Point

__all__ = [
    "SURVIVOR_LOOKAHEAD",
    "SURVIVOR_SCALAR_PREFIX",
    "as_key_array",
    "as_point_array",
    "as_ts_array",
    "certain_inside_mask",
    "prefiltered_insert_many",
]

#: Relative margin for the conservative vectorised containment test.
#: Must dominate ``repro.geometry.predicates.EPS`` (1e-12) by a wide
#: gap so that a certified-inside point can never flip to "outside"
#: under the exact predicate's tolerance policy.
MASK_MARGIN = 1e-9

#: Default maximum number of points filtered per vectorised segment.
DEFAULT_CHUNK = 4096

#: Initial segment length while the hull is still volatile.
_MIN_SEGMENT = 64

#: Mask re-filters allowed per segment before degrading that segment to
#: the per-point path (protects against adversarial hull churn).
_MAX_REFILTERS = 8

#: Max survivors a summary's ``consume_survivors`` hook classifies per
#: call.  Caps the vectorised lookahead so that a churn-heavy stream
#: (every survivor mutating) costs O(survivors * lookahead) row ops in
#: the worst case instead of O(survivors^2).
SURVIVOR_LOOKAHEAD = 256

#: Rows a ``consume_survivors`` hook steps through the scalar sequential
#: path before paying the fixed cost of a vectorised sweep.  While the
#: young hull mutates every few survivors, the sweep can never amortise;
#: the scalar prefix exits at the first mutation for the cost of the
#: per-point path the driver would have used anyway.
SURVIVOR_SCALAR_PREFIX = 8


def as_point_array(points) -> np.ndarray:
    """Coerce a batch into a validated ``(n, 2)`` float64 array.

    Accepts an ``(n, 2)`` array, any sequence of 2-sequences, or a
    generator of points.  Validation is vectorised: one ``isfinite``
    sweep replaces the two ``float()`` round trips per point that
    dominate naive batch ingestion.

    Raises:
        TypeError: when the input cannot be shaped into ``(n, 2)``.
        ValueError: when any row has a NaN or infinite coordinate (the
            error names the first offending row).
    """
    if not isinstance(points, (np.ndarray, list, tuple)):
        points = list(points)  # generators and other lazy iterables
    try:
        arr = np.asarray(points, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise TypeError(
            f"batch must be coercible to an (n, 2) float array: {exc}"
        ) from exc
    if arr.ndim == 1 and arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise TypeError(f"batch must have shape (n, 2), got {arr.shape}")
    finite = np.isfinite(arr)
    if not finite.all():
        bad = int(np.nonzero(~finite.all(axis=1))[0][0])
        raise ValueError(f"batch row {bad} is not finite: {tuple(arr[bad])!r}")
    return np.ascontiguousarray(arr)


def as_key_array(keys, n: int) -> np.ndarray:
    """Coerce a parallel key sequence into a 1-D array of length ``n``.

    NumPy arrays pass through unchanged; plain sequences are wrapped in
    an object array element by element — ``np.asarray`` on a mixed list
    (e.g. ints + strs) would coerce everything to one dtype and
    silently split a logical stream into two keys.  Shared by
    :meth:`repro.engine.StreamEngine.ingest_arrays` and the shard
    layer's fan-out so keyed routing semantics cannot diverge.

    Raises:
        ValueError: when the keys are not a flat length-``n`` sequence.
    """
    if isinstance(keys, np.ndarray):
        key_arr = keys
    else:
        seq = list(keys)
        key_arr = np.empty(len(seq), dtype=object)
        key_arr[:] = seq
    if key_arr.ndim != 1 or len(key_arr) != n:
        raise ValueError(f"keys has shape {key_arr.shape}, expected ({n},)")
    return key_arr


def as_ts_array(ts, n: int) -> Optional[np.ndarray]:
    """Normalise a batch timestamp argument to a length-``n`` float64
    array (or None for "no timestamps").

    A scalar broadcasts to the whole batch.  Shared by the windowed
    summary and both engine tiers so ts normalisation cannot diverge;
    semantic policy (finiteness, monotonicity, clocks) stays with each
    caller.

    Raises:
        ValueError: when ``ts`` is neither a scalar nor a flat
            length-``n`` sequence.
    """
    if ts is None:
        return None
    ts_arr = np.asarray(ts, dtype=np.float64)
    if ts_arr.ndim == 0:
        ts_arr = np.full(n, float(ts_arr))
    if ts_arr.shape != (n,):
        raise ValueError(
            f"ts has shape {ts_arr.shape}, expected a scalar or ({n},)"
        )
    return ts_arr


#: One-entry memo for :func:`_edge_forms`, keyed by hull-list identity.
#: Summaries never mutate a hull list in place (every rebuild installs a
#: fresh list), so identity implies identical contents; holding the
#: reference pins the list so its id cannot be recycled.  The driver
#: filters the same hull object many times per batch (segment after
#: segment until the next mutation), which otherwise rebuilds these
#: arrays from scratch on every call.
_FORMS_MEMO: list = [None, None]


def _edge_forms(hull: Sequence[Point]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Linear forms of a CCW hull's edges (memoised on hull identity).

    For edge ``a -> b`` the orientation cross product of point ``p`` is
    the linear form ``-ey*px + ex*py + (ey*ax - ex*ay)`` with
    ``(ex, ey) = b - a``; a point is left of the edge when the form is
    positive.  Returns ``(N, c, span)``: the ``(h, 2)`` coefficient
    matrix, the ``(h,)`` constants, and the per-edge scale coefficient
    ``|ex| + |ey|`` used to bound the relative tolerance of the exact
    predicate.
    """
    if _FORMS_MEMO[0] is hull:
        return _FORMS_MEMO[1]
    h = np.asarray(hull, dtype=np.float64)
    b = np.empty_like(h)
    b[:-1] = h[1:]
    b[-1] = h[0]
    ex = b[:, 0] - h[:, 0]
    ey = b[:, 1] - h[:, 1]
    coeffs = np.stack((-ey, ex), axis=1)
    const = ey * h[:, 0] - ex * h[:, 1]
    forms = (coeffs, const, np.abs(ex) + np.abs(ey))
    _FORMS_MEMO[0] = hull
    _FORMS_MEMO[1] = forms
    return forms


def certain_inside_mask(
    hull: Sequence[Point], xs: np.ndarray, ys: np.ndarray
) -> Optional[np.ndarray]:
    """Boolean mask of points *certainly* inside a CCW convex hull.

    ``mask[i]`` is True only when point ``i`` clears every edge of
    ``hull`` by more than the relative :data:`MASK_MARGIN` — a strict
    subset of what :func:`~repro.geometry.polygon.contains_point`
    accepts (the exact predicate's tolerance scale ``|t1| + |t2|`` is
    bounded above by ``(|ex| + |ey|) * span`` with ``span`` the
    coordinate spread of the batch and hull) — so a True entry licenses
    skipping the sequential containment test entirely.  Returns None
    for degenerate hulls (< 3 vertices), where no point can be
    certified.
    """
    if len(hull) < 3:
        return None
    coeffs, const, edge_scale = _edge_forms(hull)
    hv = np.asarray(hull, dtype=np.float64)
    span = max(
        max(xs.max(initial=-np.inf), hv[:, 0].max())
        - min(xs.min(initial=np.inf), hv[:, 0].min()),
        max(ys.max(initial=-np.inf), hv[:, 1].max())
        - min(ys.min(initial=np.inf), hv[:, 1].min()),
    )
    cross = coeffs @ np.stack((xs, ys)) + const[:, None]
    return (cross > (MASK_MARGIN * span) * edge_scale[:, None]).all(axis=0)


def _region_covers(outer: Sequence[Point], inner: Sequence[Point]) -> bool:
    """Does hull ``outer`` (as a closed region) cover every vertex of
    ``inner``?  By convexity this certifies region containment, which
    is what keeps a previously computed inside-mask valid after the
    summary changed.  Strict (no tolerance): a borderline cover merely
    triggers a harmless re-filter."""
    if not inner:
        return True
    if len(outer) < 3:
        return False
    coeffs, const, _ = _edge_forms(outer)
    pts = np.asarray(inner, dtype=np.float64)
    cross = coeffs @ pts.T + const[:, None]
    return bool((cross >= 0.0).all())


def prefiltered_insert_many(
    summary, points, chunk: int = DEFAULT_CHUNK
) -> int:
    """Batch-ingest ``points`` into ``summary`` with vectorised pre-filtering.

    ``summary`` must discard contained points exactly as its first
    per-point step (as :class:`~repro.core.uniform_hull.UniformHull` and
    :class:`~repro.core.adaptive_hull.AdaptiveHull` do), counting only
    ``points_seen`` for them.  Returns the number of summary-changing
    points — identical to what a sequential ``insert`` loop would
    return, with identical final state and counters.

    Summaries may additionally expose a ``consume_survivors(sxs, sys)``
    hook: given the coordinate arrays of the remaining mask survivors
    (in stream order), it must ingest a leading run of them with state
    and counters identical to sequential ``insert`` and return
    ``(consumed, changed, mutated)`` with ``consumed >= 1``.  ``mutated``
    may be conservatively True (the driver then revalidates the mask
    against the possibly-changed hull — segmentation of the survivor
    stream is equivalence-invariant, so an extra revalidation can never
    change the result).  The hook is where the adaptive and uniform
    summaries classify survivors in bulk instead of one insert() each.

    Raises:
        ValueError / TypeError: on malformed batches, before any point
            is ingested (atomic validation).
    """
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    arr = as_point_array(points)
    xs = arr[:, 0]
    ys = arr[:, 1]
    n = len(arr)
    consume = getattr(summary, "consume_survivors", None)
    changed = 0
    pos = 0
    seg = min(_MIN_SEGMENT, chunk)
    while pos < n:
        end = min(pos + seg, n)
        refilters = 0
        while pos < end:
            hull = summary.hull()
            if len(hull) < 3:
                # Degenerate hull: nothing can be certified; step
                # per-point until the hull takes shape.
                if summary.insert((float(xs[pos]), float(ys[pos]))):
                    changed += 1
                pos += 1
                continue
            if refilters > _MAX_REFILTERS:
                # Pathologically churning hull: finish this segment on
                # the plain per-point path (bit-for-bit sequential).
                for j in range(pos, end):
                    if summary.insert((float(xs[j]), float(ys[j]))):
                        changed += 1
                pos = end
                break
            ref_hull = list(hull)
            # Filter against the live hull object (not the copy): its
            # identity keys the edge-forms memo across segments.
            mask = certain_inside_mask(hull, xs[pos:end], ys[pos:end])
            survivors = np.flatnonzero(~mask)
            done = pos  # next index whose points_seen is unaccounted
            dirty = False
            if consume is not None:
                sxs = xs[pos + survivors]
                sys_ = ys[pos + survivors]
                i = 0
                m = len(survivors)
                while i < m:
                    consumed, ch, mutated = consume(sxs[i:], sys_[i:])
                    changed += ch
                    # The hook accounted points_seen for the consumed
                    # survivors themselves; the certified insiders
                    # interleaved with them are billed here.
                    last = pos + int(survivors[i + consumed - 1])
                    summary.points_seen += (last + 1 - done) - consumed
                    done = last + 1
                    i += consumed
                    if mutated:
                        new_hull = summary.hull()
                        if new_hull != ref_hull and not _region_covers(
                            new_hull, ref_hull
                        ):
                            dirty = True
                            break
            else:
                for off in survivors:
                    j = pos + int(off)
                    # Everything between the last survivor and this one
                    # is certified inside: sequential insert would
                    # discard each after bumping points_seen.
                    summary.points_seen += j - done
                    if summary.insert((float(xs[j]), float(ys[j]))):
                        changed += 1
                        new_hull = summary.hull()
                        if new_hull != ref_hull and not _region_covers(
                            new_hull, ref_hull
                        ):
                            # The hull shrank: the mask past this point
                            # is no longer certified — re-filter the
                            # rest of the segment against the new hull.
                            done = j + 1
                            dirty = True
                            break
                    done = j + 1
            if dirty:
                refilters += 1
                pos = done
                continue
            summary.points_seen += end - done
            pos = end
        # Segments grow while masks survive whole segments and shrink
        # while the young hull still churns, bounding wasted filter work.
        if refilters == 0:
            seg = min(seg * 2, chunk)
        else:
            seg = max(min(_MIN_SEGMENT, chunk), seg // 2)
    return changed

"""The adaptively sampled hull for streaming points (Section 5).

This is the paper's main contribution.  On top of the uniformly sampled
hull (extrema in ``r`` fixed directions) the scheme maintains up to
``r + 1`` additional extrema in *adaptively chosen* dyadic directions,
organised as refinement trees over the uniform edges.  The refinement
policy is driven by the sample weight

    w(e) = r * ell_tilde(e) / P - depth(e)

(Section 4): an edge-range is kept refined while ``w(e) > 1``, i.e.
while the perimeter ``P`` of the uniformly sampled hull is below the
edge's threshold ``r * ell_tilde(e) / (1 + depth)``.  Refined nodes sit
in a threshold queue (exact heap, or the Matias power-of-two buckets of
Section 5.3) and are unrefined as ``P`` grows past their thresholds.

The resulting sample has at most ``2r + 1`` points and its convex hull
stays within ``O(D / r**2)`` of the true hull at every instant
(Theorem 5.4), against ``O(D / r)`` for uniform sampling alone.

Per-point processing
--------------------
A point inside the current sample hull is discarded after one O(log r)
containment test (a conservative version of the paper's
ring-of-uncertainty-triangles test: we discard a *subset* of what the
paper discards, so the error bound is preserved verbatim).  A point
outside the sample hull updates every sampling direction it beats and
locally re-runs refinement — O(r) tree-node visits in the worst case,
against the paper's O(log r) amortized bound; the operation counters
(``points_processed``, ``nodes_visited``) let the benchmarks verify that
the *amortized* per-point work on the paper's workloads matches the
O(log r) regime.  See DESIGN.md ("substitutions") for the discussion.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..geometry.directions import DyadicDirection
from ..geometry.hull import convex_hull
from ..geometry.polygon import contains_point, contains_points
from ..geometry.predicates import points_in_triangles
from ..geometry.vec import Point, Vector, dot
from ..structures.bucket_queue import make_threshold_queue
from .base import HullSummary, coerce_point
from .batch import (
    DEFAULT_CHUNK,
    SURVIVOR_LOOKAHEAD,
    SURVIVOR_SCALAR_PREFIX,
    prefiltered_insert_many,
)
from .refinement import RefinementNode
from .uncertainty import UncertaintyTriangle, triangle_for_edge
from .uniform_hull import UniformHull
from .weights import refine_threshold, sample_weight

__all__ = ["AdaptiveHull"]


class AdaptiveHull(HullSummary):
    """Streaming adaptive convex-hull summary (Algorithm AdaptiveHull).

    Args:
        r: number of uniform sampling directions (>= 8; the error
            analysis of Lemma 5.1 needs ``r > 2*pi``).
        height_limit: refinement-tree height cap ``k``; defaults to
            ``round(log2 r)``, the paper's accuracy-maximising choice.
            ``k = 0`` reduces the scheme to uniform sampling.
        queue_mode: ``"pow2"`` for the O(1) Matias bucket queue
            (the paper's final design), ``"exact"`` for an exact heap —
            kept for the ablation benchmark.
        ring_discard: when True, implement the paper's step 1 exactly:
            a point inside the *ring of uncertainty triangles* (not just
            the sample hull) is discarded.  This skips the tree update
            for points that provably cannot improve any active
            direction's extremum beyond its tolerance; the error
            analysis (Lemma 5.1's offset lines) is designed for it.
            Default False: discard only inside the hull — a conservative
            subset that processes more points and errs on accuracy.

    Attributes:
        points_seen / points_processed: stream length vs. points that
            survived the containment fast path.
        refinements / unrefinements / nodes_visited: operation counters
            backing the amortized-cost benchmarks.
    """

    name = "adaptive"

    def __init__(
        self,
        r: int,
        height_limit: Optional[int] = None,
        queue_mode: str = "pow2",
        ring_discard: bool = False,
    ):
        if r < 8:
            raise ValueError("AdaptiveHull requires r >= 8 (Lemma 5.1 needs r > 2*pi)")
        self.r = r
        self.theta0 = 2.0 * math.pi / r
        if height_limit is None:
            height_limit = max(1, round(math.log2(r)))
        if height_limit < 0:
            raise ValueError("height_limit must be >= 0")
        self.k = height_limit
        self.queue_mode = queue_mode
        self.ring_discard = ring_discard
        self.ring_discards = 0
        self._uniform = UniformHull(r)
        self._roots: List[Optional[RefinementNode]] = [None] * r
        self._queue = make_threshold_queue(queue_mode)
        self._hull: List[Point] = []
        self._vec_cache: Dict[DyadicDirection, Vector] = {}
        # Survivor fast-path state (see insert).  After a full tree walk
        # the forest is steady for the current perimeter, so a point
        # that changes no uniform support can only disturb the trees
        # whose internal-node mid-direction support it beats; the
        # registry/count/ring caches make that test one multiply-add
        # sweep.  All three are invalidated at the _rebuild_hull
        # chokepoint.  _needs_full_sync forces the classic full walk
        # when the forest is not known to be steady (fresh summary,
        # load_state drops pure-leaf roots).
        self._needs_full_sync = True
        self._registry_cache: Optional[Tuple[np.ndarray, ...]] = None
        self._tree_count_cache: Optional[Tuple[List[int], int]] = None
        self._ring_cache: Optional[np.ndarray] = None
        self.points_seen = 0
        self.points_processed = 0
        self.refinements = 0
        self.unrefinements = 0
        self.nodes_visited = 0

    # -- HullSummary interface ----------------------------------------------

    def insert(self, p: Point) -> bool:
        """Process one stream point.

        Step 1 of Algorithm AdaptiveHull: discard points inside the
        current approximate hull.  Surviving points update the uniform
        extrema (step 2), trigger queue-driven unrefinement as the
        perimeter grows (step 4), and rebuild the affected refinement
        trees (steps 3 and 5).
        """
        p = coerce_point(p)
        self.points_seen += 1
        if self._hull and contains_point(self._hull, p):
            return False
        # The ring shortcut needs a genuine polygon: on a degenerate
        # (collinear) hull the uncertainty triangles collapse onto the
        # support line and would certify points far beyond the segment
        # (e.g. (0,3) against the hull [(0,0),(0,1)]), violating the
        # Corollary 5.2 bound.
        if (
            self.ring_discard
            and len(self._hull) >= 3
            and self._inside_ring(p)
        ):
            self.ring_discards += 1
            return False
        self.points_processed += 1
        changed_dirs = self._uniform.offer_changed(p)
        if len(changed_dirs) or self._needs_full_sync:
            # A uniform extremum changed: the perimeter (and possibly
            # tree endpoints) moved, so run the classic full pass —
            # queue-driven unrefinement plus a walk of every tree.
            if len(changed_dirs):
                self._drain_queue()
            for j in range(self.r):
                self._sync_tree(j, p)
            self._needs_full_sync = False
            self._rebuild_hull()
            return True
        # No uniform support moved: the perimeter and every tree's
        # endpoints are unchanged, so a tree walk can only act where p
        # beats an internal node's mid-direction support — everywhere
        # else the walk is a provable no-op that visits exactly
        # count_nodes(root) nodes.  Walk only the dirty trees and
        # reconstruct the clean trees' nodes_visited arithmetically.
        counts, total = self._tree_node_counts()
        dirty = self._dirty_trees(p)
        if not len(dirty):
            # p beats no active sampling direction at all: pure counter
            # churn.  The samples are untouched, so the cached hull (and
            # the registry/ring caches) stay valid — the rebuild is
            # skipped entirely (deferred-rebuild fast path).
            self.nodes_visited += total
            return True
        self.nodes_visited += total - sum(counts[int(j)] for j in dirty)
        for j in dirty:
            self._sync_tree(int(j), p)
        self._rebuild_hull()
        return True

    def insert_many(self, points, chunk: int = DEFAULT_CHUNK) -> int:
        """Vectorised batch ingestion (see :mod:`repro.core.batch`).

        Pre-filters each chunk against the current sample hull with one
        NumPy orientation sweep before running the full per-point update
        on the survivors.  Exactly equivalent to sequential
        :meth:`insert` — same hull, samples, refinement forest, and
        operation counters.
        """
        return prefiltered_insert_many(self, points, chunk=chunk)

    def hull(self) -> List[Point]:
        """Convex hull of the current sample points (CCW, cached)."""
        return self._hull

    def samples(self) -> List[Point]:
        """Distinct stored sample points: the uniform extrema plus one
        extremum per refined (internal) tree node.  Theorem 5.4 bounds
        this at ``2r + 1``."""
        out = dict.fromkeys(self._uniform.samples())
        # Explicit pre-order stack: this runs inside every hull rebuild,
        # where the recursive-generator form dominated the profile.
        for root in self._roots:
            if root is None:
                continue
            stack = [root]
            while stack:
                node = stack.pop()
                if node.left is not None:
                    if node.t is not None:
                        out.setdefault(node.t, None)
                    stack.append(node.right)
                    stack.append(node.left)
        return list(out)

    # -- merging -------------------------------------------------------------

    def merge(self, other: "AdaptiveHull") -> "AdaptiveHull":
        """Fold another adaptive summary into this one.

        Two-phase union.  First the uniform layers merge
        direction-bucket-wise (one vectorised support comparison keeps
        the extreme point per fixed direction — see
        :meth:`UniformHull.merge_directions`), after which the threshold
        queue is drained against the grown perimeter and every
        refinement tree re-synced, exactly the step-4/5 sequence a
        hull-changing insert runs.  Second, the other operand's stored
        samples are re-offered through :meth:`insert_many` — the same
        vectorised prefilter + survivor path batch ingestion uses, and
        exactly equivalent to a per-point :meth:`insert` loop — so they
        can compete for the adaptively chosen dyadic directions; points
        that fall inside the merged hull are discarded by step 1, which
        is sound — a contained point beats no direction's support.

        The result is a valid adaptive summary of the concatenated
        stream: the sample budget (≤ 2r + 1) and the Theorem 5.4 error
        bound hold as after any insert sequence, with the other
        operand's already-discarded points accounted for by *its* bound.
        Counters afterwards describe the union stream (operand sums);
        the merge machinery itself is not billed.
        """
        self._require_mergeable(other)
        seen = self.points_seen + other.points_seen
        processed = self.points_processed + other.points_processed
        self.refinements += other.refinements
        self.unrefinements += other.unrefinements
        self.nodes_visited += other.nodes_visited
        self.ring_discards += other.ring_discards
        extras = other.samples()
        if self._uniform.merge_directions(other.uniform_layer):
            self._drain_queue()
            for j in range(self.r):
                self._sync_tree(j, None)
            self._needs_full_sync = False
            self._rebuild_hull()
        if extras:
            self.insert_many(extras)
        self.points_seen = seen
        self.points_processed = processed
        return self

    # -- structure accounting ------------------------------------------------

    @property
    def active_direction_count(self) -> int:
        """Currently active sampling directions: r uniform + one per
        internal refinement node."""
        return self.r + self.internal_node_count

    @property
    def internal_node_count(self) -> int:
        """Total refined (internal) nodes across all trees."""
        return sum(
            sum(1 for _ in root.iter_internal())
            for root in self._roots
            if root is not None
        )

    @property
    def perimeter(self) -> float:
        """Perimeter P of the underlying uniformly sampled hull."""
        return self._uniform.perimeter

    @property
    def uniform_layer(self) -> UniformHull:
        """The underlying uniformly sampled hull (read-only use)."""
        return self._uniform

    def leaf_triangles(self) -> Iterator[UncertaintyTriangle]:
        """Uncertainty triangles of the adaptive hull's leaf edges.

        The union of these triangles is the uncertainty ring: the true
        hull lies between the sample hull and the ring boundary.  Vertex
        nodes (collapsed edges) are skipped — their triangles are empty.
        """
        for j in range(self.r):
            root = self._roots[j]
            if root is None:
                continue
            for leaf in root.iter_leaves():
                if leaf.is_vertex:
                    continue
                yield triangle_for_edge(
                    leaf.a, leaf.b, self._dir_vec(leaf.lo), self._dir_vec(leaf.hi)
                )

    def node_weight(self, node: RefinementNode) -> float:
        """Current sample weight of a tree node (diagnostics/ablation)."""
        return sample_weight(
            self._ell_tilde(node), self._uniform.perimeter, self.r, node.depth
        )

    def check_invariants(self) -> None:
        """Raise AssertionError if a structural invariant is violated.

        Used by the test suite and failure-injection tests: endpoint
        consistency along each tree, depth bounds, and the sample-size
        bound of Theorem 5.4.
        """
        assert len(self.samples()) <= 2 * self.r + 1, "sample budget exceeded"
        for j in range(self.r):
            root = self._roots[j]
            if root is None:
                continue
            a = self._uniform.extreme(j)
            b = self._uniform.extreme(j + 1)
            assert root.a == a and root.b == b, "root endpoints out of sync"
            self._check_node(root)

    def _check_node(self, node: RefinementNode) -> None:
        assert node.alive
        assert node.depth <= self.k
        if node.is_leaf:
            return
        assert node.left is not None and node.right is not None
        assert node.left.a == node.a and node.left.b == node.t
        assert node.right.a == node.t and node.right.b == node.b
        assert node.left.depth == node.depth + 1
        self._check_node(node.left)
        self._check_node(node.right)

    # -- persistence ---------------------------------------------------------

    def get_config(self) -> Dict:
        """Constructor kwargs that recreate an equivalent empty summary."""
        return {
            "r": self.r,
            "height_limit": self.k,
            "queue_mode": self.queue_mode,
            "ring_discard": self.ring_discard,
        }

    def state_dict(self) -> Dict:
        """JSON-serialisable snapshot: uniform layer, refinement forest
        (internal-node extrema only — endpoints and dyadic ranges are
        derivable), and the operation counters."""
        return {
            "uniform": self._uniform.state_dict(),
            "roots": [self._tree_state(root) for root in self._roots],
            "counters": {
                "points_seen": self.points_seen,
                "points_processed": self.points_processed,
                "refinements": self.refinements,
                "unrefinements": self.unrefinements,
                "nodes_visited": self.nodes_visited,
                "ring_discards": self.ring_discards,
            },
        }

    def load_state(self, state: Dict) -> None:
        """Restore a :meth:`state_dict` snapshot (in place).

        The refinement forest is rebuilt node-for-node and the threshold
        queue repopulated with one entry per internal node at its
        current threshold, so the restored summary has the identical
        sample set and hull, and continues streaming under the same
        policy.
        """
        roots_state = state["roots"]
        if len(roots_state) != self.r:
            raise ValueError(
                f"snapshot has {len(roots_state)} trees, summary has r={self.r}"
            )
        self._uniform.load_state(state["uniform"])
        self._queue = make_threshold_queue(self.queue_mode)
        self._roots = [None] * self.r
        for j, tree in enumerate(roots_state):
            if tree is None:
                continue
            a = self._uniform.extreme(j)
            b = self._uniform.extreme(j + 1)
            if a is None or b is None:
                raise ValueError(f"snapshot tree {j} has no uniform edge under it")
            root = RefinementNode(
                DyadicDirection.uniform(j, self.r),
                DyadicDirection.uniform(j + 1, self.r),
                a,
                b,
                0,
            )
            self._restore_tree(root, tree)
            self._roots[j] = root
        counters = state["counters"]
        self.points_seen = int(counters["points_seen"])
        self.points_processed = int(counters["points_processed"])
        self.refinements = int(counters["refinements"])
        self.unrefinements = int(counters["unrefinements"])
        self.nodes_visited = int(counters["nodes_visited"])
        self.ring_discards = int(counters["ring_discards"])
        # Snapshots store pure-leaf trees as None (their roots are
        # recreated lazily), so the restored forest is not node-for-node
        # the live one; the next surviving point must take the classic
        # full walk, which recreates those roots exactly as sequential
        # streaming would.
        self._needs_full_sync = True
        self._rebuild_hull()

    def _tree_state(self, node: Optional[RefinementNode]):
        """Nested dict for an internal node, None for a leaf/absent tree."""
        if node is None or node.is_leaf:
            return None
        assert node.t is not None
        return {
            "t": [node.t[0], node.t[1]],
            "left": self._tree_state(node.left),
            "right": self._tree_state(node.right),
        }

    def _restore_tree(self, node: RefinementNode, tree: Optional[Dict]) -> None:
        if tree is None:
            return
        node.refine((float(tree["t"][0]), float(tree["t"][1])))
        thr = refine_threshold(self._ell_tilde(node), self.r, node.depth)
        self._queue.push(thr, node)
        assert node.left is not None and node.right is not None
        self._restore_tree(node.left, tree["left"])
        self._restore_tree(node.right, tree["right"])

    # -- internals -----------------------------------------------------------

    def _trusted_ring_triangles(self) -> np.ndarray:
        """Cached ``(m, 3, 2)`` array of the *trusted* leaf uncertainty
        triangles, as ``(a, apex, b)`` rows (the argument order of the
        scalar ``point_in_triangle`` test they replace).

        Trusted means the triangle may certify a ring discard: apex
        defined, height within the Corollary 5.2 bound, non-degenerate.
        The forest and perimeter are frozen between mutations, so the
        array is a pure function of summary state — it is rebuilt lazily
        and invalidated at the :meth:`_rebuild_hull` chokepoint.
        """
        tris = self._ring_cache
        if tris is None:
            bound = 16.0 * math.pi * self.perimeter / (self.r * self.r)
            rows = []
            for t in self.leaf_triangles():
                if t.apex is None:
                    continue
                if t.ell_tilde > bound:
                    continue  # too tall to certify the discard
                # A collapsed (zero-area) triangle certifies nothing:
                # the orientation predicate would treat its whole
                # support line as boundary and "contain" points far
                # beyond the segment (e.g. (0,3) against the sliver
                # (0,-1),(0,-1),(0,0)).
                area2 = (t.apex[0] - t.a[0]) * (t.b[1] - t.a[1]) - (
                    t.apex[1] - t.a[1]
                ) * (t.b[0] - t.a[0])
                if area2 == 0.0:
                    continue
                rows.append((t.a, t.apex, t.b))
            tris = (
                np.asarray(rows, dtype=np.float64)
                if rows
                else np.empty((0, 3, 2), dtype=np.float64)
            )
            self._ring_cache = tris
        return tris

    def _inside_ring(self, p: Point) -> bool:
        """Is ``p`` inside some *trusted* leaf uncertainty triangle?

        Called only for points already outside the sample hull, so
        membership in the ring reduces to membership in a triangle —
        one vectorised sweep over the cached trusted-triangle array
        (bit-identical to the per-triangle ``point_in_triangle`` loop
        it replaced).

        Only triangles whose height already sits within the Corollary
        5.2 bound may certify a discard: a young forest (few processed
        points, lazy queue-driven refinement) can still hold leaves
        with ``ell_tilde`` far above ``16*pi*P/r^2``, and discarding a
        point inside such a triangle would break the error guarantee
        the discard exists to preserve (hypothesis found
        ``[(0,0), (0,-1), (-1,0), (0,3)]`` at r=8).  Untrusted leaves
        simply let the point take the full processing path, which
        refines them.
        """
        tris = self._trusted_ring_triangles()
        if not len(tris):
            return False
        px = np.array([p[0]], dtype=np.float64)
        py = np.array([p[1]], dtype=np.float64)
        return bool(points_in_triangles(px, py, tris).any())

    def _direction_registry(self) -> Tuple[np.ndarray, ...]:
        """Flat registry of the active *internal* sampling directions.

        Returns ``(mvx, mvy, support, tree)`` arrays with one entry per
        internal node: its mid-direction unit vector components, the
        support ``dot(t, mid_vector)`` of its stored extremum, and the
        index of the tree that owns it.  While the uniform layer is
        unchanged, a surviving point can only disturb the trees whose
        registry support it beats (see insert); one elementwise
        multiply-add against these arrays finds them.  Rebuilt lazily,
        invalidated at :meth:`_rebuild_hull`.
        """
        reg = self._registry_cache
        if reg is None:
            mvx: List[float] = []
            mvy: List[float] = []
            sup: List[float] = []
            tree: List[int] = []
            for j, root in enumerate(self._roots):
                if root is None:
                    continue
                for node in root.iter_internal():
                    mv = node.mid_vector
                    t = node.t
                    mvx.append(mv[0])
                    mvy.append(mv[1])
                    sup.append(t[0] * mv[0] + t[1] * mv[1])
                    tree.append(j)
            reg = (
                np.asarray(mvx, dtype=np.float64),
                np.asarray(mvy, dtype=np.float64),
                np.asarray(sup, dtype=np.float64),
                np.asarray(tree, dtype=np.intp),
            )
            self._registry_cache = reg
        return reg

    def _dirty_trees(self, p: Point) -> np.ndarray:
        """Ascending indices of trees holding an internal node whose
        mid-direction support ``p`` strictly beats (the only trees a
        walk could change while the uniform layer is unchanged)."""
        mvx, mvy, sup, tree = self._direction_registry()
        if not len(sup):
            return tree
        hits = (p[0] * mvx + p[1] * mvy) > sup
        if not hits.any():
            return tree[:0]
        return np.unique(tree[hits])

    def _tree_node_counts(self) -> Tuple[List[int], int]:
        """Per-tree live node counts and their total (cached).

        A no-op walk of a steady tree visits exactly ``count_nodes``
        nodes, which is how the survivor fast path reconstructs
        ``nodes_visited`` without walking clean trees.
        """
        cached = self._tree_count_cache
        if cached is None:
            counts = [
                root.count_nodes() if root is not None else 0
                for root in self._roots
            ]
            cached = (counts, sum(counts))
            self._tree_count_cache = cached
        return cached

    def _bulk_noop_safe(self) -> bool:
        """May ``consume_survivors`` account no-op survivors in bulk?

        True whenever the forest is steady for the current perimeter —
        always the case here after any insert; the fixed-size subclass
        overrides this to rule out a pending budget rebalance.
        """
        return True

    def consume_survivors(self, sxs: np.ndarray, sys: np.ndarray):
        """Bulk-ingest a leading run of prefilter survivors (see
        :func:`repro.core.batch.prefiltered_insert_many`).

        One vectorised sweep classifies the rows exactly as sequential
        :meth:`insert` would: exact containment (discard), trusted-ring
        membership (discard + ring counter), or a support sweep over
        *every* active sampling direction — uniform and internal — that
        separates pure counter churn (state provably untouched) from
        genuinely mutating points.  The non-mutating prefix is accounted
        in bulk; the first mutating row goes through the real
        :meth:`insert`.  Returns ``(consumed, changed, mutated)``.
        """
        hull = self._hull
        if self._needs_full_sync or not self._bulk_noop_safe() or len(hull) < 3:
            return 1, int(self.insert((float(sxs[0]), float(sys[0])))), True
        k = min(len(sxs), SURVIVOR_LOOKAHEAD)
        # Scalar prefix: while mutations are dense (young hull) the
        # sweep's fixed cost cannot amortise, so the first few rows take
        # the sequential path, bailing at the first state change.  Every
        # ``_rebuild_hull`` installs a fresh hull list, so object
        # identity detects mutation exactly (the deferred-rebuild
        # counter-churn path keeps the same list).
        changed = 0
        split = k if k < 2 * SURVIVOR_SCALAR_PREFIX else SURVIVOR_SCALAR_PREFIX
        for i in range(split):
            changed += int(self.insert((float(sxs[i]), float(sys[i]))))
            if self._hull is not hull:
                return i + 1, changed, True
        if split == k:
            return k, changed, False
        sxs = sxs[split:k]
        sys = sys[split:k]
        k -= split
        inside = contains_points(hull, sxs, sys)
        outside = ~inside
        if self.ring_discard:
            tris = self._trusted_ring_triangles()
            if len(tris):
                ring = outside & points_in_triangles(sxs, sys, tris).any(axis=1)
            else:
                ring = np.zeros(k, dtype=bool)
        else:
            ring = np.zeros(k, dtype=bool)
        u = self._uniform
        beats = (
            (sxs[:, None] * u._dx[None, :] + sys[:, None] * u._dy[None, :])
            > u._support[None, :]
        ).any(axis=1)
        mvx, mvy, sup, _tree = self._direction_registry()
        if len(sup):
            beats |= (
                (sxs[:, None] * mvx[None, :] + sys[:, None] * mvy[None, :])
                > sup[None, :]
            ).any(axis=1)
        mutating = outside & ~ring & beats
        first = int(np.argmax(mutating)) if mutating.any() else k
        # Bulk-account the non-mutating prefix exactly as sequential
        # insert: insiders bump points_seen only; ring hits add a ring
        # discard; the rest are processed no-ops — uniform offer plus a
        # full-forest no-op walk, all reconstructed arithmetically.
        n_inside = int(np.count_nonzero(inside[:first]))
        n_ring = int(np.count_nonzero(ring[:first]))
        n_noop = first - n_inside - n_ring
        self.points_seen += first
        self.ring_discards += n_ring
        changed += n_noop  # a processed no-op still returns True
        if n_noop:
            self.points_processed += n_noop
            u.points_processed += n_noop
            _counts, total = self._tree_node_counts()
            self.nodes_visited += n_noop * total
        if first < k:
            changed += int(self.insert((float(sxs[first]), float(sys[first]))))
            return split + first + 1, changed, True
        return split + k, changed, False

    def _dir_vec(self, d: DyadicDirection) -> Vector:
        v = self._vec_cache.get(d)
        if v is None:
            v = d.vector
            self._vec_cache[d] = v
        return v

    def _ell_tilde(self, node: RefinementNode) -> float:
        # ell_tilde is a pure function of the edge endpoints and the
        # node's (immutable) dyadic range — memoised on the node, keyed
        # by the endpoints, because the walk re-derives thresholds from
        # it at every visit.
        key = (node.a, node.b)
        if node._ell_key != key:
            node._ell = triangle_for_edge(
                node.a, node.b, self._dir_vec(node.lo), self._dir_vec(node.hi)
            ).ell_tilde
            node._ell_key = key
            node._thr = -1.0  # derived thresholds are now stale
        return node._ell

    def _effective_threshold(self, node: RefinementNode) -> tuple:
        """(effective, exact) perimeter thresholds for a node's weight.

        Memoised with ``_ell_tilde``: both are pure functions of the
        endpoints (``refine_threshold`` is never negative, so ``-1``
        marks staleness), and the pow2 queue's rounding costs a
        ``log2`` per call that the walk would otherwise repeat at every
        node visit."""
        ell = self._ell_tilde(node)
        thr = node._thr
        if thr < 0.0:
            node._thr = thr = refine_threshold(ell, self.r, node.depth)
            node._eff = self._queue.effective_threshold(thr)
        return node._eff, thr

    def _sync_tree(self, j: int, p: Optional[Point]) -> None:
        """Steps 3 and 5 for the tree over uniform edge j."""
        a = self._uniform.extreme(j)
        b = self._uniform.extreme(j + 1)
        root = self._roots[j]
        if a is None or b is None:
            return
        if a == b:
            # Step 3: the uniform edge became trivial; delete its tree.
            if root is not None:
                root.kill()
                self._roots[j] = None
            return
        if root is None or not root.alive:
            root = RefinementNode(
                DyadicDirection.uniform(j, self.r),
                DyadicDirection.uniform(j + 1, self.r),
                a,
                b,
                0,
            )
            self._roots[j] = root
        else:
            root.a = a
            root.b = b
        self._fix(root, p)

    def _fix(self, node: RefinementNode, p: Optional[Point]) -> None:
        """Restore the weight invariant in a subtree after endpoint
        updates: replace beaten extrema with ``p``, unrefine nodes whose
        threshold the perimeter has passed, refine leaves whose weight
        climbed above 1 (step 5 of the algorithm)."""
        self.nodes_visited += 1
        perim = self._uniform.perimeter
        if node.a == node.b:
            # Collapsed range: a vertex node stores no children.
            if not node.is_leaf:
                node.unrefine()
                self.unrefinements += 1
            return
        if node.is_leaf:
            self._try_refine(node)
            return
        # Internal node: the bisecting direction is active; let p compete.
        # (dot() inlined: the walk visits every node on the hot path.)
        mv = node.mid_vector
        t = node.t
        assert t is not None
        if p is not None and (
            p[0] * mv[0] + p[1] * mv[1] > t[0] * mv[0] + t[1] * mv[1]
        ):
            node.t = p
        if self._should_unrefine(node, perim):
            node.unrefine()
            self.unrefinements += 1
            return
        assert node.left is not None and node.right is not None
        node.left.a = node.a
        node.left.b = node.t
        node.right.a = node.t
        node.right.b = node.b
        self._fix(node.left, p)
        self._fix(node.right, p)

    def _should_unrefine(self, node: RefinementNode, perim: float) -> bool:
        """Unrefinement policy: collapse once P passes the node threshold.

        Overridden by the fixed-size variant, which manages refinement by
        a global budget instead of per-node thresholds.
        """
        eff, _thr = self._effective_threshold(node)
        return perim >= eff

    def _try_refine(self, node: RefinementNode) -> None:
        """Refine a leaf (recursively) while its weight exceeds 1 and the
        height limit allows (step 5c)."""
        if node.is_vertex or node.depth >= self.k:
            return
        perim = self._uniform.perimeter
        if perim <= 0.0:
            return
        eff, thr = self._effective_threshold(node)
        if perim >= eff:
            return
        # New sampling direction: extremum among the stored candidates.
        mv = node.mid_vector
        t = node.a if dot(node.a, mv) >= dot(node.b, mv) else node.b
        node.refine(t)
        self.refinements += 1
        self._queue.push(thr, node)
        assert node.left is not None and node.right is not None
        self.nodes_visited += 2
        self._try_refine(node.left)
        self._try_refine(node.right)

    def _drain_queue(self) -> None:
        """Step 4: unrefine nodes whose perimeter threshold has passed.

        Entries are lazy: dead or already-collapsed nodes are skipped,
        and nodes whose edge grew (threshold moved outward) are re-queued
        at their new threshold.
        """
        perim = self._uniform.perimeter
        requeue = []
        for node in self._queue.drain_due(perim):
            if not node.alive or node.is_leaf:
                continue
            eff, thr = self._effective_threshold(node)
            if perim >= eff:
                node.unrefine()
                self.unrefinements += 1
            else:
                requeue.append((thr, node))
        for thr, node in requeue:
            self._queue.push(thr, node)

    def _rebuild_hull(self) -> None:
        # Every sample-changing path (insert, merge, load_state) ends
        # here, making it the one chokepoint for the staleness counter —
        # and therefore for the survivor fast-path caches, which are
        # valid precisely while the forest/perimeter are frozen.
        self._bump_generation()
        self._registry_cache = None
        self._tree_count_cache = None
        self._ring_cache = None
        self._hull = convex_hull(self.samples())

"""Sample weights and refinement thresholds (Section 4 / 5.3).

The adaptive scheme assigns each hull edge ``e`` the weight

    w(e) = r * ell_tilde(e) / P  -  log2(theta0 / theta(e)),

where ``P`` is the perimeter of the uniformly sampled hull, ``ell_tilde``
the two non-edge sides of the edge's uncertainty triangle, and
``theta(e)`` its angular range.  Refinement always bisects the range, so
``log2(theta0 / theta(e))`` is simply the edge's refinement depth ``d``.

An edge is refined while ``w(e) > 1``, which rearranges to a *threshold*
on the (monotonically growing) perimeter:

    w(e) > 1   <=>   P < r * ell_tilde(e) / (1 + d) = Thresh(e).

The streaming algorithm stores ``Thresh(e)`` for every refined node in a
threshold queue and unrefines once ``P`` passes it (Section 5.3).
"""

from __future__ import annotations

import math

__all__ = ["sample_weight", "refine_threshold", "needs_refinement"]


def sample_weight(ell_tilde: float, perimeter: float, r: int, depth: int) -> float:
    """The paper's edge weight ``w(e)``.

    Args:
        ell_tilde: two-sided uncertainty-triangle length of the edge.
        perimeter: perimeter P of the uniformly sampled hull (> 0).
        r: number of uniform sampling directions.
        depth: refinement depth d of the edge (0 for uniform-hull edges).

    Returns:
        The weight; ``-inf`` when the perimeter is still zero (all points
        coincident — nothing can or need be refined).
    """
    if perimeter <= 0.0:
        return -math.inf
    return r * ell_tilde / perimeter - depth


def refine_threshold(ell_tilde: float, r: int, depth: int) -> float:
    """Perimeter value at which the edge's weight drops to exactly 1.

    The edge should be refined while ``P < refine_threshold`` and
    unrefined once ``P`` reaches it.
    """
    return r * ell_tilde / (1.0 + depth)


def needs_refinement(
    ell_tilde: float,
    perimeter: float,
    r: int,
    depth: int,
    height_limit: int,
    effective_threshold: float | None = None,
) -> bool:
    """Whether an edge node must be refined under the streaming policy.

    Combines the weight criterion (``w(e) > 1``, expressed through the
    perimeter threshold so the same value drives the unrefinement queue)
    with the refinement-tree height limit ``k`` (Section 5.1).

    Args:
        effective_threshold: optional pre-rounded threshold (the
            power-of-two value when the Matias queue is in use); defaults
            to the exact threshold.
    """
    if depth >= height_limit:
        return False
    if perimeter <= 0.0:
        return False
    thresh = (
        effective_threshold
        if effective_threshold is not None
        else refine_threshold(ell_tilde, r, depth)
    )
    return perimeter < thresh

"""Common interface for streaming hull summaries.

Every summary in this library — the paper's adaptive hull, the uniform
hull, and all baselines — implements :class:`HullSummary`, so the query
layer, the experiment harness, and the trackers are agnostic to which
scheme produced the summary.
"""

from __future__ import annotations

import abc
import math
from typing import Iterable, List

from ..geometry.vec import Point

__all__ = ["HullSummary", "check_point", "coerce_point"]


def check_point(p: Point) -> Point:
    """Validate one stream point: a pair of finite numbers.

    NaN or infinite coordinates would silently poison every orientation
    predicate downstream, so summaries reject them at the boundary.
    Accepts anything indexable whose coordinates support float
    conversion — tuples, lists, NumPy rows, NumPy scalars — without
    round-tripping each coordinate through ``float()`` (``math.isfinite``
    validates in place, which keeps this off the batch-ingestion hot
    path).

    Raises:
        ValueError: on non-finite coordinates.
        TypeError: on inputs that are not 2-sequences of numbers.
    """
    try:
        ok = math.isfinite(p[0]) and math.isfinite(p[1])
    except (TypeError, ValueError, IndexError, KeyError) as exc:
        raise TypeError(f"stream point must be an (x, y) pair, got {p!r}") from exc
    if not ok:
        raise ValueError(f"stream point must be finite, got {p!r}")
    return p


def coerce_point(p: Point) -> Point:
    """Validate ``p`` and normalise it to an ``(x, y)`` tuple of floats.

    The batch paths use this at the boundary so that every stored sample
    is a plain hashable float tuple regardless of whether the caller
    passed tuples, lists, or NumPy rows.  Already-normalised points pass
    through untouched.

    Raises:
        ValueError / TypeError: as :func:`check_point`.
    """
    if type(p) is tuple and len(p) == 2 and type(p[0]) is float and type(p[1]) is float:
        return check_point(p)
    check_point(p)
    return (float(p[0]), float(p[1]))


class HullSummary(abc.ABC):
    """A single-pass summary of a 2-D point stream.

    Subclasses maintain a bounded sample of the stream whose convex hull
    approximates the true convex hull from the inside (every sample is an
    input point, so the approximate hull never overshoots).
    """

    #: Human-readable scheme name for experiment reports.
    name: str = "summary"

    @abc.abstractmethod
    def insert(self, p: Point) -> bool:
        """Process one stream point; return True if the summary changed."""

    @abc.abstractmethod
    def hull(self) -> List[Point]:
        """The approximate convex hull as a CCW convex polygon."""

    @abc.abstractmethod
    def samples(self) -> List[Point]:
        """The currently stored sample points (distinct)."""

    @property
    def sample_size(self) -> int:
        """Number of stored sample points."""
        return len(self.samples())

    def extend(self, points: Iterable[Point]) -> "HullSummary":
        """Insert every point of an iterable; returns self for chaining."""
        for p in points:
            self.insert(p)
        return self

    def insert_many(self, points: Iterable[Point], chunk: int = 4096) -> int:
        """Ingest a batch of points; return how many changed the summary.

        Accepts anything :func:`coerce_point` accepts per row — an
        ``(n, 2)`` NumPy array, a list of tuples, a generator — and is
        exactly equivalent to calling :meth:`insert` point by point (same
        final hull, samples, and operation counters).

        The whole batch is validated *before* any point is ingested, so
        a malformed or non-finite row rejects the batch atomically
        instead of leaving a half-ingested prefix behind.
        :class:`~repro.core.uniform_hull.UniformHull` and
        :class:`~repro.core.adaptive_hull.AdaptiveHull` override this
        with a NumPy-vectorised fast path that pre-filters ``chunk``
        points at a time; the default is the portable per-point loop,
        which accepts ``chunk`` for interface uniformity but has no use
        for it.

        Raises:
            ValueError / TypeError: on malformed or non-finite rows; the
                summary is left untouched.
        """
        batch = [coerce_point(p) for p in points]
        changed = 0
        for p in batch:
            if self.insert(p):
                changed += 1
        return changed

    # -- persistence ---------------------------------------------------------

    def get_config(self) -> dict:
        """Constructor kwargs that recreate an equivalent empty summary.

        Subclasses with constructor parameters (``r``, queue modes, …)
        must override this for snapshots to round-trip; the base default
        suits parameterless schemes.
        """
        return {}

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot of the summary state.

        Default: record the current samples for replay.  This is exact
        for schemes whose state is a function of their samples (e.g.
        the exact hull); the core streaming schemes override it with a
        field-level snapshot that also restores counters and internal
        structure bit-for-bit.
        """
        return {
            "replay_samples": [[p[0], p[1]] for p in self.samples()],
            "points_seen": getattr(self, "points_seen", None),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this (fresh) summary."""
        for p in state["replay_samples"]:
            self.insert((float(p[0]), float(p[1])))
        seen = state.get("points_seen")
        if seen is not None and hasattr(self, "points_seen"):
            try:
                self.points_seen = int(seen)
            except AttributeError:
                pass  # read-only counter (derived property)

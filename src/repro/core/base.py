"""Common interface for streaming hull summaries.

Every summary in this library — the paper's adaptive hull, the uniform
hull, and all baselines — implements :class:`HullSummary`, so the query
layer, the experiment harness, and the trackers are agnostic to which
scheme produced the summary.
"""

from __future__ import annotations

import abc
import math
from typing import Iterable, List

from ..geometry.vec import Point

__all__ = ["HullSummary", "check_point"]


def check_point(p: Point) -> Point:
    """Validate one stream point: a pair of finite floats.

    NaN or infinite coordinates would silently poison every orientation
    predicate downstream, so summaries reject them at the boundary.

    Raises:
        ValueError: on non-finite coordinates.
        TypeError: on inputs that are not 2-sequences of numbers.
    """
    try:
        x = float(p[0])
        y = float(p[1])
    except (TypeError, ValueError, IndexError, KeyError) as exc:
        raise TypeError(f"stream point must be an (x, y) pair, got {p!r}") from exc
    if not (math.isfinite(x) and math.isfinite(y)):
        raise ValueError(f"stream point must be finite, got {p!r}")
    return p


class HullSummary(abc.ABC):
    """A single-pass summary of a 2-D point stream.

    Subclasses maintain a bounded sample of the stream whose convex hull
    approximates the true convex hull from the inside (every sample is an
    input point, so the approximate hull never overshoots).
    """

    #: Human-readable scheme name for experiment reports.
    name: str = "summary"

    @abc.abstractmethod
    def insert(self, p: Point) -> bool:
        """Process one stream point; return True if the summary changed."""

    @abc.abstractmethod
    def hull(self) -> List[Point]:
        """The approximate convex hull as a CCW convex polygon."""

    @abc.abstractmethod
    def samples(self) -> List[Point]:
        """The currently stored sample points (distinct)."""

    @property
    def sample_size(self) -> int:
        """Number of stored sample points."""
        return len(self.samples())

    def extend(self, points: Iterable[Point]) -> "HullSummary":
        """Insert every point of an iterable; returns self for chaining."""
        for p in points:
            self.insert(p)
        return self

"""Common interface for streaming hull summaries.

Every summary in this library — the paper's adaptive hull, the uniform
hull, and all baselines — implements :class:`HullSummary`, so the query
layer, the experiment harness, and the trackers are agnostic to which
scheme produced the summary.
"""

from __future__ import annotations

import abc
import math
from typing import Iterable, List

from ..geometry.vec import Point

__all__ = ["HullSummary", "check_point", "coerce_point", "tree_merge"]


def check_point(p: Point) -> Point:
    """Validate one stream point: a pair of finite numbers.

    NaN or infinite coordinates would silently poison every orientation
    predicate downstream, so summaries reject them at the boundary.
    Accepts anything indexable whose coordinates support float
    conversion — tuples, lists, NumPy rows, NumPy scalars — without
    round-tripping each coordinate through ``float()`` (``math.isfinite``
    validates in place, which keeps this off the batch-ingestion hot
    path).

    Raises:
        ValueError: on non-finite coordinates.
        TypeError: on inputs that are not 2-sequences of numbers.
    """
    try:
        ok = math.isfinite(p[0]) and math.isfinite(p[1])
    except (TypeError, ValueError, IndexError, KeyError) as exc:
        raise TypeError(f"stream point must be an (x, y) pair, got {p!r}") from exc
    if not ok:
        raise ValueError(f"stream point must be finite, got {p!r}")
    return p


def coerce_point(p: Point) -> Point:
    """Validate ``p`` and normalise it to an ``(x, y)`` tuple of floats.

    The batch paths use this at the boundary so that every stored sample
    is a plain hashable float tuple regardless of whether the caller
    passed tuples, lists, or NumPy rows.  Already-normalised points pass
    through untouched.

    Raises:
        ValueError / TypeError: as :func:`check_point`.
    """
    if type(p) is tuple and len(p) == 2 and type(p[0]) is float and type(p[1]) is float:
        return check_point(p)
    check_point(p)
    return (float(p[0]), float(p[1]))


class HullSummary(abc.ABC):
    """A single-pass summary of a 2-D point stream.

    Subclasses maintain a bounded sample of the stream whose convex hull
    approximates the true convex hull from the inside (every sample is an
    input point, so the approximate hull never overshoots).
    """

    #: Human-readable scheme name for experiment reports.
    name: str = "summary"

    #: Monotone mutation counter.  Every state-changing operation —
    #: a summary-changing ``insert``, a ``merge``, a ``load_state`` —
    #: bumps it (via :meth:`_bump_generation`), so derived snapshot
    #: structures such as
    #: :class:`~repro.queries.direction_index.DirectionalExtentIndex`
    #: can detect staleness with one integer comparison instead of
    #: silently serving answers from a dead state.  A class-level zero
    #: keeps parameterless ``__init__``-free subclasses working; the
    #: first bump shadows it with an instance attribute.
    generation: int = 0

    def _bump_generation(self) -> None:
        """Mark the summary mutated (cheap: one integer increment)."""
        self.generation += 1

    @abc.abstractmethod
    def insert(self, p: Point) -> bool:
        """Process one stream point; return True if the summary changed."""

    @abc.abstractmethod
    def hull(self) -> List[Point]:
        """The approximate convex hull as a CCW convex polygon."""

    @abc.abstractmethod
    def samples(self) -> List[Point]:
        """The currently stored sample points (distinct)."""

    @property
    def sample_size(self) -> int:
        """Number of stored sample points."""
        return len(self.samples())

    def extend(self, points: Iterable[Point]) -> "HullSummary":
        """Insert every point of an iterable; returns self for chaining.

        Delegates to :meth:`insert_many`, so every scheme gets the same
        atomic whole-batch validation (and, where available, the
        vectorised fast path) instead of a raw per-point loop: a
        malformed row rejects the batch without a half-ingested prefix.
        """
        self.insert_many(points)
        return self

    def insert_many(self, points: Iterable[Point], chunk: int = 4096) -> int:
        """Ingest a batch of points; return how many changed the summary.

        Accepts anything :func:`coerce_point` accepts per row — an
        ``(n, 2)`` NumPy array, a list of tuples, a generator — and is
        exactly equivalent to calling :meth:`insert` point by point (same
        final hull, samples, and operation counters).

        The whole batch is validated *before* any point is ingested, so
        a malformed or non-finite row rejects the batch atomically
        instead of leaving a half-ingested prefix behind.
        :class:`~repro.core.uniform_hull.UniformHull` and
        :class:`~repro.core.adaptive_hull.AdaptiveHull` override this
        with a NumPy-vectorised fast path that pre-filters ``chunk``
        points at a time; the default is the portable per-point loop,
        which accepts ``chunk`` for interface uniformity but has no use
        for it.

        Raises:
            ValueError / TypeError: on malformed or non-finite rows; the
                summary is left untouched.
        """
        batch = [coerce_point(p) for p in points]
        changed = 0
        for p in batch:
            if self.insert(p):
                changed += 1
        return changed

    # -- merging -------------------------------------------------------------

    def merge(self, other: "HullSummary") -> "HullSummary":
        """Fold another summary of the *same scheme and config* into this one.

        Every stored sample is an input point, which makes the summaries
        naturally mergeable: re-ingesting the other side's samples yields
        a valid summary of the concatenated stream, and the one-sided
        error guarantee of each scheme carries over (the merged hull is
        built from input points of the union and approximates its hull
        within the scheme's bound — for the adaptive hull, Theorem 5.4
        degrades by at most a constant factor because the other operand's
        discarded points were already within *its* bound).

        This portable default routes through :meth:`insert_many`;
        :class:`~repro.core.uniform_hull.UniformHull` and
        :class:`~repro.core.adaptive_hull.AdaptiveHull` override it with
        a vectorised direction-bucket-wise union that keeps the extreme
        point per sampling direction.  ``points_seen`` afterwards counts
        the union stream (both operands' totals), not just the re-ingested
        samples.  Returns ``self``; ``other`` is not modified.

        Raises:
            ValueError: when ``other`` is a different scheme or was built
                with a different configuration (mismatched ``r``, queue
                mode, …) — merging those would silently change policy.
        """
        self._require_mergeable(other)
        seen = getattr(self, "points_seen", None)
        other_seen = getattr(other, "points_seen", None)
        self.insert_many(other.samples())
        if seen is not None and other_seen is not None:
            self._set_merged_points_seen(int(seen) + int(other_seen))
        self._bump_generation()
        return self

    def __ior__(self, other: "HullSummary") -> "HullSummary":
        """``a |= b`` merges ``b`` into ``a`` (see :meth:`merge`)."""
        if not isinstance(other, HullSummary):
            return NotImplemented
        return self.merge(other)

    def _require_mergeable(self, other: "HullSummary") -> None:
        """Reject cross-scheme / cross-config merges with a clear error."""
        if type(other) is not type(self):
            raise ValueError(
                f"cannot merge a {type(other).__name__} into a "
                f"{type(self).__name__}; merge operands must be the same scheme"
            )
        mine = self.get_config()
        theirs = other.get_config()
        if mine != theirs:
            raise ValueError(
                f"cannot merge mismatched configs: {theirs!r} into {mine!r}"
            )

    def _set_merged_points_seen(self, total: int) -> None:
        """Set the union-stream length after a merge; schemes whose
        counter is a derived property override this."""
        try:
            self.points_seen = total
        except AttributeError:
            pass

    # -- persistence ---------------------------------------------------------

    def get_config(self) -> dict:
        """Constructor kwargs that recreate an equivalent empty summary.

        Subclasses with constructor parameters (``r``, queue modes, …)
        must override this for snapshots to round-trip; the base default
        suits parameterless schemes.
        """
        return {}

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot of the summary state.

        Default: record the current samples for replay.  This is exact
        for schemes whose state is a function of their samples (e.g.
        the exact hull); the core streaming schemes override it with a
        field-level snapshot that also restores counters and internal
        structure bit-for-bit.
        """
        return {
            "replay_samples": [[p[0], p[1]] for p in self.samples()],
            "points_seen": getattr(self, "points_seen", None),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this (fresh) summary."""
        for p in state["replay_samples"]:
            self.insert((float(p[0]), float(p[1])))
        seen = state.get("points_seen")
        if seen is not None and hasattr(self, "points_seen"):
            try:
                self.points_seen = int(seen)
            except AttributeError:
                pass  # read-only counter (derived property)
        self._bump_generation()


def tree_merge(summaries: Iterable[HullSummary]) -> HullSummary:
    """Merge summaries pairwise in rounds (balanced tree reduction).

    The shard layer reduces K per-shard summaries to one global answer
    this way: each round halves the operand count, so the reduction
    depth is O(log K) and no single summary absorbs all others through a
    long sequential chain.  Operands are mutated (each round's left
    operand absorbs the right); pass fresh/disposable summaries.

    Raises:
        ValueError: on an empty iterable, or on mismatched operands
            (propagated from :meth:`HullSummary.merge`).
    """
    items = list(summaries)
    if not items:
        raise ValueError("tree_merge needs at least one summary")
    while len(items) > 1:
        nxt = [
            items[i].merge(items[i + 1]) for i in range(0, len(items) - 1, 2)
        ]
        if len(items) % 2:
            nxt.append(items[-1])
        items = nxt
    return items[0]

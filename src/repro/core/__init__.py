"""The paper's core contribution: uniform and adaptive hull summaries."""

from .base import HullSummary
from .uncertainty import UncertaintyTriangle, apex_point, triangle_for_edge
from .weights import needs_refinement, refine_threshold, sample_weight
from .uniform_hull import UniformHull
from .refinement import RefinementNode
from .adaptive_hull import AdaptiveHull
from .fixed_size import FixedSizeAdaptiveHull
from .static_adaptive import StaticAdaptiveResult, adaptive_sample

__all__ = [
    "HullSummary",
    "UncertaintyTriangle",
    "apex_point",
    "triangle_for_edge",
    "sample_weight",
    "refine_threshold",
    "needs_refinement",
    "UniformHull",
    "RefinementNode",
    "AdaptiveHull",
    "FixedSizeAdaptiveHull",
    "StaticAdaptiveResult",
    "adaptive_sample",
]

"""Static adaptive sampling (Section 4).

The offline version of the paper's scheme, for a *fixed* point set:

1. take the extrema in the ``r`` uniform directions,
2. fix ``P`` = perimeter of the uniformly sampled hull,
3. repeatedly pick any edge with sample weight ``w(e) > 1`` and refine
   it — bisect its angular range and find the true extremum in the new
   direction (the full point set is available, unlike in streaming).
   If the extremum is distinct from both endpoints it becomes a new
   sample; otherwise only the edge's angular range is halved.

Lemma 4.1 guarantees each refinement decreases the total positive
weight by at least 1, so at most ``r + 1`` extrema are added
(Lemma 4.2), and on termination every uncertainty triangle has height
``O(D / r^2)`` (Lemma 4.3).

This module is both the reference implementation the streaming
algorithm is tested against and a useful batch tool in its own right
(e.g. compressing a stored point set to a 2r+1-point hull sketch with
the paper's guarantee).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from ..geometry.directions import DyadicDirection
from ..geometry.hull import convex_hull
from ..geometry.polygon import perimeter as polygon_perimeter
from ..geometry.vec import Point, Vector, dot, unit
from .refinement import RefinementNode
from .uncertainty import UncertaintyTriangle, triangle_for_edge
from .weights import refine_threshold

__all__ = ["StaticAdaptiveResult", "adaptive_sample"]


@dataclass
class StaticAdaptiveResult:
    """Output of the offline adaptive sampling procedure.

    Attributes:
        r: the uniform direction count used.
        samples: all sample points (uniform extrema + adaptive extrema).
        added_extrema: the adaptively added samples only (Lemma 4.2
            bounds their number by r + 1).
        hull: convex hull of the samples (the approximate hull).
        perimeter: the fixed perimeter P of the uniformly sampled hull.
        refinements: total refinement steps performed (Lemma 4.1 bounds
            these by the initial total weight, about r).
        roots: the refinement forest (for inspection/visualisation).
    """

    r: int
    samples: List[Point]
    added_extrema: List[Point]
    hull: List[Point]
    perimeter: float
    refinements: int
    roots: List[Optional[RefinementNode]]

    def leaf_triangles(self) -> Iterator[UncertaintyTriangle]:
        """Uncertainty triangles of the final adaptive hull's edges."""
        for root in self.roots:
            if root is None:
                continue
            for leaf in root.iter_leaves():
                if leaf.is_vertex:
                    continue
                yield triangle_for_edge(
                    leaf.a, leaf.b, leaf.lo.vector, leaf.hi.vector
                )


def _extremum(points: Sequence[Point], d: Vector) -> Point:
    """The true extremum of the point set in direction ``d``."""
    best = points[0]
    best_val = dot(best, d)
    for p in points:
        v = dot(p, d)
        if v > best_val:
            best = p
            best_val = v
    return best


def adaptive_sample(
    points: Sequence[Point],
    r: int,
    height_limit: Optional[int] = None,
) -> StaticAdaptiveResult:
    """Run Section 4's adaptive sampling on a fixed point set.

    Args:
        points: the full point set (at least one point).
        r: uniform direction count (>= 8, as for the streaming version).
        height_limit: optional refinement depth cap (the paper's static
            procedure has none; Lemma 4.1 already bounds the work).

    Returns:
        A :class:`StaticAdaptiveResult`.

    Raises:
        ValueError: on empty input or r < 8.
    """
    pts = list(points)
    if not pts:
        raise ValueError("adaptive_sample needs at least one point")
    if r < 8:
        raise ValueError("adaptive_sample requires r >= 8")
    theta0 = 2.0 * math.pi / r

    # Step 1: uniform extrema and the fixed perimeter P.
    dirs = [unit(j * theta0) for j in range(r)]
    extreme = [_extremum(pts, d) for d in dirs]
    uniform_hull = convex_hull(extreme)
    perim = polygon_perimeter(uniform_hull)

    samples = dict.fromkeys(extreme)
    added: List[Point] = []
    refinements = 0
    roots: List[Optional[RefinementNode]] = [None] * r

    if perim <= 0.0:
        # All points coincide: nothing to refine.
        return StaticAdaptiveResult(
            r, list(samples), [], convex_hull(samples), perim, 0, roots
        )

    # Step 2: build the root forest and refine while any weight > 1.
    work: List[RefinementNode] = []
    for j in range(r):
        a, b = extreme[j], extreme[(j + 1) % r]
        if a == b:
            continue
        node = RefinementNode(
            DyadicDirection.uniform(j, r),
            DyadicDirection.uniform(j + 1, r),
            a,
            b,
            0,
        )
        roots[j] = node
        work.append(node)

    while work:
        node = work.pop()
        if node.is_vertex:
            continue
        if height_limit is not None and node.depth >= height_limit:
            continue
        ell = triangle_for_edge(
            node.a, node.b, node.lo.vector, node.hi.vector
        ).ell_tilde
        if perim >= refine_threshold(ell, r, node.depth):
            continue  # w(e) <= 1
        # Refine: true extremum in the bisecting direction.
        mv = node.mid_vector
        t = _extremum(pts, mv)
        # Ties with an endpoint collapse onto that endpoint (the paper's
        # "if p is the same as an endpoint, halve the angular range").
        # t is the argmax, so these trigger only on exact support ties.
        if dot(node.b, mv) >= dot(t, mv):
            t = node.b
        if dot(node.a, mv) >= dot(t, mv):
            t = node.a
        node.refine(t)
        refinements += 1
        if t not in samples:
            samples[t] = None
            added.append(t)
        work.append(node.left)
        work.append(node.right)

    return StaticAdaptiveResult(
        r=r,
        samples=list(samples),
        added_extrema=added,
        hull=convex_hull(samples),
        perimeter=perim,
        refinements=refinements,
        roots=roots,
    )

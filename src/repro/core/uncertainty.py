"""Uncertainty triangles (Section 2 of the paper).

For a sampled-hull edge ``pq`` whose endpoints are extreme in directions
``theta_p`` and ``theta_q``, the *uncertainty triangle* is bounded by the
segment ``pq`` and the two supporting lines (perpendicular to the
extremal directions, through the respective endpoints).  Every vertex of
the true hull collapsed into ``pq`` lies inside this triangle, so its
height bounds the local approximation error, and the ring of all
uncertainty triangles sandwiches the true hull.

This module computes, for an edge with its two supporting directions:

* the triangle apex (intersection of the supporting lines),
* ``ell_tilde`` — the total length of the two non-edge sides, the
  quantity the paper's sample weight uses (Section 4),
* the triangle height — the error bound for the edge (Eq. 1).

All functions take the supporting directions as unit vectors and are
robust to the degeneracies that arise in streams: coincident endpoints
(vertex nodes), near-parallel supporting lines (tiny angular ranges),
and numerically inconsistent supports.
"""

from __future__ import annotations

import math
from typing import NamedTuple, Optional

from ..geometry.segment import point_line_distance
from ..geometry.vec import Point, Vector, cross, dist, dot

__all__ = ["UncertaintyTriangle", "triangle_for_edge", "apex_point"]

_PARALLEL_EPS = 1e-14


class UncertaintyTriangle(NamedTuple):
    """The uncertainty triangle of one sampled-hull edge.

    Attributes:
        a: first edge endpoint (extreme in the low direction).
        b: second edge endpoint (extreme in the high direction).
        apex: intersection of the two supporting lines, or None when the
            triangle is degenerate (a == b, or the lines are parallel).
        height: distance from the apex to the edge line — the error
            bound for this edge (0 for degenerate triangles).
        ell_tilde: total length of the two non-edge sides; never smaller
            than ``|ab|`` for a proper triangle, and defined as ``|ab|``
            in the degenerate parallel case (the triangle flattens onto
            the edge).
    """

    a: Point
    b: Point
    apex: Optional[Point]
    height: float
    ell_tilde: float


def apex_point(
    a: Point, b: Point, u_lo: Vector, u_hi: Vector
) -> Optional[Point]:
    """Intersection of the supporting lines at ``a`` (normal ``u_lo``)
    and ``b`` (normal ``u_hi``).

    The supporting line at an extremum ``p`` with outward unit normal
    ``u`` is ``{x : u . x = u . p}``.  Returns None when the normals are
    (near-)parallel.
    """
    denom = cross(u_lo, u_hi)
    if abs(denom) <= _PARALLEL_EPS:
        return None
    c1 = dot(u_lo, a)
    c2 = dot(u_hi, b)
    x = (c1 * u_hi[1] - c2 * u_lo[1]) / denom
    y = (c2 * u_lo[0] - c1 * u_hi[0]) / denom
    return (x, y)


def triangle_for_edge(
    a: Point, b: Point, u_lo: Vector, u_hi: Vector
) -> UncertaintyTriangle:
    """Uncertainty triangle of edge ``ab`` with supporting normals
    ``u_lo`` (at ``a``) and ``u_hi`` (at ``b``).

    Degenerate cases:

    * ``a == b`` (a vertex node): zero-size triangle, zero error.
    * parallel supporting lines: the angular range is numerically zero,
      the triangle flattens; ``ell_tilde = |ab|`` and height 0.
    * a numerically inverted apex (below the edge): clamped to the flat
      triangle, since the true chain cannot be below the edge.
    """
    if a == b:
        return UncertaintyTriangle(a, b, None, 0.0, 0.0)
    edge_len = dist(a, b)
    apex = apex_point(a, b, u_lo, u_hi)
    if apex is None:
        return UncertaintyTriangle(a, b, None, 0.0, edge_len)
    ell = dist(a, apex) + dist(apex, b)
    if ell < edge_len:
        # Numerical noise: the two sides can never be shorter than the base.
        ell = edge_len
    height = point_line_distance(apex, a, b)
    # The apex must be on the outer side of the edge (the chain bulges
    # outward).  With exact extremal invariants this always holds; clamp
    # defensively against floating-point inversions.
    outward = cross((b[0] - a[0], b[1] - a[1]), (apex[0] - a[0], apex[1] - a[1]))
    if outward > 0.0:
        # Apex strictly left of a->b.  Sampled hulls are CCW, so the
        # outside is the left of each directed edge; this is the normal
        # orientation.
        pass
    return UncertaintyTriangle(a, b, apex, height, ell)

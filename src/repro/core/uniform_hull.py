"""The uniformly sampled hull (Section 3).

Maintains the extreme input point in each of ``r`` fixed, evenly spaced
directions ``j * theta0`` (``theta0 = 2*pi/r``).  The convex hull of
these extrema approximates the true hull with error O(D/r) (Lemma 3.2)
and approximates the diameter within a ``1 + O(1/r^2)`` factor
(Lemma 3.1).  This is both the base layer of the adaptive scheme and —
run with parameter ``2r`` — the principal comparator in the paper's
experiments.

Update cost: a point inside the current sample hull is discarded after
an O(log r) containment test.  A point outside triggers an O(r) pass
over the fixed directions plus an O(r log r) hull-cache rebuild.  Over
the random streams of the paper's experiments, hull-changing points are
a vanishing fraction of the stream, so the amortized cost per point is
O(log r) in practice; the worst-case per-point cost is O(r) (the paper's
"straightforward implementation" of Section 3.1; its O(log r) worst-case
variant trades considerable bookkeeping for the same amortized result —
see DESIGN.md, substitutions).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from ..geometry.hull import convex_hull
from ..geometry.polygon import contains_point, perimeter as polygon_perimeter
from ..geometry.vec import Point, Vector, dot, unit
from .base import HullSummary, coerce_point
from .batch import DEFAULT_CHUNK, prefiltered_insert_many

__all__ = ["UniformHull"]


class UniformHull(HullSummary):
    """Extrema of the stream in ``r`` fixed, evenly spaced directions.

    Args:
        r: number of sampling directions (>= 3; the paper assumes r even
            when pairing opposite directions for the diameter, and >= 8
            is sensible in practice).

    Attributes:
        r: the direction count.
        theta0: angular spacing ``2*pi / r``.
        points_seen: total points offered to the summary.
        points_processed: points that survived the fast discard and were
            tested against every direction (an operation-count proxy for
            the amortized analysis).
    """

    name = "uniform"

    def __init__(self, r: int):
        if r < 3:
            raise ValueError("UniformHull requires r >= 3 directions")
        self.r = r
        self.theta0 = 2.0 * math.pi / r
        self._dirs: List[Vector] = [unit(j * self.theta0) for j in range(r)]
        self._extreme: List[Optional[Point]] = [None] * r
        self._support: List[float] = [-math.inf] * r
        self._hull: List[Point] = []
        self._perimeter = 0.0
        self.points_seen = 0
        self.points_processed = 0

    # -- HullSummary interface -------------------------------------------

    def insert(self, p: Point) -> bool:
        """Process one stream point (with the fast containment discard).

        The point is normalised to a float tuple at the boundary, so
        NumPy rows and lists are stored in the same hashable form the
        hull structures require.

        Raises:
            ValueError / TypeError: on non-finite or malformed points.
        """
        p = coerce_point(p)
        self.points_seen += 1
        if self._hull and contains_point(self._hull, p):
            return False
        return self._offer(p)

    def insert_many(self, points, chunk: int = DEFAULT_CHUNK) -> int:
        """Vectorised batch ingestion (see :mod:`repro.core.batch`).

        Pre-filters each chunk against the current sample hull with one
        NumPy orientation sweep; only the rare survivors take the
        per-point path.  Exactly equivalent to sequential
        :meth:`insert` — same hull, samples, and counters.
        """
        return prefiltered_insert_many(self, points, chunk=chunk)

    def hull(self) -> List[Point]:
        """Convex hull of the stored extrema (CCW, cached)."""
        return self._hull

    def samples(self) -> List[Point]:
        """Distinct stored extrema."""
        return list(dict.fromkeys(e for e in self._extreme if e is not None))

    # -- merging -------------------------------------------------------------

    def merge(self, other: "UniformHull") -> "UniformHull":
        """Direction-bucket-wise union: keep the extreme point per direction.

        Both operands sample the same ``r`` fixed directions, so the
        union of the two streams has, in each direction ``j``, exactly
        the operand extremum with the larger support — one vectorised
        comparison of the support arrays replaces re-ingesting the other
        side's samples.  Equal supports keep ``self``'s extremum (the
        streaming tie-break: an incoming point must *strictly* beat the
        stored support).  Counters afterwards describe the union stream.
        """
        self._require_mergeable(other)
        self.merge_directions(other)
        self.points_seen += other.points_seen
        self.points_processed += other.points_processed
        return self

    def merge_directions(self, other: "UniformHull") -> bool:
        """Union the per-direction extrema only (no counters, no rebuild
        of this layer's hull cache beyond the standard one).

        The adaptive hull's merge uses this to fold another summary's
        uniform layer in before re-syncing its refinement forest;
        returns True when any direction changed.
        """
        wins = np.flatnonzero(
            np.asarray(other._support) > np.asarray(self._support)
        )
        for j in wins:
            self._support[j] = other._support[j]
            self._extreme[j] = other._extreme[j]
        if len(wins):
            self._rebuild()
            return True
        return False

    # -- persistence ---------------------------------------------------------

    def get_config(self) -> Dict:
        """Constructor kwargs that recreate an equivalent empty summary."""
        return {"r": self.r}

    def state_dict(self) -> Dict:
        """JSON-serialisable snapshot of the full summary state."""
        return {
            "extreme": [list(e) if e is not None else None for e in self._extreme],
            "support": list(self._support),
            "points_seen": self.points_seen,
            "points_processed": self.points_processed,
        }

    def load_state(self, state: Dict) -> None:
        """Restore a :meth:`state_dict` snapshot (in place, exact)."""
        extreme = state["extreme"]
        support = state["support"]
        if len(extreme) != self.r or len(support) != self.r:
            raise ValueError(
                f"snapshot has {len(extreme)} directions, summary has {self.r}"
            )
        self._extreme = [
            (float(e[0]), float(e[1])) if e is not None else None for e in extreme
        ]
        self._support = [float(s) for s in support]
        self.points_seen = int(state["points_seen"])
        self.points_processed = int(state["points_processed"])
        if any(e is not None for e in self._extreme):
            self._rebuild()
        else:
            self._hull = []
            self._perimeter = 0.0

    # -- uniform-hull specifics ---------------------------------------------

    def offer(self, p: Point) -> bool:
        """Update the extrema with ``p`` without the containment fast path.

        Used by the adaptive hull, which performs its own (larger-hull)
        discard test before delegating here.  Returns True if any
        direction's extremum changed.
        """
        return self._offer(p)

    def _offer(self, p: Point) -> bool:
        self.points_processed += 1
        changed = False
        for j in range(self.r):
            s = p[0] * self._dirs[j][0] + p[1] * self._dirs[j][1]
            if s > self._support[j]:
                self._support[j] = s
                self._extreme[j] = p
                changed = True
        if changed:
            self._rebuild()
        return changed

    def _rebuild(self) -> None:
        # Every extremum-changing path (offer, merge_directions,
        # load_state) funnels through here, making it the one chokepoint
        # for the staleness counter.
        self._bump_generation()
        self._hull = convex_hull(
            e for e in self._extreme if e is not None
        )
        self._perimeter = polygon_perimeter(self._hull)

    @property
    def perimeter(self) -> float:
        """Perimeter P of the sample hull (degenerate hulls measure the
        out-and-back boundary, e.g. ``2 * length`` for a segment)."""
        return self._perimeter

    def extreme(self, j: int) -> Optional[Point]:
        """The stored extremum in direction ``j * theta0`` (None before
        any point has arrived)."""
        return self._extreme[j % self.r]

    def support(self, j: int) -> float:
        """The support value ``max dot(p, u_j)`` over processed points."""
        return self._support[j % self.r]

    def direction(self, j: int) -> Vector:
        """Unit vector of sampling direction ``j``."""
        return self._dirs[j % self.r]

    def beats(self, p: Point, j: int) -> bool:
        """Would ``p`` strictly improve the extremum in direction ``j``?"""
        return dot(p, self._dirs[j % self.r]) > self._support[j % self.r]

    def edge_triangles(self):
        """Uncertainty triangles of the uniformly sampled hull's edges.

        For every adjacent direction pair ``(j, j+1)`` whose extrema
        differ, yields the triangle bounded by the connecting edge and
        the two supporting lines (angular range exactly ``theta0``).
        Together these form the uniform hull's uncertainty ring
        (Lemma 3.2: heights are O(D/r)).
        """
        from .uncertainty import triangle_for_edge

        for j in range(self.r):
            a = self._extreme[j]
            b = self._extreme[(j + 1) % self.r]
            if a is None or b is None or a == b:
                continue
            yield triangle_for_edge(
                a, b, self._dirs[j], self._dirs[(j + 1) % self.r]
            )

    def sampled_extent(self, j: int) -> float:
        """Extent along direction ``j`` between the stored extrema of the
        opposite sampled directions ``j`` and ``j + r/2`` (requires even
        ``r``); ``0`` before any data."""
        if self.r % 2 != 0:
            raise ValueError("opposite-direction extent requires even r")
        opp = (j + self.r // 2) % self.r
        if self._extreme[j % self.r] is None:
            return 0.0
        return self._support[j % self.r] + self._support[opp]

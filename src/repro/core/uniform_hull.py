"""The uniformly sampled hull (Section 3).

Maintains the extreme input point in each of ``r`` fixed, evenly spaced
directions ``j * theta0`` (``theta0 = 2*pi/r``).  The convex hull of
these extrema approximates the true hull with error O(D/r) (Lemma 3.2)
and approximates the diameter within a ``1 + O(1/r^2)`` factor
(Lemma 3.1).  This is both the base layer of the adaptive scheme and —
run with parameter ``2r`` — the principal comparator in the paper's
experiments.

Update cost: a point inside the current sample hull is discarded after
an O(log r) containment test.  A point outside triggers an O(r) pass
over the fixed directions plus an O(r log r) hull-cache rebuild.  Over
the random streams of the paper's experiments, hull-changing points are
a vanishing fraction of the stream, so the amortized cost per point is
O(log r) in practice; the worst-case per-point cost is O(r) (the paper's
"straightforward implementation" of Section 3.1; its O(log r) worst-case
variant trades considerable bookkeeping for the same amortized result —
see DESIGN.md, substitutions).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from ..geometry.hull import convex_hull
from ..geometry.polygon import (
    contains_point,
    contains_points,
    perimeter as polygon_perimeter,
)
from ..geometry.vec import Point, Vector, dot, unit
from .base import HullSummary, coerce_point
from .batch import (
    DEFAULT_CHUNK,
    SURVIVOR_LOOKAHEAD,
    SURVIVOR_SCALAR_PREFIX,
    prefiltered_insert_many,
)
from .uncertainty import triangle_for_edge

__all__ = ["UniformHull"]


class UniformHull(HullSummary):
    """Extrema of the stream in ``r`` fixed, evenly spaced directions.

    Args:
        r: number of sampling directions (>= 3; the paper assumes r even
            when pairing opposite directions for the diameter, and >= 8
            is sensible in practice).

    Attributes:
        r: the direction count.
        theta0: angular spacing ``2*pi / r``.
        points_seen: total points offered to the summary.
        points_processed: points that survived the fast discard and were
            tested against every direction (an operation-count proxy for
            the amortized analysis).
    """

    name = "uniform"

    def __init__(self, r: int):
        if r < 3:
            raise ValueError("UniformHull requires r >= 3 directions")
        self.r = r
        self.theta0 = 2.0 * math.pi / r
        self._dirs: List[Vector] = [unit(j * self.theta0) for j in range(r)]
        # Direction components as (r,) arrays and supports as one (r,)
        # float64 array: offer() is a single elementwise multiply-add +
        # compare instead of a Python loop over directions.  Elementwise
        # ops (never a BLAS matvec) keep every support value bit-equal
        # to the scalar expression ``p[0]*dx + p[1]*dy``.
        self._dx = np.array([d[0] for d in self._dirs], dtype=np.float64)
        self._dy = np.array([d[1] for d in self._dirs], dtype=np.float64)
        self._extreme: List[Optional[Point]] = [None] * r
        self._support = np.full(r, -math.inf, dtype=np.float64)
        self._hull: List[Point] = []
        self._perimeter = 0.0
        self.points_seen = 0
        self.points_processed = 0

    # -- HullSummary interface -------------------------------------------

    def insert(self, p: Point) -> bool:
        """Process one stream point (with the fast containment discard).

        The point is normalised to a float tuple at the boundary, so
        NumPy rows and lists are stored in the same hashable form the
        hull structures require.

        Raises:
            ValueError / TypeError: on non-finite or malformed points.
        """
        p = coerce_point(p)
        self.points_seen += 1
        if self._hull and contains_point(self._hull, p):
            return False
        return len(self.offer_changed(p)) > 0

    def insert_many(self, points, chunk: int = DEFAULT_CHUNK) -> int:
        """Vectorised batch ingestion (see :mod:`repro.core.batch`).

        Pre-filters each chunk against the current sample hull with one
        NumPy orientation sweep; only the rare survivors take the
        per-point path.  Exactly equivalent to sequential
        :meth:`insert` — same hull, samples, and counters.
        """
        return prefiltered_insert_many(self, points, chunk=chunk)

    def hull(self) -> List[Point]:
        """Convex hull of the stored extrema (CCW, cached)."""
        return self._hull

    def samples(self) -> List[Point]:
        """Distinct stored extrema."""
        return list(dict.fromkeys(e for e in self._extreme if e is not None))

    # -- merging -------------------------------------------------------------

    def merge(self, other: "UniformHull") -> "UniformHull":
        """Direction-bucket-wise union: keep the extreme point per direction.

        Both operands sample the same ``r`` fixed directions, so the
        union of the two streams has, in each direction ``j``, exactly
        the operand extremum with the larger support — one vectorised
        comparison of the support arrays replaces re-ingesting the other
        side's samples.  Equal supports keep ``self``'s extremum (the
        streaming tie-break: an incoming point must *strictly* beat the
        stored support).  Counters afterwards describe the union stream.
        """
        self._require_mergeable(other)
        self.merge_directions(other)
        self.points_seen += other.points_seen
        self.points_processed += other.points_processed
        return self

    def merge_directions(self, other: "UniformHull") -> bool:
        """Union the per-direction extrema only (no counters, no rebuild
        of this layer's hull cache beyond the standard one).

        The adaptive hull's merge uses this to fold another summary's
        uniform layer in before re-syncing its refinement forest;
        returns True when any direction changed.
        """
        wins = np.flatnonzero(other._support > self._support)
        if not len(wins):
            return False
        self._support[wins] = other._support[wins]
        for j in wins:
            self._extreme[int(j)] = other._extreme[int(j)]
        self._rebuild()
        return True

    # -- persistence ---------------------------------------------------------

    def get_config(self) -> Dict:
        """Constructor kwargs that recreate an equivalent empty summary."""
        return {"r": self.r}

    def state_dict(self) -> Dict:
        """JSON-serialisable snapshot of the full summary state."""
        return {
            "extreme": [list(e) if e is not None else None for e in self._extreme],
            "support": [float(s) for s in self._support],
            "points_seen": self.points_seen,
            "points_processed": self.points_processed,
        }

    def load_state(self, state: Dict) -> None:
        """Restore a :meth:`state_dict` snapshot (in place, exact)."""
        extreme = state["extreme"]
        support = state["support"]
        if len(extreme) != self.r or len(support) != self.r:
            raise ValueError(
                f"snapshot has {len(extreme)} directions, summary has {self.r}"
            )
        self._extreme = [
            (float(e[0]), float(e[1])) if e is not None else None for e in extreme
        ]
        self._support = np.array([float(s) for s in support], dtype=np.float64)
        self.points_seen = int(state["points_seen"])
        self.points_processed = int(state["points_processed"])
        if any(e is not None for e in self._extreme):
            self._rebuild()
        else:
            self._hull = []
            self._perimeter = 0.0

    # -- uniform-hull specifics ---------------------------------------------

    def offer(self, p: Point) -> bool:
        """Update the extrema with ``p`` without the containment fast path.

        Used by the adaptive hull, which performs its own (larger-hull)
        discard test before delegating here.  Returns True if any
        direction's extremum changed.
        """
        return len(self.offer_changed(p)) > 0

    def offer_changed(self, p: Point) -> np.ndarray:
        """Like :meth:`offer`, but return the array of direction indices
        whose extremum ``p`` replaced (ascending; empty for no change).

        One elementwise multiply-add over the direction components plus
        one compare against the support array — the vectorised form of
        the per-direction loop, producing bit-identical supports.
        """
        self.points_processed += 1
        s = p[0] * self._dx + p[1] * self._dy
        wins = np.flatnonzero(s > self._support)
        if len(wins):
            self._support[wins] = s[wins]
            for j in wins:
                self._extreme[int(j)] = p
            self._rebuild()
        return wins

    def consume_survivors(self, sxs: np.ndarray, sys: np.ndarray):
        """Bulk-ingest a leading run of prefilter survivors (see
        :func:`repro.core.batch.prefiltered_insert_many`).

        The rows are points the conservative inside-mask could not
        certify.  One exact vectorised containment sweep plus one
        support sweep classifies them; rows that sequential
        :meth:`insert` would discard (exactly inside) or process without
        changing any extremum are accounted for in bulk, and the first
        row that would actually change a direction goes through the real
        :meth:`insert`.  Returns ``(consumed, changed, mutated)``.
        """
        hull = self._hull
        if len(hull) < 3:
            return 1, int(self.insert((float(sxs[0]), float(sys[0])))), True
        k = min(len(sxs), SURVIVOR_LOOKAHEAD)
        # Scalar prefix: while mutations are dense (young hull) the
        # vectorised sweep's fixed cost cannot amortise — step the first
        # few rows through the sequential insert, bailing at the first
        # extremum change.
        split = k if k < 2 * SURVIVOR_SCALAR_PREFIX else SURVIVOR_SCALAR_PREFIX
        for i in range(split):
            if self.insert((float(sxs[i]), float(sys[i]))):
                return i + 1, 1, True
        if split == k:
            return k, 0, False
        sxs = sxs[split:k]
        sys = sys[split:k]
        k -= split
        inside = contains_points(hull, sxs, sys)
        beats = (
            (sxs[:, None] * self._dx[None, :] + sys[:, None] * self._dy[None, :])
            > self._support[None, :]
        ).any(axis=1)
        mutating = ~inside & beats
        first = int(np.argmax(mutating)) if mutating.any() else k
        # Sequential accounting for the non-mutating prefix: every row
        # bumps points_seen; exact outsiders also reach _offer (one
        # points_processed each) but beat nothing and return False.
        self.points_seen += first
        self.points_processed += first - int(np.count_nonzero(inside[:first]))
        if first < k:
            changed = int(self.insert((float(sxs[first]), float(sys[first]))))
            return split + first + 1, changed, True
        return split + k, 0, False

    def _rebuild(self) -> None:
        # Every extremum-changing path (offer, merge_directions,
        # load_state) funnels through here, making it the one chokepoint
        # for the staleness counter.
        self._bump_generation()
        self._hull = convex_hull(
            e for e in self._extreme if e is not None
        )
        self._perimeter = polygon_perimeter(self._hull)

    @property
    def perimeter(self) -> float:
        """Perimeter P of the sample hull (degenerate hulls measure the
        out-and-back boundary, e.g. ``2 * length`` for a segment)."""
        return self._perimeter

    def extreme(self, j: int) -> Optional[Point]:
        """The stored extremum in direction ``j * theta0`` (None before
        any point has arrived)."""
        return self._extreme[j % self.r]

    def support(self, j: int) -> float:
        """The support value ``max dot(p, u_j)`` over processed points."""
        return float(self._support[j % self.r])

    def direction(self, j: int) -> Vector:
        """Unit vector of sampling direction ``j``."""
        return self._dirs[j % self.r]

    def beats(self, p: Point, j: int) -> bool:
        """Would ``p`` strictly improve the extremum in direction ``j``?"""
        return dot(p, self._dirs[j % self.r]) > float(self._support[j % self.r])

    def edge_triangles(self):
        """Uncertainty triangles of the uniformly sampled hull's edges.

        For every adjacent direction pair ``(j, j+1)`` whose extrema
        differ, yields the triangle bounded by the connecting edge and
        the two supporting lines (angular range exactly ``theta0``).
        Together these form the uniform hull's uncertainty ring
        (Lemma 3.2: heights are O(D/r)).
        """
        for j in range(self.r):
            a = self._extreme[j]
            b = self._extreme[(j + 1) % self.r]
            if a is None or b is None or a == b:
                continue
            yield triangle_for_edge(
                a, b, self._dirs[j], self._dirs[(j + 1) % self.r]
            )

    def sampled_extent(self, j: int) -> float:
        """Extent along direction ``j`` between the stored extrema of the
        opposite sampled directions ``j`` and ``j + r/2`` (requires even
        ``r``); ``0`` before any data."""
        if self.r % 2 != 0:
            raise ValueError("opposite-direction extent requires even r")
        opp = (j + self.r // 2) % self.r
        if self._extreme[j % self.r] is None:
            return 0.0
        return float(self._support[j % self.r] + self._support[opp])

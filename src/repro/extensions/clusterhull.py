"""ClusterHull extension (Section 8 / Hershberger-Shrivastava-Suri [17]).

Section 8 asks: what if the stream forms multiple clusters?  A single
convex hull hides the structure (the hull of two separated blobs is one
big polygon).  The authors' follow-up work, ClusterHulls, combines
clustering with approximate hulls; this module implements a simplified
streaming rendition in the same spirit:

* maintain at most ``max_clusters`` cluster summaries, each an adaptive
  hull (so per-cluster extent queries keep the O(D/r^2) guarantee);
* route each arriving point to the nearest cluster if it is within
  ``join_distance`` of that cluster's hull, otherwise open a new
  cluster;
* when the cluster budget overflows, merge the two clusters whose hulls
  are closest (re-inserting the smaller summary's samples — a bounded,
  single-pass-safe operation since summaries hold O(r) points).

The result is a bounded-memory sketch of the stream's *shape*, not just
its outer extent — answering the "L-shaped data" and "multiple
clusters" questions the paper's discussion raises.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Tuple

from ..core.adaptive_hull import AdaptiveHull
from ..core.base import HullSummary
from ..geometry.distance import point_polygon_distance, polygon_distance
from ..geometry.vec import Point

__all__ = ["ClusterHull", "StreamCluster"]


class StreamCluster:
    """One cluster: an adaptive hull summary plus a population count."""

    def __init__(self, summary: HullSummary):
        self.summary = summary
        self.count = 0

    def insert(self, p: Point) -> None:
        """Add a point to this cluster."""
        self.summary.insert(p)
        self.count += 1

    def hull(self) -> List[Point]:
        """The cluster's approximate hull."""
        return self.summary.hull()

    def distance_to(self, p: Point) -> float:
        """Distance from a point to this cluster's hull (0 if inside)."""
        hull = self.summary.hull()
        if not hull:
            return math.inf
        return point_polygon_distance(hull, p)


class ClusterHull:
    """Bounded-memory multi-cluster hull sketch of a point stream.

    Args:
        r: adaptive-hull parameter for each cluster summary.
        max_clusters: cluster budget m (total space O(m * r)).
        join_distance: a point farther than this from every existing
            cluster hull opens a new cluster.
        summary_factory: override the per-cluster summary scheme
            (defaults to ``AdaptiveHull(r)``).
    """

    def __init__(
        self,
        r: int = 16,
        max_clusters: int = 8,
        join_distance: float = 1.0,
        summary_factory: Optional[Callable[[], HullSummary]] = None,
    ):
        if max_clusters < 1:
            raise ValueError("max_clusters must be >= 1")
        if join_distance < 0.0:
            raise ValueError("join_distance must be non-negative")
        self.r = r
        self.max_clusters = max_clusters
        self.join_distance = join_distance
        self._factory = summary_factory or (lambda: AdaptiveHull(r))
        self.clusters: List[StreamCluster] = []
        self.points_seen = 0
        self.merges = 0

    def insert(self, p: Point) -> None:
        """Route one stream point to its cluster (possibly a new one)."""
        self.points_seen += 1
        best: Optional[StreamCluster] = None
        best_d = math.inf
        for c in self.clusters:
            d = c.distance_to(p)
            if d < best_d:
                best_d = d
                best = c
        if best is not None and best_d <= self.join_distance:
            best.insert(p)
            return
        fresh = StreamCluster(self._factory())
        fresh.insert(p)
        self.clusters.append(fresh)
        if len(self.clusters) > self.max_clusters:
            self._merge_closest()

    def hulls(self) -> List[List[Point]]:
        """The approximate hull of every cluster."""
        return [c.hull() for c in self.clusters]

    def sizes(self) -> List[int]:
        """Population count of every cluster."""
        return [c.count for c in self.clusters]

    @property
    def sample_size(self) -> int:
        """Total stored samples across clusters (bounded by m * (2r+1))."""
        return sum(c.summary.sample_size for c in self.clusters)

    # -- internals ------------------------------------------------------------

    def _closest_pair(self) -> Tuple[int, int]:
        best = (0, 1)
        best_d = math.inf
        for i in range(len(self.clusters)):
            hi = self.clusters[i].hull()
            if not hi:
                continue
            for j in range(i + 1, len(self.clusters)):
                hj = self.clusters[j].hull()
                if not hj:
                    continue
                d, _ = polygon_distance(hi, hj)
                if d < best_d:
                    best_d = d
                    best = (i, j)
        return best

    def _merge_closest(self) -> None:
        i, j = self._closest_pair()
        a, b = self.clusters[i], self.clusters[j]
        # Keep the larger population; replay the smaller summary's O(r)
        # samples into it (single-pass safe: samples are stored points).
        keep, fold = (a, b) if a.count >= b.count else (b, a)
        for p in fold.summary.samples():
            keep.summary.insert(p)
        keep.count += fold.count
        self.clusters.remove(fold)
        self.merges += 1

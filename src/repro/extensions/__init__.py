"""Extensions beyond the paper's core: ClusterHulls (Section 8)."""

from .clusterhull import ClusterHull, StreamCluster

__all__ = ["ClusterHull", "StreamCluster"]

"""Two-dimensional vector and point arithmetic.

Points and vectors are plain ``(x, y)`` tuples of floats throughout the
library.  Tuples keep the hot algorithmic paths allocation-cheap and make
every intermediate value hashable, which the hull structures rely on.
Bulk data (whole streams) lives in NumPy arrays and is converted at the
boundary by :func:`iter_points`.

All functions are pure and operate on their arguments without mutation.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence, Tuple

Point = Tuple[float, float]
Vector = Tuple[float, float]

__all__ = [
    "Point",
    "Vector",
    "add",
    "sub",
    "scale",
    "neg",
    "dot",
    "cross",
    "norm",
    "norm_sq",
    "dist",
    "dist_sq",
    "normalize",
    "perp",
    "rotate",
    "angle_of",
    "unit",
    "lerp",
    "midpoint",
    "iter_points",
    "centroid",
    "almost_equal",
]


def add(a: Point, b: Point) -> Point:
    """Return the componentwise sum ``a + b``."""
    return (a[0] + b[0], a[1] + b[1])


def sub(a: Point, b: Point) -> Vector:
    """Return the vector ``a - b`` (from ``b`` to ``a``)."""
    return (a[0] - b[0], a[1] - b[1])


def scale(a: Vector, s: float) -> Vector:
    """Return ``a`` scaled by the scalar ``s``."""
    return (a[0] * s, a[1] * s)


def neg(a: Vector) -> Vector:
    """Return ``-a``."""
    return (-a[0], -a[1])


def dot(a: Vector, b: Vector) -> float:
    """Return the dot product ``a . b``."""
    return a[0] * b[0] + a[1] * b[1]


def cross(a: Vector, b: Vector) -> float:
    """Return the scalar cross product ``a x b`` (z-component)."""
    return a[0] * b[1] - a[1] * b[0]


def norm_sq(a: Vector) -> float:
    """Return the squared Euclidean norm of ``a``."""
    return a[0] * a[0] + a[1] * a[1]


def norm(a: Vector) -> float:
    """Return the Euclidean norm of ``a``."""
    return math.hypot(a[0], a[1])


def dist_sq(a: Point, b: Point) -> float:
    """Return the squared distance between points ``a`` and ``b``."""
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return dx * dx + dy * dy


def dist(a: Point, b: Point) -> float:
    """Return the Euclidean distance between points ``a`` and ``b``."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def normalize(a: Vector) -> Vector:
    """Return the unit vector in the direction of ``a``.

    Raises:
        ValueError: if ``a`` is the zero vector.
    """
    n = norm(a)
    if n == 0.0:
        raise ValueError("cannot normalize the zero vector")
    return (a[0] / n, a[1] / n)


def perp(a: Vector) -> Vector:
    """Return ``a`` rotated by +90 degrees (counter-clockwise)."""
    return (-a[1], a[0])


def rotate(a: Vector, theta: float) -> Vector:
    """Return ``a`` rotated counter-clockwise by ``theta`` radians."""
    c = math.cos(theta)
    s = math.sin(theta)
    return (c * a[0] - s * a[1], s * a[0] + c * a[1])


def angle_of(a: Vector) -> float:
    """Return the polar angle of ``a`` in ``[0, 2*pi)``.

    Raises:
        ValueError: if ``a`` is the zero vector (its angle is undefined).
    """
    if a[0] == 0.0 and a[1] == 0.0:
        raise ValueError("the zero vector has no direction")
    t = math.atan2(a[1], a[0])
    if t < 0.0:
        t += 2.0 * math.pi
    return t


def unit(theta: float) -> Vector:
    """Return the unit vector with polar angle ``theta``."""
    return (math.cos(theta), math.sin(theta))


def lerp(a: Point, b: Point, t: float) -> Point:
    """Return the point ``a + t * (b - a)``."""
    return (a[0] + t * (b[0] - a[0]), a[1] + t * (b[1] - a[1]))


def midpoint(a: Point, b: Point) -> Point:
    """Return the midpoint of segment ``ab``."""
    return ((a[0] + b[0]) * 0.5, (a[1] + b[1]) * 0.5)


def centroid(points: Sequence[Point]) -> Point:
    """Return the arithmetic mean of a non-empty point sequence."""
    if not points:
        raise ValueError("centroid of an empty point set is undefined")
    sx = sum(p[0] for p in points)
    sy = sum(p[1] for p in points)
    n = float(len(points))
    return (sx / n, sy / n)


def almost_equal(a: Point, b: Point, tol: float = 1e-12) -> bool:
    """Return True if ``a`` and ``b`` coincide within absolute tolerance."""
    return abs(a[0] - b[0]) <= tol and abs(a[1] - b[1]) <= tol


def iter_points(data: Iterable) -> Iterator[Point]:
    """Yield ``(x, y)`` float tuples from any iterable of 2-D coordinates.

    Accepts NumPy arrays of shape ``(n, 2)``, lists of tuples, generators,
    etc.  This is the boundary between the NumPy world (stream generators)
    and the tuple world (hull algorithms).
    """
    for row in data:
        yield (float(row[0]), float(row[1]))

"""Rotating calipers on convex polygons.

Implements the classical linear-time extremal computations the query
layer (Section 6 of the paper) runs on the hull summaries: diameter,
width, antipodal pairs, and farthest neighbors.

All functions accept polygons in the library convention (CCW, strictly
convex) and handle the degenerate 0/1/2-vertex cases.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from .predicates import orient
from .segment import point_line_distance
from .vec import Point, cross, dist, sub

__all__ = [
    "antipodal_pairs",
    "diameter",
    "width",
    "farthest_vertex_from",
]


def antipodal_pairs(poly: Sequence[Point]) -> List[Tuple[int, int]]:
    """All antipodal vertex pairs of a convex polygon (rotating calipers).

    An antipodal pair admits two parallel supporting lines touching the
    polygon at those vertices.  The diameter is realised by one of these
    pairs.  Runs in O(n); returns at most O(n) pairs.
    """
    n = len(poly)
    if n < 2:
        return []
    if n == 2:
        return [(0, 1)]
    pairs: List[Tuple[int, int]] = []
    j = 1
    for i in range(n):
        i2 = (i + 1) % n
        # Advance j while the vertex after it is farther from edge (i, i2).
        while _edge_dist(poly, i, i2, (j + 1) % n) > _edge_dist(poly, i, i2, j):
            j = (j + 1) % n
        pairs.append((i, j))
        pairs.append((i2, j))
    # Deduplicate while preserving order.
    seen = set()
    uniq = []
    for a, b in pairs:
        key = (min(a, b), max(a, b))
        if key not in seen and a != b:
            seen.add(key)
            uniq.append(key)
    return uniq


def _edge_dist(poly: Sequence[Point], i: int, j: int, k: int) -> float:
    """Twice the area of triangle (poly[i], poly[j], poly[k]) — a proxy
    for the distance of vertex k from line ij (same ordering)."""
    return abs(orient(poly[i], poly[j], poly[k]))


def diameter(poly: Sequence[Point]) -> Tuple[float, Tuple[Point, Point]]:
    """Diameter of the convex polygon and a realising vertex pair, O(n).

    For robustness this checks every antipodal pair produced by the
    calipers sweep; degenerate polygons fall back to direct computation.
    """
    n = len(poly)
    if n == 0:
        return 0.0, ((0.0, 0.0), (0.0, 0.0))
    if n == 1:
        return 0.0, (poly[0], poly[0])
    if n == 2:
        return dist(poly[0], poly[1]), (poly[0], poly[1])
    best = 0.0
    best_pair = (poly[0], poly[0])
    for i, j in antipodal_pairs(poly):
        d = dist(poly[i], poly[j])
        if d > best:
            best = d
            best_pair = (poly[i], poly[j])
    return best, best_pair


def width(poly: Sequence[Point]) -> float:
    """Width: minimum distance between parallel supporting lines, O(n).

    For each edge, the farthest vertex determines the slab width in the
    edge's normal direction; the width is the minimum over edges.
    """
    n = len(poly)
    if n < 3:
        return 0.0
    best = math.inf
    j = 1
    for i in range(n):
        i2 = (i + 1) % n
        # Advance j while the distance from edge (i, i2) keeps growing.
        while _edge_dist(poly, i, i2, (j + 1) % n) > _edge_dist(poly, i, i2, j):
            j = (j + 1) % n
        h = point_line_distance(poly[j], poly[i], poly[i2])
        if h < best:
            best = h
    return best


def farthest_vertex_from(poly: Sequence[Point], p: Point) -> Tuple[float, Point]:
    """Farthest polygon vertex from an arbitrary point ``p``, O(n).

    The farthest point of a convex region from any query point is always
    a vertex, so this answers the paper's farthest-neighbor query on a
    hull summary.
    """
    if not poly:
        raise ValueError("farthest vertex of an empty polygon is undefined")
    best = -1.0
    best_v = poly[0]
    for v in poly:
        d = dist(p, v)
        if d > best:
            best = d
            best_v = v
    return best, best_v

"""Convex polygon operations.

A convex polygon is a list of CCW-ordered vertices with no duplicates
and no three collinear vertices (see ``repro.geometry.hull``).  Functions
here tolerate the degenerate cases produced by hulls of fewer than three
distinct points (empty list, single point, segment).

Complexity notes: ``contains_point`` is O(log n) (binary search on the
fan from vertex 0).  ``extreme_vertex`` and ``tangent_indices`` are O(n)
scans — robust and ample for the summary sizes in this library (hulls
have O(r) vertices).  The O(log r) query bounds claimed by the paper for
its summaries are achieved in the summary classes themselves, which keep
vertices indexed by sampling direction.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from .predicates import EPS, between, orientation_sign, orientation_signs
from .vec import Point, Vector, cross, dist, dot, sub

__all__ = [
    "perimeter",
    "area",
    "contains_point",
    "contains_points",
    "extreme_vertex",
    "support",
    "extent",
    "edges",
    "tangent_indices",
    "is_convex_ccw",
]


def perimeter(poly: Sequence[Point]) -> float:
    """Perimeter of the polygon.

    For a segment (two vertices) this is twice its length — the boundary
    of the degenerate region traversed out and back — matching the
    paper's use of P for possibly-degenerate uniformly sampled hulls.
    """
    n = len(poly)
    if n <= 1:
        return 0.0
    return sum(dist(poly[i], poly[(i + 1) % n]) for i in range(n))


def area(poly: Sequence[Point]) -> float:
    """Signed shoelace area (positive for CCW order)."""
    n = len(poly)
    if n < 3:
        return 0.0
    s = 0.0
    for i in range(n):
        a = poly[i]
        b = poly[(i + 1) % n]
        s += a[0] * b[1] - b[0] * a[1]
    return 0.5 * s


def is_convex_ccw(poly: Sequence[Point]) -> bool:
    """True if vertices form a strictly convex CCW polygon."""
    n = len(poly)
    if n < 3:
        return False
    for i in range(n):
        if orientation_sign(poly[i], poly[(i + 1) % n], poly[(i + 2) % n]) <= 0:
            return False
    return True


def edges(poly: Sequence[Point]):
    """Iterate over the directed edges ``(poly[i], poly[i+1])``."""
    n = len(poly)
    for i in range(n):
        yield poly[i], poly[(i + 1) % n]


def contains_point(poly: Sequence[Point], p: Point, tol: float = 0.0) -> bool:
    """Point-in-convex-polygon test, O(log n).

    ``tol`` expands the polygon outward by that absolute amount: points
    within distance ``tol`` of the boundary count as inside.  With the
    default ``tol=0`` boundary points count as inside (closed region).
    """
    n = len(poly)
    if n == 0:
        return False
    if n == 1:
        return dist(p, poly[0]) <= tol + EPS
    if n == 2:
        from .segment import point_segment_distance

        return point_segment_distance(p, poly[0], poly[1]) <= tol + EPS
    if tol > 0.0:
        return _contains_with_tolerance(poly, p, tol)
    o = poly[0]
    # p must lie in the angular fan of o's incident edges.
    if orientation_sign(o, poly[1], p) < 0:
        return False
    if orientation_sign(o, poly[n - 1], p) > 0:
        return False
    # Binary search for the fan triangle containing p.
    lo, hi = 1, n - 1
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if orientation_sign(o, poly[mid], p) >= 0:
            lo = mid
        else:
            hi = mid
    return orientation_sign(poly[lo], poly[hi], p) >= 0


def contains_points(
    poly: Sequence[Point], xs: np.ndarray, ys: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`contains_point` (``tol=0``) for ``len(poly) >= 3``.

    Returns a boolean array, *bit-identical* per point to the scalar
    predicate: the same fan checks against vertex 0's incident edges,
    the same binary search over the fan (every lane takes the exact
    ``orientation_sign >= 0`` branch the scalar search takes), and the
    same closing test against the located fan triangle.  Degenerate
    polygons (< 3 vertices) use ``dist``/segment predicates whose
    float behaviour is not replicated here — callers keep those on the
    scalar path.

    Raises:
        ValueError: when ``poly`` has fewer than 3 vertices.
    """
    n = len(poly)
    if n < 3:
        raise ValueError("contains_points requires a polygon with >= 3 vertices")
    pv = np.asarray(poly, dtype=np.float64)
    ox = pv[0, 0]
    oy = pv[0, 1]
    ok = orientation_signs(ox, oy, pv[1, 0], pv[1, 1], xs, ys) >= 0
    ok &= orientation_signs(ox, oy, pv[n - 1, 0], pv[n - 1, 1], xs, ys) <= 0
    lo = np.ones(len(xs), dtype=np.intp)
    hi = np.full(len(xs), n - 1, dtype=np.intp)
    while True:
        gap = hi - lo
        active = gap > 1
        if not active.any():
            break
        mid = np.where(active, (lo + hi) >> 1, lo)
        left = (
            orientation_signs(ox, oy, pv[mid, 0], pv[mid, 1], xs, ys) >= 0
        )
        lo = np.where(active & left, mid, lo)
        hi = np.where(active & ~left, mid, hi)
    ok &= (
        orientation_signs(pv[lo, 0], pv[lo, 1], pv[hi, 0], pv[hi, 1], xs, ys)
        >= 0
    )
    return ok


def _contains_with_tolerance(poly: Sequence[Point], p: Point, tol: float) -> bool:
    """O(n) fallback: inside, or within ``tol`` of the boundary."""
    if contains_point(poly, p, 0.0):
        return True
    from .segment import point_segment_distance

    return any(
        point_segment_distance(p, a, b) <= tol for a, b in edges(poly)
    )


def extreme_vertex(poly: Sequence[Point], d: Vector) -> int:
    """Index of a vertex maximizing the dot product with ``d`` (O(n)).

    Ties (direction perpendicular to an edge) return the first maximal
    index encountered.
    """
    if not poly:
        raise ValueError("extreme vertex of an empty polygon is undefined")
    best = 0
    best_val = dot(poly[0], d)
    for i in range(1, len(poly)):
        v = dot(poly[i], d)
        if v > best_val:
            best = i
            best_val = v
    return best


def support(poly: Sequence[Point], d: Vector) -> float:
    """Support function: ``max_v dot(v, d)`` over the vertices."""
    return dot(poly[extreme_vertex(poly, d)], d)


def extent(poly: Sequence[Point], d: Vector) -> float:
    """Directional extent: width of the polygon's projection onto ``d``.

    ``d`` need not be unit length; the extent scales with ``|d|``.
    """
    if not poly:
        return 0.0
    vals = [dot(v, d) for v in poly]
    return max(vals) - min(vals)


def tangent_indices(poly: Sequence[Point], p: Point) -> Tuple[int, int]:
    """Indices ``(left, right)`` of the tangent vertices from exterior ``p``.

    ``left`` is the tangent vertex such that the whole polygon lies to the
    right of ray ``p -> poly[left]``; ``right`` likewise with the polygon
    to the left.  The chain of vertices strictly between ``right`` and
    ``left`` (going CCW from right to left) is the part visible from
    ``p``.  O(n) scan.

    Raises:
        ValueError: if ``p`` lies inside the polygon (no tangents) or the
            polygon has fewer than two vertices.
    """
    n = len(poly)
    if n < 2:
        raise ValueError("tangents require a polygon with >= 2 vertices")
    if n == 2:
        return (0, 1) if orientation_sign(p, poly[0], poly[1]) <= 0 else (1, 0)
    if contains_point(poly, p):
        raise ValueError("tangents from an interior point are undefined")
    left = right = None
    for i in range(n):
        prev = poly[(i - 1) % n]
        nxt = poly[(i + 1) % n]
        o_prev = orientation_sign(p, poly[i], prev)
        o_next = orientation_sign(p, poly[i], nxt)
        # Left tangent: both neighbours on the right side (clockwise side).
        if o_prev <= 0 and o_next <= 0 and left is None:
            left = i
        # Right tangent: both neighbours on the left side.
        if o_prev >= 0 and o_next >= 0 and right is None:
            right = i
    if left is None or right is None:
        raise ValueError("tangent search failed (degenerate input?)")
    return left, right

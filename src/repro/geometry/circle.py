"""Smallest enclosing circle (Welzl's algorithm).

Section 6 of the paper lists the smallest circle containing all points
as one of the extremal quantities computable from the hull summary; we
run Welzl on the O(r) summary vertices, giving an O(r) expected-time
query whose answer inherits the summary's O(D/r^2) error.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from .vec import Point, dist

__all__ = ["Circle", "smallest_enclosing_circle"]

Circle = Tuple[Point, float]  # (center, radius)


def _circle_two(a: Point, b: Point) -> Circle:
    c = ((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0)
    return c, dist(a, b) / 2.0


def _circle_three(a: Point, b: Point, c: Point) -> Optional[Circle]:
    """Circumcircle of three points; None when (near-)collinear."""
    ax, ay = a
    bx, by = b
    cx, cy = c
    d = 2.0 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by))
    if d == 0.0:
        return None
    ux = (
        (ax * ax + ay * ay) * (by - cy)
        + (bx * bx + by * by) * (cy - ay)
        + (cx * cx + cy * cy) * (ay - by)
    ) / d
    uy = (
        (ax * ax + ay * ay) * (cx - bx)
        + (bx * bx + by * by) * (ax - cx)
        + (cx * cx + cy * cy) * (bx - ax)
    ) / d
    center = (ux, uy)
    return center, dist(center, a)


def _in_circle(circle: Optional[Circle], p: Point, tol: float = 1e-9) -> bool:
    if circle is None:
        return False
    center, radius = circle
    return dist(center, p) <= radius * (1.0 + tol) + tol


def smallest_enclosing_circle(
    points: Sequence[Point], seed: int = 0
) -> Circle:
    """Smallest circle enclosing the points (Welzl, expected O(n)).

    The iterative move-to-front formulation avoids recursion limits.
    ``seed`` fixes the shuffle for deterministic behaviour.

    Raises:
        ValueError: on empty input.
    """
    pts: List[Point] = list(dict.fromkeys(points))
    if not pts:
        raise ValueError("smallest enclosing circle of no points is undefined")
    rng = random.Random(seed)
    rng.shuffle(pts)
    circle: Optional[Circle] = (pts[0], 0.0)
    for i, p in enumerate(pts):
        if _in_circle(circle, p):
            continue
        circle = (p, 0.0)
        for j in range(i):
            q = pts[j]
            if _in_circle(circle, q):
                continue
            circle = _circle_two(p, q)
            for k in range(j):
                s = pts[k]
                if _in_circle(circle, s):
                    continue
                c3 = _circle_three(p, q, s)
                if c3 is not None:
                    circle = c3
    assert circle is not None
    return circle

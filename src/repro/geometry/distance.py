"""Distances and separation between convex polygons.

Supports the paper's multi-stream queries (Section 6): track the minimum
distance between the hulls of two streams, decide linear separability,
and produce a separating-line certificate.  All routines are O(n + m)
or O(n * m) on the summary hulls, i.e. O(r) / O(r^2) per query — the
paper allows O(r) query time; the quadratic variants are only used as
robust fallbacks and cross-checks.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from .intersection import intersect_convex
from .polygon import contains_point, edges
from .segment import closest_point_on_segment
from .vec import Point, Vector, dist, dot, midpoint, norm, normalize, perp, sub

__all__ = [
    "point_polygon_distance",
    "polygon_distance",
    "separating_line",
    "linearly_separable",
]


def point_polygon_distance(poly: Sequence[Point], p: Point) -> float:
    """Distance from ``p`` to the closed convex region of ``poly``.

    Zero when ``p`` is inside or on the boundary.
    """
    n = len(poly)
    if n == 0:
        raise ValueError("distance to an empty polygon is undefined")
    if n == 1:
        return dist(p, poly[0])
    if n >= 3 and contains_point(poly, p):
        return 0.0
    best = math.inf
    for a, b in edges(poly):
        d = dist(p, closest_point_on_segment(p, a, b))
        if d < best:
            best = d
    return best


def polygon_distance(
    p: Sequence[Point], q: Sequence[Point]
) -> Tuple[float, Tuple[Point, Point]]:
    """Minimum distance between two convex polygons and a witness pair.

    Returns ``(0.0, (w, w))`` with a shared witness point when the
    regions intersect.  Runs edge-vs-edge in O(n * m); hull summaries
    have O(r) vertices so this is at most O(r^2) — used for tracking the
    separation of two streams.
    """
    if len(p) == 0 or len(q) == 0:
        raise ValueError("distance to an empty polygon is undefined")
    inter = intersect_convex(p, q)
    if inter:
        w = inter[0]
        return 0.0, (w, w)
    best = math.inf
    best_pair = (p[0], q[0])
    # Closest pair is realised vertex-to-edge (or vertex-to-vertex).
    for v in p:
        for a, b in _segments(q):
            c = closest_point_on_segment(v, a, b)
            d = dist(v, c)
            if d < best:
                best = d
                best_pair = (v, c)
    for v in q:
        for a, b in _segments(p):
            c = closest_point_on_segment(v, a, b)
            d = dist(v, c)
            if d < best:
                best = d
                best_pair = (c, v)
    return best, best_pair


def _segments(poly: Sequence[Point]):
    """Edges of a polygon, degenerating gracefully for 1–2 vertices."""
    n = len(poly)
    if n == 1:
        yield poly[0], poly[0]
    elif n == 2:
        yield poly[0], poly[1]
    else:
        yield from edges(poly)


def separating_line(
    p: Sequence[Point], q: Sequence[Point]
) -> Optional[Tuple[Point, Vector]]:
    """A separating line for two disjoint convex polygons.

    Returns ``(point_on_line, line_direction)`` such that all of ``p``
    lies strictly on one side and all of ``q`` on the other, or ``None``
    if the polygons intersect (no separator exists).  The line is the
    perpendicular bisector of the closest pair — the certificate the
    paper's linear-separation tracker reports.
    """
    d, (a, b) = polygon_distance(p, q)
    if d <= 0.0:
        return None
    mid = midpoint(a, b)
    direction = perp(normalize(sub(b, a)))
    return mid, direction


def linearly_separable(p: Sequence[Point], q: Sequence[Point]) -> bool:
    """True if the two convex polygons are disjoint (hence separable)."""
    if len(p) == 0 or len(q) == 0:
        return True
    return len(intersect_convex(p, q)) == 0

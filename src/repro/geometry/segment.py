"""Segment and line primitives.

Distances, projections, line intersections, and supporting-line helpers
used by the uncertainty-triangle computations and the query layer.
A line is represented implicitly by a point and a direction, or in
normal form ``(n, c)`` meaning ``{p : n . p = c}``.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from .vec import Point, Vector, cross, dist, dot, norm, norm_sq, sub

__all__ = [
    "project_param",
    "closest_point_on_segment",
    "point_segment_distance",
    "point_line_distance",
    "line_intersection",
    "segments_intersect",
    "supporting_line",
    "signed_line_distance",
]


def project_param(p: Point, a: Point, b: Point) -> float:
    """Parameter t of the projection of ``p`` onto the line through ``ab``.

    ``t = 0`` at ``a``, ``t = 1`` at ``b``.  For a degenerate segment
    (``a == b``) returns 0.
    """
    ab = sub(b, a)
    denom = norm_sq(ab)
    if denom == 0.0:
        return 0.0
    return dot(sub(p, a), ab) / denom


def closest_point_on_segment(p: Point, a: Point, b: Point) -> Point:
    """The point of the closed segment ``ab`` nearest to ``p``."""
    t = project_param(p, a, b)
    if t <= 0.0:
        return a
    if t >= 1.0:
        return b
    return (a[0] + t * (b[0] - a[0]), a[1] + t * (b[1] - a[1]))


def point_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Euclidean distance from ``p`` to the closed segment ``ab``."""
    return dist(p, closest_point_on_segment(p, a, b))


def point_line_distance(p: Point, a: Point, b: Point) -> float:
    """Distance from ``p`` to the infinite line through ``a`` and ``b``.

    Raises:
        ValueError: if ``a == b`` (no unique line).
    """
    ab = sub(b, a)
    n = norm(ab)
    if n == 0.0:
        raise ValueError("line through two identical points is undefined")
    return abs(cross(ab, sub(p, a))) / n


def line_intersection(
    p1: Point, d1: Vector, p2: Point, d2: Vector
) -> Optional[Point]:
    """Intersection of two lines given in point-direction form.

    Returns None when the lines are parallel (including coincident).
    """
    denom = cross(d1, d2)
    if denom == 0.0:
        return None
    t = cross(sub(p2, p1), d2) / denom
    return (p1[0] + t * d1[0], p1[1] + t * d1[1])


def segments_intersect(a: Point, b: Point, c: Point, d: Point) -> bool:
    """True if closed segments ``ab`` and ``cd`` share at least one point."""
    from .predicates import between, orientation_sign

    o1 = orientation_sign(a, b, c)
    o2 = orientation_sign(a, b, d)
    o3 = orientation_sign(c, d, a)
    o4 = orientation_sign(c, d, b)
    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and between(a, b, c):
        return True
    if o2 == 0 and between(a, b, d):
        return True
    if o3 == 0 and between(c, d, a):
        return True
    if o4 == 0 and between(c, d, b):
        return True
    return False


def supporting_line(p: Point, theta_vec: Vector) -> Tuple[Vector, float]:
    """Normal form of the supporting line at ``p`` with outward normal
    ``theta_vec``: returns ``(n, c)`` with ``n . x = c`` on the line and
    ``n . x <= c`` on the inner half-plane.

    The paper's supporting line of an extremum ``p`` in direction theta
    is perpendicular to theta and passes through ``p`` (Section 2).
    """
    return (theta_vec, dot(theta_vec, p))


def signed_line_distance(p: Point, n: Vector, c: float) -> float:
    """Signed distance of ``p`` from line ``n . x = c`` (positive outside).

    Assumes ``n`` is a unit vector; for a general normal the value scales
    by ``|n|``.
    """
    return dot(n, p) - c

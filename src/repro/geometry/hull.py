"""Exact convex hulls: static (monotone chain) and online (incremental).

Both are substrates for the paper's summaries: the static hull is the
ground truth against which approximation error is measured, and the
online hull is the unbounded-space baseline (``repro.baselines.exact``
wraps it in the common summary interface).

Convention used across the library: a *convex polygon* is a list of
vertices in counter-clockwise (CCW) order with no duplicate and no three
collinear vertices.  Degenerate hulls (a point or a segment) are returned
as lists of length 1 or 2.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .polygon import contains_point
from .predicates import EPS
from .vec import Point

__all__ = ["convex_hull", "OnlineHull"]


def _half_hull(points: Sequence[Point]) -> List[Point]:
    """Build one chain of the hull from x-sorted points (strict turns).

    Uses the library's toleranced orientation sign — inlined, because
    this loop dominates every hull rebuild on the ingest hot path: the
    arithmetic and the relative-EPS policy are exactly
    :func:`~repro.geometry.predicates.orientation_sign` (vertices that
    are collinear within the relative EPS are dropped), keeping hulls
    consistent with the containment and convexity predicates elsewhere.
    """
    chain: List[Point] = []
    append = chain.append
    pop = chain.pop
    for p in points:
        cx, cy = p
        while len(chain) >= 2:
            ax, ay = chain[-2]
            bx, by = chain[-1]
            t1 = (bx - ax) * (cy - ay)
            t2 = (by - ay) * (cx - ax)
            v = t1 - t2
            # keep only strict CCW turns: sign(v) == +1 under the
            # relative tolerance |v| <= EPS * (|t1| + |t2| + 1e-300)
            if v > 0.0 and v > EPS * (abs(t1) + abs(t2) + 1e-300):
                break
            pop()
        append(p)
    return chain


def convex_hull(points: Iterable[Point]) -> List[Point]:
    """Exact convex hull via Andrew's monotone chain, CCW order.

    Duplicate points are removed; collinear interior points are dropped
    (the hull has only true corners).  Returns:

    * ``[]`` for no input,
    * ``[p]`` for a single distinct point,
    * ``[a, b]`` for a collinear set (the two extreme points),
    * otherwise the CCW vertex list starting at the lexicographically
      smallest vertex.
    """
    pts = sorted(set(points))
    if len(pts) <= 2:
        return pts
    lower = _half_hull(pts)
    upper = _half_hull(list(reversed(pts)))
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:
        # All points collinear: monotone chain degenerates to endpoints.
        return [pts[0], pts[-1]]
    return hull


class OnlineHull:
    """Incremental exact convex hull under insertions only.

    Keeps the current hull's vertex list.  A new point inside the hull is
    discarded after an O(log h) containment test (h = hull size); a point
    outside triggers a monotone-chain recompute over the h stored
    vertices plus the newcomer — O(h log h), but only on hull-changing
    insertions, which are rare for the library's workloads (O(n^{1/3})
    of a uniform-disk stream, O(log n) for a square).

    Correctness rests on the standard fact that
    ``hull(S + {p}) == hull(vertices(hull(S)) + {p})``.

    This is the paper's implicit "keep everything" comparator: exact,
    but with space linear in the hull size — up to the whole stream for
    points in convex position — which the bounded summaries avoid.
    """

    def __init__(self, points: Iterable[Point] = ()):
        self._hull: List[Point] = []
        self._n = 0
        for p in points:
            self.insert(p)

    # -- public API ------------------------------------------------------

    def insert(self, p: Point) -> bool:
        """Insert ``p``; return True if it changed the hull."""
        self._n += 1
        if self.contains(p):
            return False
        new_hull = convex_hull(self._hull + [p])
        if new_hull == self._hull:
            return False
        self._hull = new_hull
        return True

    def contains(self, p: Point) -> bool:
        """True if ``p`` lies inside or on the current hull."""
        if not self._hull:
            return False
        return contains_point(self._hull, p)

    @property
    def size(self) -> int:
        """Number of vertices on the current hull."""
        return len(self._hull)

    @property
    def points_seen(self) -> int:
        """Total number of points inserted so far."""
        return self._n

    def vertices(self) -> List[Point]:
        """The hull as a CCW convex polygon (see module conventions)."""
        return list(self._hull)

"""Orientation predicates and tolerance policy.

The paper assumes a Real RAM; we compute in float64 and centralise the
tie-breaking policy here.  ``EPS`` is a *relative* tolerance: orientation
magnitudes are compared against ``EPS`` scaled by the magnitude of the
operands, so the predicates behave consistently across coordinate scales.
"""

from __future__ import annotations

import numpy as np

from .vec import Point, cross, dist_sq, dot, sub

EPS = 1e-12

__all__ = [
    "EPS",
    "orient",
    "orientation_sign",
    "orientation_signs",
    "is_ccw",
    "is_cw",
    "collinear",
    "point_in_triangle",
    "points_in_triangles",
    "between",
]


def orient(a: Point, b: Point, c: Point) -> float:
    """Return twice the signed area of triangle ``abc``.

    Positive when ``c`` lies to the left of the directed line ``a -> b``
    (counter-clockwise turn), negative to the right, near zero when the
    three points are collinear.
    """
    return (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])


def _orient_scale(a: Point, b: Point, c: Point) -> float:
    """Magnitude scale used to make the orientation test relative."""
    return (
        abs((b[0] - a[0]) * (c[1] - a[1]))
        + abs((b[1] - a[1]) * (c[0] - a[0]))
        + 1e-300
    )


def orientation_sign(a: Point, b: Point, c: Point) -> int:
    """Return +1 for a CCW turn, -1 for CW, 0 for collinear (within EPS)."""
    v = orient(a, b, c)
    if abs(v) <= EPS * _orient_scale(a, b, c):
        return 0
    return 1 if v > 0.0 else -1


def is_ccw(a: Point, b: Point, c: Point) -> bool:
    """Return True if ``abc`` makes a strict counter-clockwise turn."""
    return orientation_sign(a, b, c) > 0


def is_cw(a: Point, b: Point, c: Point) -> bool:
    """Return True if ``abc`` makes a strict clockwise turn."""
    return orientation_sign(a, b, c) < 0


def collinear(a: Point, b: Point, c: Point) -> bool:
    """Return True if the three points are collinear within tolerance."""
    return orientation_sign(a, b, c) == 0


def between(a: Point, b: Point, c: Point) -> bool:
    """Return True if collinear point ``c`` lies on the closed segment ``ab``.

    The caller is responsible for having checked collinearity; this only
    performs the box test.
    """
    return (
        min(a[0], b[0]) - EPS <= c[0] <= max(a[0], b[0]) + EPS
        and min(a[1], b[1]) - EPS <= c[1] <= max(a[1], b[1]) + EPS
    )


def orientation_signs(ax, ay, bx, by, cx, cy) -> np.ndarray:
    """Vectorised :func:`orientation_sign` over broadcastable arrays.

    Replicates the scalar predicate *bit for bit*: the two products of
    :func:`orient` are formed with the same elementwise expressions (no
    BLAS/FMA reassociation), and the relative tolerance uses the same
    ``|t1| + |t2| + 1e-300`` scale.  The batch fast paths rely on this
    exactness to stay undetectable from the sequential code.
    """
    t1 = (bx - ax) * (cy - ay)
    t2 = (by - ay) * (cx - ax)
    v = t1 - t2
    scale = np.abs(t1) + np.abs(t2) + 1e-300
    out = np.where(v > 0.0, 1, -1)
    return np.where(np.abs(v) <= EPS * scale, 0, out)


def points_in_triangles(
    px: np.ndarray, py: np.ndarray, triangles: np.ndarray
) -> np.ndarray:
    """Closed-triangle containment of ``k`` points against ``m`` triangles.

    ``triangles`` has shape ``(m, 3, 2)``; the result is a ``(k, m)``
    boolean matrix, elementwise identical to
    ``point_in_triangle(p, tri[0], tri[1], tri[2])``.
    """
    ax = triangles[:, 0, 0][None, :]
    ay = triangles[:, 0, 1][None, :]
    bx = triangles[:, 1, 0][None, :]
    by = triangles[:, 1, 1][None, :]
    cx = triangles[:, 2, 0][None, :]
    cy = triangles[:, 2, 1][None, :]
    qx = px[:, None]
    qy = py[:, None]
    s1 = orientation_signs(ax, ay, bx, by, qx, qy)
    s2 = orientation_signs(bx, by, cx, cy, qx, qy)
    s3 = orientation_signs(cx, cy, ax, ay, qx, qy)
    has_neg = (s1 < 0) | (s2 < 0) | (s3 < 0)
    has_pos = (s1 > 0) | (s2 > 0) | (s3 > 0)
    return ~(has_neg & has_pos)


def point_in_triangle(p: Point, a: Point, b: Point, c: Point) -> bool:
    """Return True if ``p`` lies in the closed triangle ``abc``.

    Works for either vertex orientation; degenerate (collinear) triangles
    degrade to a segment containment test.
    """
    s1 = orientation_sign(a, b, p)
    s2 = orientation_sign(b, c, p)
    s3 = orientation_sign(c, a, p)
    has_neg = (s1 < 0) or (s2 < 0) or (s3 < 0)
    has_pos = (s1 > 0) or (s2 > 0) or (s3 > 0)
    return not (has_neg and has_pos)

"""Minkowski sums and differences of convex polygons.

A second, independent route to the separation queries of Section 6:
two convex sets A and B intersect iff the origin lies in the Minkowski
difference ``A - B = A + (-B)``, and their minimum distance equals the
distance from the origin to that difference.  The query layer's primary
implementation (`repro.geometry.distance`) works edge-vs-edge; this
module provides the O(n + m) Minkowski construction, used by the test
suite to cross-validate the two implementations and available to users
who need the difference polygon itself (e.g. for collision margins in
all directions at once).
"""

from __future__ import annotations

from typing import List, Sequence

from .hull import convex_hull
from .polygon import contains_point
from .vec import Point, add, neg

__all__ = [
    "minkowski_sum",
    "minkowski_difference",
    "distance_via_minkowski",
    "intersects_via_minkowski",
]


def minkowski_sum(p: Sequence[Point], q: Sequence[Point]) -> List[Point]:
    """Minkowski sum of two convex polygons as a convex polygon (CCW).

    Built as the hull of pairwise vertex sums — O(n*m log(n*m)), simple
    and robust (the classical edge-merge achieves O(n+m) but is
    notoriously fiddly at collinear edges; hull sizes here are O(r)).
    Degenerate inputs (points/segments) are handled naturally.
    """
    if not p or not q:
        return []
    return convex_hull(add(a, b) for a in p for b in q)


def minkowski_difference(p: Sequence[Point], q: Sequence[Point]) -> List[Point]:
    """Minkowski difference ``P - Q = P + (-Q)`` as a convex polygon."""
    return minkowski_sum(p, [neg(b) for b in q])


def intersects_via_minkowski(p: Sequence[Point], q: Sequence[Point]) -> bool:
    """Do the convex polygons intersect?  (Origin-in-difference test.)"""
    diff = minkowski_difference(p, q)
    if not diff:
        return False
    return contains_point(diff, (0.0, 0.0))


def distance_via_minkowski(p: Sequence[Point], q: Sequence[Point]) -> float:
    """Minimum distance between two convex polygons via the difference.

    Zero when they intersect; otherwise the distance from the origin to
    the difference polygon's boundary.
    """
    from .distance import point_polygon_distance

    diff = minkowski_difference(p, q)
    if not diff:
        raise ValueError("distance of an empty polygon is undefined")
    return point_polygon_distance(diff, (0.0, 0.0))

"""Exact dyadic direction arithmetic.

The paper's sampling directions are of the form ``j * theta0 / 2**i``
with ``theta0 = 2*pi / r`` (Section 5.3).  Representing them as floats
would make angular bisection and the ``index(theta)`` computation fragile,
so we store each direction exactly as an integer pair:

    angle = num * theta0 / 2**level,   0 <= num < r * 2**level,

kept in canonical form (``num`` odd, or ``level == 0``).  With this
representation:

* ``index(theta)`` (the smallest i such that theta is a multiple of
  ``theta0 / 2**i``) is simply ``level`` — exactly the quantity used in
  the offset-line distances ``d_index`` of Lemma 5.1;
* bisection of an angular interval is exact integer arithmetic;
* comparisons and hashing are exact.

Only the final conversion to a unit vector touches floating point.
"""

from __future__ import annotations

import math
from typing import Tuple

from .vec import Vector

__all__ = ["DyadicDirection", "full_turn_units"]


def full_turn_units(r: int, level: int) -> int:
    """Number of grid units in a full turn at the given refinement level."""
    return r << level


class DyadicDirection:
    """An exact direction ``num * (2*pi/r) / 2**level``.

    Instances are immutable, hashable, and totally ordered by angle
    (within the fundamental domain ``[0, 2*pi)``).  ``r`` is the number
    of uniform sampling directions; two directions are only comparable
    when they share the same ``r``.
    """

    __slots__ = ("num", "level", "r")

    def __init__(self, num: int, level: int, r: int):
        if r <= 0:
            raise ValueError("r must be positive")
        if level < 0:
            raise ValueError("level must be non-negative")
        # Canonicalise: strip common factors of two, wrap into [0, full turn).
        full = r << level
        num %= full
        while level > 0 and num % 2 == 0:
            num //= 2
            level -= 1
        self.num = num
        self.level = level
        self.r = r

    # -- constructors -------------------------------------------------

    @classmethod
    def uniform(cls, j: int, r: int) -> "DyadicDirection":
        """The j-th uniform sampling direction ``j * theta0``."""
        return cls(j, 0, r)

    # -- exact queries -------------------------------------------------

    @property
    def index(self) -> int:
        """The paper's ``index(theta)``: smallest i with theta a multiple
        of ``theta0 / 2**i``.  Zero for uniform directions."""
        return self.level

    def units_at(self, level: int) -> int:
        """This direction expressed in grid units of ``theta0 / 2**level``.

        Raises:
            ValueError: if the direction is not representable at ``level``
                (i.e. ``level < self.level``).
        """
        if level < self.level:
            raise ValueError(
                f"direction at level {self.level} not representable "
                f"at coarser level {level}"
            )
        return self.num << (level - self.level)

    def is_uniform(self) -> bool:
        """True if this is one of the ``r`` uniform directions."""
        return self.level == 0

    # -- angular arithmetic ---------------------------------------------

    def bisect(self, other: "DyadicDirection") -> "DyadicDirection":
        """Return the direction bisecting the CCW interval self -> other.

        The interval is measured counter-clockwise from ``self`` to
        ``other`` (wrapping past ``2*pi`` if needed); the result lies
        strictly inside it whenever the interval is non-empty.
        """
        self._check_compatible(other)
        level = max(self.level, other.level)
        a = self.units_at(level)
        b = other.units_at(level)
        full = full_turn_units(self.r, level)
        span = (b - a) % full
        if span == 0:
            raise ValueError("cannot bisect an empty angular interval")
        if span % 2 == 0:
            return DyadicDirection(a + span // 2, level, self.r)
        return DyadicDirection(2 * a + span, level + 1, self.r)

    def ccw_span_units(self, other: "DyadicDirection", level: int) -> int:
        """Grid units (at ``level``) in the CCW interval self -> other."""
        self._check_compatible(other)
        a = self.units_at(level)
        b = other.units_at(level)
        return (b - a) % full_turn_units(self.r, level)

    def angle_between(self, other: "DyadicDirection") -> float:
        """The CCW angular extent from ``self`` to ``other`` in radians."""
        level = max(self.level, other.level)
        span = self.ccw_span_units(other, level)
        return 2.0 * math.pi * span / full_turn_units(self.r, level)

    def in_ccw_interval(
        self, lo: "DyadicDirection", hi: "DyadicDirection"
    ) -> bool:
        """True if self lies in the closed CCW interval ``[lo, hi]``.

        An interval with ``lo == hi`` contains only that direction.
        """
        level = max(self.level, lo.level, hi.level)
        full = full_turn_units(self.r, level)
        a = lo.units_at(level)
        b = hi.units_at(level)
        x = self.units_at(level)
        span = (b - a) % full
        off = (x - a) % full
        return off <= span

    # -- float conversions ----------------------------------------------

    @property
    def theta(self) -> float:
        """The angle in radians, in ``[0, 2*pi)``."""
        return 2.0 * math.pi * self.num / (self.r << self.level)

    @property
    def vector(self) -> Vector:
        """The unit vector pointing in this direction."""
        t = self.theta
        return (math.cos(t), math.sin(t))

    # -- dunder protocol --------------------------------------------------

    def _check_compatible(self, other: "DyadicDirection") -> None:
        if self.r != other.r:
            raise ValueError(
                f"directions over different grids (r={self.r} vs r={other.r})"
            )

    def _key(self) -> Tuple[int, int]:
        # Compare at a common level without materialising huge ints:
        # num / 2**level as an exact fraction of theta0.
        return (self.num, self.level)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DyadicDirection):
            return NotImplemented
        return (
            self.r == other.r
            and self.num == other.num
            and self.level == other.level
        )

    def __lt__(self, other: "DyadicDirection") -> bool:
        self._check_compatible(other)
        level = max(self.level, other.level)
        return self.units_at(level) < other.units_at(level)

    def __le__(self, other: "DyadicDirection") -> bool:
        return self == other or self < other

    def __hash__(self) -> int:
        return hash((self.num, self.level, self.r))

    def __repr__(self) -> str:
        return f"DyadicDirection({self.num}*theta0/2^{self.level}, r={self.r})"

"""Geometry kernel: vectors, predicates, hulls, and convex-polygon ops.

Everything the summaries and queries need is implemented here from
scratch (no ``scipy.spatial``); see DESIGN.md section 2.1.
"""

from .vec import (
    Point,
    Vector,
    add,
    almost_equal,
    angle_of,
    centroid,
    cross,
    dist,
    dist_sq,
    dot,
    iter_points,
    lerp,
    midpoint,
    neg,
    norm,
    norm_sq,
    normalize,
    perp,
    rotate,
    scale,
    sub,
    unit,
)
from .predicates import (
    EPS,
    between,
    collinear,
    is_ccw,
    is_cw,
    orient,
    orientation_sign,
    point_in_triangle,
)
from .directions import DyadicDirection, full_turn_units
from .segment import (
    closest_point_on_segment,
    line_intersection,
    point_line_distance,
    point_segment_distance,
    project_param,
    segments_intersect,
    signed_line_distance,
    supporting_line,
)
from .hull import OnlineHull, convex_hull
from .polygon import (
    area,
    contains_point,
    edges,
    extent,
    extreme_vertex,
    is_convex_ccw,
    perimeter,
    support,
    tangent_indices,
)
from .calipers import antipodal_pairs, diameter, farthest_vertex_from, width
from .intersection import clip_halfplane, intersect_convex, overlap_area
from .distance import (
    linearly_separable,
    point_polygon_distance,
    polygon_distance,
    separating_line,
)
from .minkowski import (
    distance_via_minkowski,
    intersects_via_minkowski,
    minkowski_difference,
    minkowski_sum,
)
from .circle import Circle, smallest_enclosing_circle

__all__ = [
    # vec
    "Point", "Vector", "add", "sub", "scale", "neg", "dot", "cross",
    "norm", "norm_sq", "dist", "dist_sq", "normalize", "perp", "rotate",
    "angle_of", "unit", "lerp", "midpoint", "centroid", "almost_equal",
    "iter_points",
    # predicates
    "EPS", "orient", "orientation_sign", "is_ccw", "is_cw", "collinear",
    "point_in_triangle", "between",
    # directions
    "DyadicDirection", "full_turn_units",
    # segment
    "project_param", "closest_point_on_segment", "point_segment_distance",
    "point_line_distance", "line_intersection", "segments_intersect",
    "supporting_line", "signed_line_distance",
    # hull
    "convex_hull", "OnlineHull",
    # polygon
    "perimeter", "area", "contains_point", "extreme_vertex", "support",
    "extent", "edges", "tangent_indices", "is_convex_ccw",
    # calipers
    "antipodal_pairs", "diameter", "width", "farthest_vertex_from",
    # intersection
    "clip_halfplane", "intersect_convex", "overlap_area",
    # distance
    "point_polygon_distance", "polygon_distance", "separating_line",
    "linearly_separable",
    # minkowski
    "minkowski_sum", "minkowski_difference", "distance_via_minkowski",
    "intersects_via_minkowski",
    # circle
    "Circle", "smallest_enclosing_circle",
]

"""Convex polygon intersection via half-plane clipping.

Used for the paper's *spatial overlap* query (Section 6): given the
approximate hulls of two streams, quantify the overlap of their spatial
extents.  Clipping one convex polygon against the m edges of another is
O(n * m); for summary hulls (n, m = O(r)) this is well within the O(r)
per-query budget the paper allots to linear-time polygon computations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .polygon import area, edges
from .predicates import EPS, orient
from .vec import Point

__all__ = ["clip_halfplane", "intersect_convex", "overlap_area"]


def clip_halfplane(poly: Sequence[Point], a: Point, b: Point) -> List[Point]:
    """Clip a convex polygon to the left half-plane of directed line a->b.

    Returns the clipped polygon (possibly empty).  Vertices exactly on
    the line are kept.  Standard Sutherland–Hodgman step.
    """
    n = len(poly)
    if n == 0:
        return []
    out: List[Point] = []
    for i in range(n):
        cur = poly[i]
        nxt = poly[(i + 1) % n]
        cur_in = orient(a, b, cur) >= -EPS
        nxt_in = orient(a, b, nxt) >= -EPS
        if cur_in:
            out.append(cur)
        if cur_in != nxt_in:
            p = _line_segment_cross(a, b, cur, nxt)
            if p is not None:
                out.append(p)
    return _dedup(out)


def _line_segment_cross(
    a: Point, b: Point, c: Point, d: Point
) -> Optional[Point]:
    """Intersection of line ``ab`` with segment ``cd`` (None if parallel)."""
    r = (b[0] - a[0], b[1] - a[1])
    s = (d[0] - c[0], d[1] - c[1])
    denom = r[0] * s[1] - r[1] * s[0]
    if denom == 0.0:
        return None
    # Solve c + t*s on the line through a with direction r:
    # cross(r, c + t*s - a) = 0  =>  t = cross(r, a - c) / cross(r, s).
    t = (r[0] * (a[1] - c[1]) - r[1] * (a[0] - c[0])) / denom
    return (c[0] + t * s[0], c[1] + t * s[1])


def _dedup(poly: List[Point], tol: float = 1e-12) -> List[Point]:
    """Remove consecutive (near-)duplicate vertices."""
    if not poly:
        return poly
    out = [poly[0]]
    for p in poly[1:]:
        q = out[-1]
        if abs(p[0] - q[0]) > tol or abs(p[1] - q[1]) > tol:
            out.append(p)
    while len(out) > 1 and (
        abs(out[0][0] - out[-1][0]) <= tol and abs(out[0][1] - out[-1][1]) <= tol
    ):
        out.pop()
    return out


def intersect_convex(
    p: Sequence[Point], q: Sequence[Point]
) -> List[Point]:
    """Intersection of two convex polygons as a convex polygon (CCW).

    Returns ``[]`` when the interiors and boundaries do not meet.
    Degenerate inputs (points/segments) are handled: a point intersects
    if it lies inside the other polygon.
    """
    from .polygon import contains_point

    if len(p) == 0 or len(q) == 0:
        return []
    if len(p) == 1:
        return [p[0]] if contains_point(q, p[0]) else []
    if len(q) == 1:
        return [q[0]] if contains_point(p, q[0]) else []
    if len(p) == 2 or len(q) == 2:
        # Segment cases: clip the segment-as-thin-polygon against the other.
        seg, other = (p, q) if len(p) == 2 else (q, p)
        if len(other) < 3:
            # Two segments: report shared endpoints only (measure-zero).
            shared = [v for v in seg if v in other]
            return shared
        clipped = list(seg)
        for a, b in edges(other):
            clipped = clip_halfplane(clipped, a, b)
            if not clipped:
                return []
        return clipped
    out = list(p)
    for a, b in edges(q):
        out = clip_halfplane(out, a, b)
        if not out:
            return []
    return out


def overlap_area(p: Sequence[Point], q: Sequence[Point]) -> float:
    """Area of the intersection of two convex polygons."""
    inter = intersect_convex(p, q)
    if len(inter) < 3:
        return 0.0
    return abs(area(inter))

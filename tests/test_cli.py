"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.n == 20_000
        assert args.r == 16
        assert args.section is None

    def test_table1_sections_accumulate(self):
        args = build_parser().parse_args(
            ["table1", "--section", "disk", "--section", "ellipse"]
        )
        assert args.section == ["disk", "ellipse"]

    def test_invalid_section_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--section", "bogus"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_engine_defaults(self):
        args = build_parser().parse_args(["engine"])
        assert args.keys == 200
        assert args.r == 32
        assert args.snapshot is None

    def test_window_defaults(self):
        args = build_parser().parse_args(["window"])
        assert args.last_n is None and args.horizon is None
        assert args.workers == 0

    def test_window_modes_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["window", "--last-n", "100", "--horizon", "5"]
            )

    def test_window_rejects_bad_window_values(self):
        for argv in (
            ["window", "--last-n", "0"],
            ["window", "--horizon", "0"],
            ["window", "--horizon", "-3"],
            ["window", "--horizon", "inf"],
        ):
            with pytest.raises(SystemExit, match="window: --"):
                main(argv)

    def test_serve_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_run_defaults(self):
        args = build_parser().parse_args(["serve", "run"])
        assert args.serve_cmd == "run"
        assert args.port == 0 and args.workers == 0
        assert args.last_n is None and args.horizon is None
        assert not args.selfcheck

    def test_serve_modes_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "run", "--last-n", "100", "--horizon", "5"]
            )

    def test_serve_tick_requires_horizon(self):
        with pytest.raises(SystemExit, match="--tick"):
            main(["serve", "run", "--tick", "1.0", "--selfcheck"])


class TestCommands:
    def test_table1_disk(self, capsys):
        assert main(["table1", "--section", "disk", "--n", "1500"]) == 0
        out = capsys.readouterr().out
        assert "disk" in out
        assert "max h" in out

    def test_demo(self, capsys):
        assert main(["demo", "--n", "2000", "--r", "16"]) == 0
        out = capsys.readouterr().out
        assert "diameter" in out
        assert "Corollary 5.2" in out

    def test_lower_bound(self, capsys):
        assert main(["lower-bound"]) == 0
        out = capsys.readouterr().out
        assert "optimal" in out

    def test_work(self, capsys):
        assert main(["work"]) == 0
        assert "nodes/pt" in capsys.readouterr().out

    def test_scaling(self, capsys):
        assert main(["scaling", "--n", "2000", "--r-values", "8", "16"]) == 0
        out = capsys.readouterr().out
        assert "slope adaptive" in out

    def test_engine(self, tmp_path, capsys):
        snap = tmp_path / "engine.json"
        assert (
            main(
                [
                    "engine",
                    "--keys", "20",
                    "--n", "5000",
                    "--r", "8",
                    "--batch", "1000",
                    "--snapshot", str(snap),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "streams      : 20" in out
        assert "identical hulls: True" in out
        assert snap.exists()

    def test_window_count_mode(self, tmp_path, capsys):
        snap = tmp_path / "window.json"
        assert (
            main(
                [
                    "window",
                    "--keys", "6",
                    "--n", "6000",
                    "--r", "8",
                    "--batch", "2000",
                    "--last-n", "500",
                    "--snapshot", str(snap),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "window last_n=500" in out
        assert "all-time hull" in out
        assert "identical hulls: True" in out
        assert snap.exists()

    def test_window_time_mode(self, capsys):
        assert (
            main(
                [
                    "window",
                    "--keys", "4",
                    "--n", "4000",
                    "--r", "8",
                    "--batch", "2000",
                    "--horizon", "1.5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "window horizon=1.5" in out
        assert "bucket expiries" in out

    def test_serve_run_selfcheck(self, tmp_path, capsys):
        snap = tmp_path / "serve.json"
        assert (
            main(
                [
                    "serve", "run",
                    "--selfcheck",
                    "--r", "8",
                    "--last-n", "500",
                    "--snapshot", str(snap),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "serving" in out
        assert "selfcheck" in out
        assert snap.exists()

    def test_serve_bench_parity(self, capsys):
        assert (
            main(
                [
                    "serve", "bench",
                    "--n", "3000",
                    "--keys", "6",
                    "--r", "8",
                    "--batch", "1000",
                    "--queries", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bit-identical global hulls: True" in out

    def test_fig10(self, tmp_path, capsys):
        assert main(["fig10", "--out", str(tmp_path), "--n", "800"]) == 0
        out = capsys.readouterr().out
        assert "fig10_adaptive.svg" in out
        assert (tmp_path / "fig10_adaptive.svg").exists()
        assert (tmp_path / "fig10_uniform.svg").exists()

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.n == 20_000
        assert args.r == 16
        assert args.section is None

    def test_table1_sections_accumulate(self):
        args = build_parser().parse_args(
            ["table1", "--section", "disk", "--section", "ellipse"]
        )
        assert args.section == ["disk", "ellipse"]

    def test_invalid_section_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--section", "bogus"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_engine_defaults(self):
        args = build_parser().parse_args(["engine"])
        assert args.keys == 200
        assert args.r == 32
        assert args.snapshot is None

    def test_window_defaults(self):
        args = build_parser().parse_args(["window"])
        assert args.last_n is None and args.horizon is None
        assert args.workers == 0

    def test_window_modes_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["window", "--last-n", "100", "--horizon", "5"]
            )

    def test_window_rejects_bad_window_values(self):
        for argv in (
            ["window", "--last-n", "0"],
            ["window", "--horizon", "0"],
            ["window", "--horizon", "-3"],
            ["window", "--horizon", "inf"],
        ):
            with pytest.raises(SystemExit, match="window: --"):
                main(argv)

    def test_serve_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_run_defaults(self):
        args = build_parser().parse_args(["serve", "run"])
        assert args.serve_cmd == "run"
        assert args.port == 0 and args.workers == 0
        assert args.last_n is None and args.horizon is None
        assert not args.selfcheck

    def test_serve_modes_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "run", "--last-n", "100", "--horizon", "5"]
            )

    def test_serve_tick_requires_horizon(self):
        with pytest.raises(SystemExit, match="--tick"):
            main(["serve", "run", "--tick", "1.0", "--selfcheck"])


class TestCommands:
    def test_table1_disk(self, capsys):
        assert main(["table1", "--section", "disk", "--n", "1500"]) == 0
        out = capsys.readouterr().out
        assert "disk" in out
        assert "max h" in out

    def test_demo(self, capsys):
        assert main(["demo", "--n", "2000", "--r", "16"]) == 0
        out = capsys.readouterr().out
        assert "diameter" in out
        assert "Corollary 5.2" in out

    def test_lower_bound(self, capsys):
        assert main(["lower-bound"]) == 0
        out = capsys.readouterr().out
        assert "optimal" in out

    def test_work(self, capsys):
        assert main(["work"]) == 0
        assert "nodes/pt" in capsys.readouterr().out

    def test_scaling(self, capsys):
        assert main(["scaling", "--n", "2000", "--r-values", "8", "16"]) == 0
        out = capsys.readouterr().out
        assert "slope adaptive" in out

    def test_engine(self, tmp_path, capsys):
        snap = tmp_path / "engine.json"
        assert (
            main(
                [
                    "engine",
                    "--keys", "20",
                    "--n", "5000",
                    "--r", "8",
                    "--batch", "1000",
                    "--snapshot", str(snap),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "streams      : 20" in out
        assert "identical hulls: True" in out
        assert snap.exists()

    def test_window_count_mode(self, tmp_path, capsys):
        snap = tmp_path / "window.json"
        assert (
            main(
                [
                    "window",
                    "--keys", "6",
                    "--n", "6000",
                    "--r", "8",
                    "--batch", "2000",
                    "--last-n", "500",
                    "--snapshot", str(snap),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "window last_n=500" in out
        assert "all-time hull" in out
        assert "identical hulls: True" in out
        assert snap.exists()

    def test_window_time_mode(self, capsys):
        assert (
            main(
                [
                    "window",
                    "--keys", "4",
                    "--n", "4000",
                    "--r", "8",
                    "--batch", "2000",
                    "--horizon", "1.5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "window horizon=1.5" in out
        assert "bucket expiries" in out

    def test_serve_run_selfcheck(self, tmp_path, capsys):
        snap = tmp_path / "serve.json"
        assert (
            main(
                [
                    "serve", "run",
                    "--selfcheck",
                    "--r", "8",
                    "--last-n", "500",
                    "--snapshot", str(snap),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "serving" in out
        assert "selfcheck" in out
        assert snap.exists()

    def test_serve_bench_parity(self, capsys):
        assert (
            main(
                [
                    "serve", "bench",
                    "--n", "3000",
                    "--keys", "6",
                    "--r", "8",
                    "--batch", "1000",
                    "--queries", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bit-identical global hulls: True" in out

    def test_fig10(self, tmp_path, capsys):
        assert main(["fig10", "--out", str(tmp_path), "--n", "800"]) == 0
        out = capsys.readouterr().out
        assert "fig10_adaptive.svg" in out
        assert (tmp_path / "fig10_adaptive.svg").exists()
        assert (tmp_path / "fig10_uniform.svg").exists()


class TestDurableParser:
    def test_durable_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["durable"])

    def test_recover_defaults(self):
        args = build_parser().parse_args(["durable", "recover", "wal"])
        assert args.durable_cmd == "recover"
        assert args.wal_dir == "wal"
        assert args.workers is None and args.replicas == 0
        assert args.snapshot is None and not args.compact

    def test_dead_letters_defaults(self):
        args = build_parser().parse_args(["durable", "dead-letters", "wal"])
        assert args.limit == 20
        assert not args.replay and not args.truncate

    def test_shard_gains_wal_and_replica_flags(self):
        args = build_parser().parse_args(["shard"])
        assert args.wal_dir is None and args.replicas == 0
        args = build_parser().parse_args(
            ["shard", "--wal-dir", "d", "--replicas", "2"]
        )
        assert args.wal_dir == "d" and args.replicas == 2

    def test_serve_run_gains_wal_and_replica_flags(self):
        args = build_parser().parse_args(["serve", "run"])
        assert args.wal_dir is None and args.replicas == 0

    def test_negative_replicas_rejected(self):
        with pytest.raises(SystemExit, match="--replicas"):
            main(["shard", "--workers", "2", "--replicas", "-1"])

    def test_replicas_need_workers(self):
        with pytest.raises(SystemExit, match="--replicas"):
            main(["serve", "run", "--replicas", "1", "--selfcheck"])


class TestDurableCommands:
    def _write_late_wal(self, wal_dir):
        """A WAL with two dead-lettered slices, built via the API."""
        import numpy as np

        from repro.durable import DurabilityConfig
        from repro.engine import StreamEngine
        from repro.shard import SummarySpec
        from repro.window import WindowConfig

        eng = StreamEngine(
            SummarySpec("AdaptiveHull", {"r": 8}).build,
            window=WindowConfig(horizon=5.0, max_delay=1.0),
            durability=DurabilityConfig(wal_dir),
        )
        ts = np.arange(40, dtype=np.float64) / 4.0
        keys = np.array([f"k-{i % 4}" for i in range(40)])
        pts = np.arange(80, dtype=np.float64).reshape(40, 2)
        eng.ingest_arrays(keys, pts, ts=ts)
        for i in range(2):
            eng.ingest_arrays(
                np.array([f"late-{i}"]),
                np.array([[float(i), -float(i)]]),
                ts=np.array([0.0]),
            )
        eng.close()

    def test_shard_wal_roundtrip(self, tmp_path, capsys):
        wal = str(tmp_path / "wal")
        argv = [
            "shard", "--n", "4000", "--keys", "8",
            "--workers", "2", "--wal-dir", wal,
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "wal          : seq" in out

        assert main(["durable", "inspect", wal]) == 0
        out = capsys.readouterr().out
        assert "tier         : shard x2" in out
        assert "spec         : AdaptiveHull" in out

        assert main(["durable", "recover", wal]) == 0
        out = capsys.readouterr().out
        assert "recovered    :" in out
        assert "records      : 4,000" in out
        assert "tier         : sharded x2" in out

        # A second run against the same WAL continues from it.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "recovered    : " in out
        assert "records      : 8,000" in out

    def test_recover_workers_zero_and_snapshot(self, tmp_path, capsys):
        wal = str(tmp_path / "wal")
        snap = tmp_path / "rec.json"
        assert main(
            ["shard", "--n", "2000", "--workers", "2", "--wal-dir", wal]
        ) == 0
        capsys.readouterr()
        assert main(
            ["durable", "recover", wal, "--workers", "0",
             "--snapshot", str(snap)]
        ) == 0
        out = capsys.readouterr().out
        assert "tier         : in-process" in out
        assert snap.exists()

    def test_recover_compact_skips_replayed_tail(self, tmp_path, capsys):
        wal = str(tmp_path / "wal")
        assert main(
            ["shard", "--n", "2000", "--workers", "2", "--wal-dir", wal]
        ) == 0
        capsys.readouterr()
        assert main(["durable", "recover", wal, "--compact"]) == 0
        out = capsys.readouterr().out
        assert "compacted    :" in out
        # The compaction snapshot makes the next recovery's tail empty.
        assert main(["durable", "recover", wal]) == 0
        out = capsys.readouterr().out
        assert "recovered    : 0 WAL entries" in out

    def test_compact_refuses_tier_override(self, tmp_path):
        with pytest.raises(SystemExit, match="--compact"):
            main(
                ["durable", "recover", str(tmp_path), "--workers", "0",
                 "--compact"]
            )

    def test_inspect_without_wal_fails(self, tmp_path, capsys):
        assert main(["durable", "inspect", str(tmp_path / "nope")]) == 1
        assert "no WAL" in capsys.readouterr().out

    def test_dead_letters_list_replay_truncate(self, tmp_path, capsys):
        wal = str(tmp_path / "wal")
        self._write_late_wal(wal)

        assert main(["durable", "dead-letters", wal]) == 0
        out = capsys.readouterr().out
        assert "dead letters : 2 slices / 2 records" in out
        assert "key='late-0'" in out

        assert main(
            ["durable", "dead-letters", wal, "--replay", "--truncate"]
        ) == 0
        out = capsys.readouterr().out
        assert "redriven     : 2 slices / 2 records (0 skipped)" in out
        assert "truncated    : 2 slices dropped" in out

        # The redriven records are now part of the recovered state.
        assert main(["durable", "recover", wal]) == 0
        out = capsys.readouterr().out
        assert "records      : 42" in out

    def test_metrics_watch_prints_rates(self, capsys):
        assert main(
            [
                "metrics", "--n", "20000", "--keys", "4",
                "--batch", "2000", "--watch", "0.0001",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "# rates over" in out
        assert "/s" in out
        # The final page still carries the absolute totals.
        assert "repro_ingest_records_total" in out


class TestGatewayParser:
    def test_defaults(self):
        args = build_parser().parse_args(["gateway"])
        assert args.port == 0 and args.host == "127.0.0.1"
        assert args.tenants is None
        assert args.r == 32
        assert args.last_n is None and args.horizon is None
        assert args.workers == 0 and args.replicas == 0
        assert args.wal_dir is None and args.snapshot is None
        assert args.duration == 0.0 and not args.selfcheck
        assert args.metrics_port is None

    def test_window_modes_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["gateway", "--last-n", "10", "--horizon", "5"]
            )

    def test_inspect_gains_fsck_flag(self):
        args = build_parser().parse_args(
            ["durable", "inspect", "/tmp/x", "--fsck"]
        )
        assert args.fsck
        assert not build_parser().parse_args(
            ["durable", "inspect", "/tmp/x"]
        ).fsck


class TestGatewayCommands:
    def test_selfcheck_inprocess(self, tmp_path, capsys):
        wal = str(tmp_path / "wal")
        rc = main([
            "gateway", "--selfcheck", "--r", "8", "--wal-dir", wal,
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "namespace isolation ok=True" in out
        assert "sse push ok=True" in out
        assert "bogus token -> 401" in out
        assert 'tenant="alpha"' in out and 'tenant="beta"' in out

    def test_selfcheck_with_custom_tenants(self, tmp_path, capsys):
        import json

        config = tmp_path / "tenants.json"
        config.write_text(json.dumps({
            "admin_token": "adm",
            "tenants": [
                {"id": "alpha", "token": "a-tok"},
                {"id": "beta", "token": "b-tok"},
            ],
        }))
        rc = main([
            "gateway", "--selfcheck", "--r", "8",
            "--tenants", str(config),
        ])
        assert rc == 0
        assert "namespace isolation ok=True" in capsys.readouterr().out

    def test_bad_tenants_config_fails(self, tmp_path):
        config = tmp_path / "tenants.json"
        config.write_text("{broken")
        with pytest.raises(SystemExit, match="gateway: .*invalid JSON"):
            main(["gateway", "--selfcheck", "--tenants", str(config)])

    def test_fsck_clean_and_corrupt(self, tmp_path, capsys):
        import os

        from repro.durable import list_segments

        wal = str(tmp_path / "wal")
        assert main([
            "gateway", "--selfcheck", "--r", "8", "--wal-dir", wal,
        ]) == 0
        capsys.readouterr()
        assert main(["durable", "inspect", wal, "--fsck"]) == 0
        out = capsys.readouterr().out
        assert "fsck" in out and "clean" in out
        # Flip one mid-file byte: fsck must now fail with the offset.
        path = list_segments(wal)[0][1]
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.seek(size // 2)
            byte = fh.read(1)
            fh.seek(size // 2)
            fh.write(bytes([byte[0] ^ 0xFF]))
        assert main(["durable", "inspect", wal, "--fsck"]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT" in out

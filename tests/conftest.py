"""Shared fixtures: canonical point sets and stream factories."""

from __future__ import annotations

import math
import random

import pytest

from repro.streams import (
    as_tuples,
    disk_stream,
    ellipse_stream,
    square_stream,
)


@pytest.fixture
def unit_square():
    """A CCW unit square polygon."""
    return [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]


@pytest.fixture
def triangle():
    """A CCW triangle."""
    return [(0.0, 0.0), (4.0, 0.0), (0.0, 3.0)]


@pytest.fixture
def regular_hexagon():
    """A CCW regular hexagon of circumradius 2."""
    return [
        (2.0 * math.cos(k * math.pi / 3.0), 2.0 * math.sin(k * math.pi / 3.0))
        for k in range(6)
    ]


@pytest.fixture
def small_disk_points():
    """2000 seeded points in the unit disk, as tuples."""
    return list(as_tuples(disk_stream(2000, seed=11)))


@pytest.fixture
def small_ellipse_points():
    """2000 seeded points in a rotated aspect-16 ellipse, as tuples."""
    return list(as_tuples(ellipse_stream(2000, rotation=0.1, seed=12)))


@pytest.fixture
def small_square_points():
    """2000 seeded points in a tilted square, as tuples."""
    return list(as_tuples(square_stream(2000, rotation=0.1, seed=13)))


@pytest.fixture
def rng():
    """Seeded stdlib RNG for ad-hoc randomness inside tests."""
    return random.Random(1234)

"""End-to-end integration tests across the whole library.

These exercise the workflows a downstream user would run: the public
package API, the sensor-monitoring scenario from the paper's
introduction, multi-stream tracking with mixed summary schemes, and the
failure-injection cases (degenerate streams that historically break
geometric code).
"""

import math

import pytest

import repro
from repro import (
    AdaptiveHull,
    ClusterHull,
    ContainmentTracker,
    ExactHull,
    FixedSizeAdaptiveHull,
    SeparationTracker,
    UniformHull,
    diameter,
    width,
)
from repro.experiments.metrics import hull_distance
from repro.geometry import convex_hull
from repro.geometry.distance import point_polygon_distance
from repro.streams import (
    as_tuples,
    changing_ellipse_stream,
    disk_stream,
    ellipse_stream,
    gaussian_stream,
    interleave,
    translate,
)


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_snippet(self):
        hull = AdaptiveHull(r=32)
        for p in as_tuples(disk_stream(1000, seed=1)):
            hull.insert(p)
        polygon = hull.hull()
        assert 3 <= len(polygon) <= 2 * 32 + 1
        assert diameter(hull) > 0


class TestSensorScenario:
    """The paper's motivating example: report the smallest convex region
    in which a chemical leak has been sensed, with bounded memory."""

    def test_leak_region_tracking(self):
        summary = AdaptiveHull(r=16)
        readings = as_tuples(gaussian_stream(5000, 2.0, 0.8, seed=2))
        kept = []
        for p in readings:
            kept.append(p)
            summary.insert(p)
        region = summary.hull()
        true_region = convex_hull(kept)
        # Bounded memory...
        assert summary.sample_size <= 33
        # ...but a faithful region: every sensed point is within the
        # guaranteed distance of the reported region.
        bound = 16 * math.pi * summary.perimeter / (16 * 16)
        assert all(
            point_polygon_distance(region, p) <= bound + 1e-9 for p in kept
        )
        assert hull_distance(true_region, region) <= bound + 1e-9


class TestTwoStreamScenarios:
    def test_separation_then_collision(self):
        tracker = SeparationTracker(lambda: AdaptiveHull(16))
        a = translate(disk_stream(2000, seed=3), -3.0, 0.0)
        b = translate(disk_stream(2000, seed=4), 3.0, 0.0)
        for pa, pb in zip(as_tuples(a), as_tuples(b)):
            tracker.insert("A", pa)
            tracker.insert("B", pb)
        assert tracker.separable("A", "B")
        d0 = tracker.distance("A", "B")
        # Stream B drifts into A.
        for p in as_tuples(translate(disk_stream(2000, seed=5), -2.5, 0.0)):
            tracker.insert("B", p)
        assert not tracker.separable("A", "B")
        assert tracker.distance("A", "B") < d0

    def test_mixed_schemes_in_one_tracker(self):
        """Trackers accept any summary; mix exact and adaptive."""
        schemes = iter([ExactHull(), AdaptiveHull(16)])
        tracker = ContainmentTracker(lambda: next(schemes))
        for p in as_tuples(disk_stream(800, seed=6)):
            tracker.insert("inner", (p[0] * 0.3, p[1] * 0.3))
        for p in as_tuples(disk_stream(800, seed=7)):
            tracker.insert("outer", (p[0] * 3.0, p[1] * 3.0))
        assert tracker.contained("inner", "outer")

    def test_interleaved_streams(self):
        a = translate(disk_stream(1000, seed=8), -5.0, 0.0)
        b = translate(disk_stream(1000, seed=9), 5.0, 0.0)
        merged = interleave(a, b)
        tracker = SeparationTracker(lambda: AdaptiveHull(16))
        for i, p in enumerate(as_tuples(merged)):
            tracker.insert("A" if i % 2 == 0 else "B", p)
        assert tracker.distance("A", "B") > 7.0


class TestSchemesAgree:
    """All bounded summaries approximate the same exact hull."""

    def test_on_shared_stream(self):
        pts = list(as_tuples(ellipse_stream(4000, rotation=0.2, seed=10)))
        exact = ExactHull()
        schemes = [AdaptiveHull(32), FixedSizeAdaptiveHull(32), UniformHull(64)]
        for p in pts:
            exact.insert(p)
            for s in schemes:
                s.insert(p)
        true_d = diameter(exact)
        for s in schemes:
            assert diameter(s) <= true_d + 1e-9
            assert diameter(s) >= true_d * 0.995, type(s).__name__


class TestFailureInjection:
    """Degenerate streams that historically break geometric code."""

    def test_all_points_identical(self):
        h = AdaptiveHull(16)
        for _ in range(100):
            h.insert((3.0, 4.0))
        assert h.hull() == [(3.0, 4.0)]
        assert h.perimeter == 0.0
        h.check_invariants()

    def test_collinear_stream(self):
        h = AdaptiveHull(16)
        for i in range(100):
            h.insert((float(i % 17), float(i % 17)))
        hull = h.hull()
        assert len(hull) == 2
        assert set(hull) == {(0.0, 0.0), (16.0, 16.0)}
        h.check_invariants()

    def test_axis_collinear_then_2d(self):
        h = AdaptiveHull(16)
        for i in range(50):
            h.insert((float(i), 0.0))
        h.insert((25.0, 30.0))  # stream becomes genuinely 2-D
        assert len(h.hull()) == 3
        h.check_invariants()

    def test_huge_coordinates(self):
        h = AdaptiveHull(16)
        for p in as_tuples(disk_stream(500, radius=1e9, seed=11)):
            h.insert(p)
        h.check_invariants()
        assert diameter(h) > 1e9

    def test_tiny_coordinates(self):
        h = AdaptiveHull(16)
        for p in as_tuples(disk_stream(500, radius=1e-9, seed=12)):
            h.insert(p)
        h.check_invariants()
        assert 0 < diameter(h) < 3e-9

    def test_alternating_extreme_jumps(self):
        """Points leaping between two far-apart blobs every step."""
        h = FixedSizeAdaptiveHull(16)
        left = as_tuples(disk_stream(400, seed=13))
        right = as_tuples(translate(disk_stream(400, seed=14), 1e6, 0.0))
        for pl, pr in zip(left, right):
            h.insert(pl)
            h.insert(pr)
        h.check_invariants()
        assert len(h.samples()) <= 33

    def test_distribution_shift_keeps_guarantee(self):
        pts = list(as_tuples(changing_ellipse_stream(1500, seed=15)))
        h = AdaptiveHull(16)
        for p in pts:
            h.insert(p)
        bound = 16 * math.pi * h.perimeter / 256
        worst = max(point_polygon_distance(h.hull(), p) for p in pts)
        assert worst <= bound + 1e-9


class TestClusterScenario:
    def test_cluster_monitoring_end_to_end(self):
        from repro.streams import clusters_stream

        ch = ClusterHull(r=16, max_clusters=5, join_distance=2.0)
        for p in as_tuples(clusters_stream(3000, seed=16)):
            ch.insert(p)
        assert len(ch.clusters) == 3
        # Per-cluster extremal queries still work on each summary.
        for c in ch.clusters:
            if len(c.hull()) >= 3:
                assert width(c.summary) > 0

"""Tests for all baseline summaries (contract + scheme-specific)."""

import math

import pytest

from repro.baselines import (
    DudleyKernelHull,
    ExactHull,
    PartiallyAdaptiveHull,
    RadialHistogramHull,
    RandomSampleHull,
    UniformHull,
)
from repro.geometry import contains_point, convex_hull
from repro.experiments.metrics import hull_distance
from repro.streams import as_tuples, changing_ellipse_stream, ellipse_stream


def all_baselines(n_stream):
    return [
        UniformHull(16),
        PartiallyAdaptiveHull(16, train_size=n_stream // 2),
        RadialHistogramHull(32),
        DudleyKernelHull(32),
        ExactHull(),
        RandomSampleHull(32, seed=1),
    ]


class TestCommonContract:
    """Every baseline obeys the HullSummary contract."""

    def test_samples_are_input_points(self, small_ellipse_points):
        pts = set(small_ellipse_points)
        for s in all_baselines(len(small_ellipse_points)):
            for p in small_ellipse_points:
                s.insert(p)
            for v in s.samples():
                assert v in pts, s.name

    def test_hull_inside_true_hull(self, small_ellipse_points):
        true = convex_hull(small_ellipse_points)
        for s in all_baselines(len(small_ellipse_points)):
            for p in small_ellipse_points:
                s.insert(p)
            for v in s.hull():
                assert contains_point(true, v, tol=1e-9), s.name

    def test_single_point_stream(self):
        for s in all_baselines(2):
            s.insert((1.0, 2.0))
            assert s.samples() == [(1.0, 2.0)], s.name

    def test_sample_size_property(self, small_disk_points):
        for s in all_baselines(len(small_disk_points)):
            for p in small_disk_points:
                s.insert(p)
            assert s.sample_size == len(s.samples()), s.name


class TestBoundedSpace:
    def test_space_bounds(self, small_ellipse_points):
        n = len(small_ellipse_points)
        bounds = {
            "uniform": 16,
            "partial": 2 * 16 + 1,
            "radial": 33,
            "dudley": 32,
            "random": 32,
        }
        for s in all_baselines(n):
            if s.name == "exact":
                continue
            for p in small_ellipse_points:
                s.insert(p)
            assert s.sample_size <= bounds[s.name], s.name


class TestExactHull:
    def test_zero_error(self, small_disk_points):
        s = ExactHull()
        for p in small_disk_points:
            s.insert(p)
        assert s.hull() == convex_hull(small_disk_points)

    def test_points_seen(self, small_disk_points):
        s = ExactHull()
        for p in small_disk_points:
            s.insert(p)
        assert s.points_seen == len(small_disk_points)


class TestRandomSample:
    def test_reservoir_size(self, small_disk_points):
        s = RandomSampleHull(32, seed=7)
        for p in small_disk_points:
            s.insert(p)
        assert len(s._reservoir) == 32

    def test_deterministic_with_seed(self, small_disk_points):
        a = RandomSampleHull(16, seed=3)
        b = RandomSampleHull(16, seed=3)
        for p in small_disk_points:
            a.insert(p)
            b.insert(p)
        assert a.samples() == b.samples()

    def test_much_worse_than_extremal_sampling(self, small_ellipse_points):
        """Reservoir sampling misses extrema: its error should dwarf the
        uniform hull's on the same budget (the motivating comparison)."""
        rs = RandomSampleHull(16, seed=5)
        uh = UniformHull(16)
        for p in small_ellipse_points:
            rs.insert(p)
            uh.insert(p)
        true = convex_hull(small_ellipse_points)
        assert hull_distance(true, rs.hull()) > hull_distance(true, uh.hull())

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            RandomSampleHull(0)


class TestRadialHistogram:
    def test_sector_count_validation(self):
        with pytest.raises(ValueError):
            RadialHistogramHull(2)

    def test_origin_is_first_point(self):
        s = RadialHistogramHull(8)
        s.insert((3.0, 4.0))
        assert s._origin == (3.0, 4.0)

    def test_keeps_farthest_per_sector(self):
        s = RadialHistogramHull(4)
        s.insert((0.0, 0.0))        # origin
        s.insert((1.0, 0.1))        # sector 0
        s.insert((5.0, 0.1))        # farther in sector 0
        s.insert((2.0, 0.2))        # nearer, ignored
        assert (5.0, 0.1) in s.samples()
        assert (2.0, 0.2) not in s.samples()

    def test_error_is_o_d_over_r(self, small_disk_points):
        s = RadialHistogramHull(64)
        for p in small_disk_points:
            s.insert(p)
        true = convex_hull(small_disk_points)
        from repro.geometry.calipers import diameter as poly_diam

        D = poly_diam(true)[0]
        # Generous constant; the point is boundedness at the O(D/r) scale.
        assert hull_distance(true, s.hull()) <= 4.0 * D * math.pi / 64 + 0.05 * D


class TestDudley:
    def test_anchor_validation(self):
        with pytest.raises(ValueError):
            DudleyKernelHull(2)

    def test_warmup_buffer_exact(self):
        s = DudleyKernelHull(16, warmup=10)
        pts = [(float(i), float(i % 3)) for i in range(5)]
        for p in pts:
            s.insert(p)
        # Still buffering: summary is exact so far.
        assert set(s.hull()) == set(convex_hull(pts))

    def test_rebuild_on_escape(self):
        s = DudleyKernelHull(16, warmup=4)
        for p in [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)]:
            s.insert(p)
        assert s.rebuilds == 0
        s.insert((100.0, 100.0))  # escapes the circumscribed circle
        assert s.rebuilds == 1
        assert (100.0, 100.0) in s.samples()

    def test_quadratic_error_shape(self, small_ellipse_points):
        """Dudley kernels achieve O(D/r^2): doubling anchors should cut
        the error by roughly 4x (allow slack for constants)."""
        true = convex_hull(small_ellipse_points)
        errs = {}
        for r in [16, 64]:
            s = DudleyKernelHull(r, warmup=64)
            for p in small_ellipse_points:
                s.insert(p)
            errs[r] = hull_distance(true, s.hull())
        assert errs[64] < errs[16]


class TestPartiallyAdaptive:
    def test_train_size_validation(self):
        with pytest.raises(ValueError):
            PartiallyAdaptiveHull(16, train_size=0)

    def test_freezes_after_training(self):
        s = PartiallyAdaptiveHull(16, train_size=100)
        pts = list(as_tuples(ellipse_stream(150, seed=8)))
        for p in pts[:99]:
            s.insert(p)
        assert not s.frozen
        s.insert(pts[99])
        assert s.frozen

    def test_frozen_directions_still_update_extrema(self):
        s = PartiallyAdaptiveHull(16, train_size=10)
        pts = list(as_tuples(ellipse_stream(10, seed=9)))
        for p in pts:
            s.insert(p)
        assert s.frozen
        far = (100.0, 0.0)
        assert s.insert(far)
        assert far in s.samples()

    def test_direction_count_preserved_at_freeze(self):
        s = PartiallyAdaptiveHull(16, train_size=500)
        for p in as_tuples(ellipse_stream(600, seed=10)):
            s.insert(p)
        assert s.direction_count == 2 * 16

    def test_worse_than_adaptive_on_shift(self):
        """The paper's headline for Table 1 section 4: training on the
        wrong distribution makes the frozen hull much worse than the
        continuously adaptive one."""
        from repro.core import FixedSizeAdaptiveHull

        pts = list(as_tuples(changing_ellipse_stream(2500, seed=11)))
        partial = PartiallyAdaptiveHull(16, train_size=len(pts) // 2)
        adaptive = FixedSizeAdaptiveHull(16)
        for p in pts:
            partial.insert(p)
            adaptive.insert(p)
        true = convex_hull(pts)
        assert hull_distance(true, partial.hull()) > 2.0 * hull_distance(
            true, adaptive.hull()
        )

    def test_edge_triangles_available_after_freeze(self):
        s = PartiallyAdaptiveHull(16, train_size=50)
        for p in as_tuples(ellipse_stream(200, seed=12)):
            s.insert(p)
        tris = list(s.edge_triangles())
        assert tris
        assert all(t.height >= 0.0 for t in tris)

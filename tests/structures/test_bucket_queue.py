"""Unit tests for the unrefinement threshold queues."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures import (
    HeapThresholdQueue,
    Pow2BucketQueue,
    make_threshold_queue,
)


class TestFactory:
    def test_exact_mode(self):
        assert isinstance(make_threshold_queue("exact"), HeapThresholdQueue)

    def test_pow2_mode(self):
        assert isinstance(make_threshold_queue("pow2"), Pow2BucketQueue)

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            make_threshold_queue("bogus")


class TestHeapQueue:
    def test_pop_due_in_threshold_order(self):
        q = HeapThresholdQueue()
        q.push(5.0, "a")
        q.push(1.0, "b")
        q.push(3.0, "c")
        assert list(q.pop_due(4.0)) == ["b", "c"]
        assert len(q) == 1

    def test_nothing_due(self):
        q = HeapThresholdQueue()
        q.push(10.0, "a")
        assert list(q.pop_due(5.0)) == []
        assert len(q) == 1

    def test_exact_boundary_is_due(self):
        q = HeapThresholdQueue()
        q.push(5.0, "a")
        assert list(q.pop_due(5.0)) == ["a"]

    def test_effective_threshold_is_identity(self):
        q = HeapThresholdQueue()
        assert q.effective_threshold(13.7) == 13.7

    def test_fifo_among_equal_thresholds(self):
        q = HeapThresholdQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert list(q.pop_due(1.0)) == ["first", "second"]


class TestPow2Queue:
    def test_effective_threshold_rounds_down(self):
        q = Pow2BucketQueue()
        assert q.effective_threshold(10.0) == 8.0
        assert q.effective_threshold(8.0) == 8.0
        assert q.effective_threshold(0.75) == 0.5

    def test_effective_threshold_nonpositive(self):
        q = Pow2BucketQueue()
        assert q.effective_threshold(0.0) == 0.0
        assert q.effective_threshold(-3.0) == 0.0

    def test_pops_at_rounded_threshold(self):
        # Threshold 10 surfaces once the driver reaches 8 (early, never late).
        q = Pow2BucketQueue()
        q.push(10.0, "a")
        assert list(q.pop_due(7.9)) == []
        assert list(q.pop_due(8.0)) == ["a"]

    def test_never_late(self):
        q = Pow2BucketQueue()
        q.push(10.0, "a")
        assert list(q.pop_due(10.0)) == ["a"]

    def test_len_tracks(self):
        q = Pow2BucketQueue()
        q.push(2.0, "a")
        q.push(100.0, "b")
        assert len(q) == 2
        list(q.pop_due(3.0))
        assert len(q) == 1

    def test_multiple_buckets_drain_in_order(self):
        q = Pow2BucketQueue()
        q.push(2.0, "low")     # bucket 1
        q.push(40.0, "high")   # bucket 5
        q.push(5.0, "mid")     # bucket 2
        assert list(q.pop_due(1000.0)) == ["low", "mid", "high"]

    def test_nonpositive_threshold_due_immediately(self):
        q = Pow2BucketQueue()
        q.push(0.0, "zero")
        assert list(q.pop_due(0.001)) == ["zero"]

    def test_driver_below_one(self):
        q = Pow2BucketQueue()
        q.push(0.3, "tiny")  # bucket floor(log2 0.3) = -2, due at 0.25
        assert list(q.pop_due(0.2)) == []
        assert list(q.pop_due(0.26)) == ["tiny"]


class TestQueueContract:
    """Properties both implementations must share."""

    @pytest.mark.parametrize("mode", ["exact", "pow2"])
    @settings(max_examples=40, deadline=None)
    @given(
        thresholds=st.lists(
            st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=30
        ),
        driver=st.floats(min_value=0.01, max_value=1e6),
    )
    def test_never_pops_late(self, mode, thresholds, driver):
        # An item may surface early (pow2 rounding) but never after its
        # true threshold has been exceeded without surfacing.
        q = make_threshold_queue(mode)
        for i, t in enumerate(thresholds):
            q.push(t, i)
        popped = set(q.pop_due(driver))
        for i, t in enumerate(thresholds):
            if t <= driver:
                assert i in popped, f"item with threshold {t} missed at {driver}"

    @pytest.mark.parametrize("mode", ["exact", "pow2"])
    def test_monotone_draining(self, mode):
        q = make_threshold_queue(mode)
        for t in [1.0, 2.0, 4.0, 8.0, 16.0]:
            q.push(t, t)
        seen = []
        for driver in [1.0, 3.0, 9.0, 100.0]:
            seen.extend(q.pop_due(driver))
        assert sorted(seen) == [1.0, 2.0, 4.0, 8.0, 16.0]
        assert len(q) == 0


class TestDrainDue:
    """drain_due must return exactly pop_due's items in pop_due's order
    (it is the bulk form the adaptive hull's hot sweep uses)."""

    @pytest.mark.parametrize("mode", ["exact", "pow2"])
    @settings(max_examples=40, deadline=None)
    @given(
        thresholds=st.lists(
            st.floats(min_value=0.01, max_value=1e6), min_size=0, max_size=30
        ),
        drivers=st.lists(
            st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=5
        ),
    )
    def test_matches_pop_due_order(self, mode, thresholds, drivers):
        q1 = make_threshold_queue(mode)
        q2 = make_threshold_queue(mode)
        for i, t in enumerate(thresholds):
            q1.push(t, i)
            q2.push(t, i)
        for d in sorted(drivers):
            assert q1.drain_due(d) == list(q2.pop_due(d))
        assert len(q1) == len(q2)

    @pytest.mark.parametrize("mode", ["exact", "pow2"])
    def test_drain_on_empty_and_nonpositive_driver(self, mode):
        q = make_threshold_queue(mode)
        assert q.drain_due(10.0) == []
        q.push(1.0, "a")
        assert q.drain_due(0.0) == []
        assert q.drain_due(-5.0) == []
        assert q.drain_due(1.0) == ["a"]

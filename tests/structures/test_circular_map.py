"""Unit tests for the circular ordered map."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures import CircularMap


def build(keys):
    m = CircularMap()
    for k in keys:
        m.insert(k, f"v{k}")
    return m


class TestBasics:
    def test_empty(self):
        m = CircularMap()
        assert len(m) == 0
        assert m.floor_circular(1.0) is None
        assert m.ceiling_circular(1.0) is None

    def test_insert_get_delete(self):
        m = build([0.5, 1.5])
        assert m.get(0.5) == "v0.5"
        assert m.delete(0.5) == "v0.5"
        assert 0.5 not in m

    def test_duplicate_insert_raises(self):
        m = build([1.0])
        with pytest.raises(KeyError):
            m.insert(1.0)

    def test_replace(self):
        m = build([1.0])
        m.replace(1.0, "new")
        assert m.get(1.0) == "new"

    def test_iteration_sorted(self):
        m = build([3.0, 1.0, 2.0])
        assert list(m) == [1.0, 2.0, 3.0]


class TestCircularQueries:
    def test_floor_within_range(self):
        m = build([1.0, 2.0, 3.0])
        assert m.floor_circular(2.5) == (2.0, "v2.0")

    def test_floor_wraps_to_max(self):
        m = build([1.0, 2.0, 3.0])
        assert m.floor_circular(0.5) == (3.0, "v3.0")

    def test_ceiling_within_range(self):
        m = build([1.0, 2.0, 3.0])
        assert m.ceiling_circular(2.5) == (3.0, "v3.0")

    def test_ceiling_wraps_to_min(self):
        m = build([1.0, 2.0, 3.0])
        assert m.ceiling_circular(3.5) == (1.0, "v1.0")

    def test_successor_strict(self):
        m = build([1.0, 2.0, 3.0])
        assert m.successor_circular(2.0) == (3.0, "v3.0")
        assert m.successor_circular(3.0) == (1.0, "v1.0")

    def test_predecessor_strict(self):
        m = build([1.0, 2.0, 3.0])
        assert m.predecessor_circular(2.0) == (1.0, "v1.0")
        assert m.predecessor_circular(1.0) == (3.0, "v3.0")

    def test_neighbours(self):
        m = build([1.0, 2.0, 3.0])
        lo, hi = m.neighbours(2.5)
        assert lo[0] == 2.0 and hi[0] == 3.0

    def test_neighbours_wrap(self):
        m = build([1.0, 2.0, 3.0])
        lo, hi = m.neighbours(0.1)
        assert lo[0] == 3.0 and hi[0] == 1.0

    def test_neighbours_empty_raises(self):
        with pytest.raises(KeyError):
            CircularMap().neighbours(1.0)

    def test_single_entry_wraps_to_itself(self):
        m = build([2.0])
        assert m.floor_circular(1.0) == (2.0, "v2.0")
        assert m.ceiling_circular(3.0) == (2.0, "v2.0")
        assert m.successor_circular(2.0) == (2.0, "v2.0")

    @settings(max_examples=40)
    @given(
        st.lists(
            st.floats(min_value=0, max_value=6.28).map(lambda x: round(x, 3)),
            min_size=1,
            max_size=20,
            unique=True,
        ),
        st.floats(min_value=0, max_value=6.28),
    )
    def test_successor_matches_sorted_model(self, keys, probe):
        m = build(keys)
        srt = sorted(keys)
        above = [k for k in srt if k > probe]
        expected = above[0] if above else srt[0]
        assert m.successor_circular(probe)[0] == expected

    def test_works_with_dyadic_directions(self):
        from repro.geometry.directions import DyadicDirection

        m = CircularMap()
        r = 8
        for j in range(r):
            m.insert(DyadicDirection.uniform(j, r), j)
        probe = DyadicDirection(1, 1, r)  # between 0 and 1
        lo, hi = m.neighbours(probe)
        assert lo[1] == 0 and hi[1] == 1

"""Unit and model-based tests for the skip list."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures import SkipList


def build(items):
    s = SkipList()
    for k in items:
        s.insert(k, k * 10)
    return s


class TestBasicOperations:
    def test_empty(self):
        s = SkipList()
        assert len(s) == 0
        assert not s
        assert list(s) == []

    def test_insert_and_get(self):
        s = build([5, 1, 9])
        assert s.get(5) == 50
        assert s.get(1) == 10
        assert s.get(404) is None
        assert s.get(404, "x") == "x"

    def test_sorted_iteration(self):
        s = build([5, 1, 9, 3, 7])
        assert list(s) == [1, 3, 5, 7, 9]
        assert list(s.items()) == [(k, k * 10) for k in [1, 3, 5, 7, 9]]
        assert list(s.values()) == [10, 30, 50, 70, 90]

    def test_contains(self):
        s = build([2, 4])
        assert 2 in s
        assert 3 not in s

    def test_duplicate_insert_raises(self):
        s = build([1])
        with pytest.raises(KeyError):
            s.insert(1, "again")

    def test_replace_overwrites(self):
        s = build([1])
        s.replace(1, "new")
        assert s.get(1) == "new"
        assert len(s) == 1

    def test_replace_inserts_when_absent(self):
        s = SkipList()
        s.replace(7, "v")
        assert s.get(7) == "v"

    def test_delete(self):
        s = build([1, 2, 3])
        assert s.delete(2) == 20
        assert list(s) == [1, 3]
        assert len(s) == 2

    def test_delete_missing_raises(self):
        s = build([1])
        with pytest.raises(KeyError):
            s.delete(99)

    def test_len_tracks_mutations(self):
        s = SkipList()
        for i in range(20):
            s.insert(i)
        for i in range(0, 20, 2):
            s.delete(i)
        assert len(s) == 10


class TestOrderQueries:
    def test_min_max(self):
        s = build([5, 1, 9])
        assert s.min() == (1, 10)
        assert s.max() == (9, 90)

    def test_min_max_empty_raise(self):
        s = SkipList()
        with pytest.raises(KeyError):
            s.min()
        with pytest.raises(KeyError):
            s.max()

    def test_predecessor_successor(self):
        s = build([1, 3, 5])
        assert s.predecessor(3) == (1, 10)
        assert s.successor(3) == (5, 50)
        assert s.predecessor(1) is None
        assert s.successor(5) is None

    def test_predecessor_successor_between_keys(self):
        s = build([1, 3, 5])
        assert s.predecessor(4) == (3, 30)
        assert s.successor(4) == (5, 50)

    def test_floor_ceiling_exact(self):
        s = build([1, 3, 5])
        assert s.floor(3) == (3, 30)
        assert s.ceiling(3) == (3, 30)

    def test_floor_ceiling_between(self):
        s = build([1, 3, 5])
        assert s.floor(4) == (3, 30)
        assert s.ceiling(4) == (5, 50)

    def test_floor_ceiling_out_of_range(self):
        s = build([1, 3, 5])
        assert s.floor(0) is None
        assert s.ceiling(6) is None

    def test_range(self):
        s = build([1, 2, 3, 4, 5])
        assert [k for k, _ in s.range(2, 4)] == [2, 3, 4]

    def test_range_empty_interval(self):
        s = build([1, 5])
        assert list(s.range(2, 4)) == []


class TestModelBased:
    """Compare against a plain dict + sorted() model."""

    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete", "get"]),
                st.integers(min_value=0, max_value=30),
            ),
            max_size=100,
        )
    )
    def test_against_dict_model(self, ops):
        s = SkipList()
        model = {}
        for op, key in ops:
            if op == "insert":
                if key in model:
                    with pytest.raises(KeyError):
                        s.insert(key, key)
                else:
                    s.insert(key, key)
                    model[key] = key
            elif op == "delete":
                if key in model:
                    assert s.delete(key) == model.pop(key)
                else:
                    with pytest.raises(KeyError):
                        s.delete(key)
            else:
                assert s.get(key) == model.get(key)
        assert list(s) == sorted(model)
        assert len(s) == len(model)

    @settings(max_examples=40)
    @given(st.lists(st.integers(min_value=-50, max_value=50), unique=True))
    def test_neighbour_queries_match_sorted_list(self, keys):
        s = SkipList()
        for k in keys:
            s.insert(k)
        for probe in range(-55, 56, 7):
            below = [k for k in keys if k < probe]
            above = [k for k in keys if k > probe]
            le = [k for k in keys if k <= probe]
            ge = [k for k in keys if k >= probe]
            assert (s.predecessor(probe) or (None,))[0] == (
                max(below) if below else None
            )
            assert (s.successor(probe) or (None,))[0] == (
                min(above) if above else None
            )
            assert (s.floor(probe) or (None,))[0] == (max(le) if le else None)
            assert (s.ceiling(probe) or (None,))[0] == (min(ge) if ge else None)

    def test_large_scale(self):
        s = SkipList()
        n = 5000
        for i in range(n):
            s.insert((i * 7919) % n)  # permutation of 0..n-1
        assert len(s) == n
        assert list(s) == list(range(n))

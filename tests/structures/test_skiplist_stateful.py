"""Stateful (rule-based) testing of the skip list against a dict model.

Hypothesis drives random interleavings of insert/replace/delete/query
operations and checks every observable against a reference model after
each step — the strongest correctness net for the ordered-map substrate
the hull structures stand on.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.structures import SkipList

KEYS = st.integers(min_value=-25, max_value=25)


class SkipListMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.sl = SkipList()
        self.model = {}

    @rule(key=KEYS)
    def insert_new(self, key):
        if key in self.model:
            try:
                self.sl.insert(key, key)
                raise AssertionError("duplicate insert must raise")
            except KeyError:
                pass
        else:
            self.sl.insert(key, key * 3)
            self.model[key] = key * 3

    @rule(key=KEYS, value=st.integers())
    def replace_any(self, key, value):
        self.sl.replace(key, value)
        self.model[key] = value

    @rule(key=KEYS)
    def delete_maybe(self, key):
        if key in self.model:
            assert self.sl.delete(key) == self.model.pop(key)
        else:
            try:
                self.sl.delete(key)
                raise AssertionError("deleting a missing key must raise")
            except KeyError:
                pass

    @rule(key=KEYS)
    def check_get(self, key):
        assert self.sl.get(key, "absent") == self.model.get(key, "absent")

    @rule(probe=KEYS)
    def check_neighbours(self, probe):
        below = [k for k in self.model if k < probe]
        above = [k for k in self.model if k > probe]
        pred = self.sl.predecessor(probe)
        succ = self.sl.successor(probe)
        assert (pred[0] if pred else None) == (max(below) if below else None)
        assert (succ[0] if succ else None) == (min(above) if above else None)

    @invariant()
    def sorted_and_sized(self):
        assert list(self.sl) == sorted(self.model)
        assert len(self.sl) == len(self.model)


TestSkipListStateful = SkipListMachine.TestCase
TestSkipListStateful.settings = settings(
    max_examples=25, stateful_step_count=60, deadline=None
)

"""Stateful (rule-based) testing of the threshold queues against a model.

The skiplist and circular map have stateful suites; this adds one for
the paper's Section 5.3 structure.  Hypothesis drives random
interleavings of pushes and monotone driver advances and checks every
pop against a reference model that knows only the documented contract:

* an item with threshold ``t`` surfaces exactly when the driver reaches
  ``effective_threshold(t)`` — the identity for the exact heap, the
  power-of-two rounding (early by a factor < 2, never late) for the
  Matias buckets;
* non-positive thresholds are due as soon as the driver is positive;
* items pop in effective-threshold order, FIFO within equal effective
  thresholds, and nothing is ever lost or duplicated.
"""

import math

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.structures import HeapThresholdQueue, Pow2BucketQueue

THRESHOLDS = st.one_of(
    st.floats(min_value=1e-6, max_value=1e9, allow_nan=False, allow_infinity=False),
    st.sampled_from([0.0, -1.0, 0.25, 1.0, 2.0, 4.0, 1024.0]),
)
ADVANCES = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)


class _ThresholdQueueMachine(RuleBasedStateMachine):
    """Model: a list of (effective_threshold, seq, item) pending entries."""

    make_queue = None  # set by subclasses

    def __init__(self):
        super().__init__()
        self.q = type(self).make_queue()
        self.model = []
        self.driver = 0.0
        self.seq = 0

    def model_due(self, eff, driver):
        """When the contract says an entry must surface."""
        raise NotImplementedError

    @rule(threshold=THRESHOLDS)
    def push(self, threshold):
        self.q.push(threshold, ("item", self.seq))
        eff = self.q.effective_threshold(threshold)
        # The contract both queues share: surfacing early by less than a
        # factor of two, never late.
        assert eff <= threshold or threshold <= 0.0
        if threshold > 0.0:
            assert eff > threshold / 2.0
        self.model.append((eff, self.seq, ("item", self.seq)))
        self.seq += 1

    def _pop_and_check(self, advance):
        self.driver += advance
        popped = list(self.q.pop_due(self.driver))
        due = [e for e in self.model if self.model_due(e[0], self.driver)]
        # Entries surface in effective-threshold order, FIFO within ties.
        expected = [item for _, _, item in sorted(due, key=lambda e: (e[0], e[1]))]
        self.model = [e for e in self.model if not self.model_due(e[0], self.driver)]
        assert popped == expected

    @rule(advance=ADVANCES)
    def advance_and_pop(self, advance):
        self._pop_and_check(advance)

    @rule()
    def pop_without_advancing(self):
        # A plain re-pop at the current driver: surfaces exactly the due
        # entries pushed since the last pop, nothing twice.
        self._pop_and_check(0.0)

    @invariant()
    def sizes_agree(self):
        assert len(self.q) == len(self.model)


class Pow2Machine(_ThresholdQueueMachine):
    make_queue = staticmethod(Pow2BucketQueue)

    def model_due(self, eff, driver):
        # The bucket queue never pops at a non-positive driver.
        return driver > 0.0 and eff <= driver

    @rule(threshold=st.floats(min_value=1e-6, max_value=1e9, allow_nan=False))
    def rounding_is_power_of_two(self, threshold):
        eff = self.q.effective_threshold(threshold)
        assert eff == 2.0 ** math.floor(math.log2(threshold))


class HeapMachine(_ThresholdQueueMachine):
    make_queue = staticmethod(HeapThresholdQueue)

    def model_due(self, eff, driver):
        return eff <= driver

    @rule(threshold=st.floats(min_value=1e-6, max_value=1e9, allow_nan=False))
    def heap_is_exact(self, threshold):
        assert self.q.effective_threshold(threshold) == threshold


TestPow2BucketQueueStateful = Pow2Machine.TestCase
TestPow2BucketQueueStateful.settings = settings(
    max_examples=30, stateful_step_count=50, deadline=None
)
TestHeapThresholdQueueStateful = HeapMachine.TestCase
TestHeapThresholdQueueStateful.settings = settings(
    max_examples=30, stateful_step_count=50, deadline=None
)

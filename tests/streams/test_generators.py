"""Tests for the synthetic stream generators."""

import math

import numpy as np
import pytest

from repro.streams import (
    changing_ellipse_stream,
    circle_points,
    clusters_stream,
    convex_position_stream,
    disk_stream,
    drifting_clusters_stream,
    ellipse_stream,
    gaussian_stream,
    spiral_stream,
    square_stream,
)


class TestShapesAndSeeds:
    @pytest.mark.parametrize(
        "gen",
        [
            lambda n, s: disk_stream(n, seed=s),
            lambda n, s: square_stream(n, seed=s),
            lambda n, s: ellipse_stream(n, seed=s),
            lambda n, s: gaussian_stream(n, seed=s),
            lambda n, s: clusters_stream(n, seed=s),
            lambda n, s: spiral_stream(n, seed=s),
            lambda n, s: convex_position_stream(n, seed=s),
        ],
    )
    def test_shape_and_determinism(self, gen):
        a = gen(100, 7)
        b = gen(100, 7)
        c = gen(100, 8)
        assert a.shape == (100, 2)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestDisk:
    def test_within_radius(self):
        pts = disk_stream(5000, radius=2.0, seed=1)
        assert np.all(np.hypot(pts[:, 0], pts[:, 1]) <= 2.0 + 1e-9)

    def test_roughly_uniform_not_clustered_at_center(self):
        # sqrt radial law: about half the points outside r/sqrt(2).
        pts = disk_stream(20000, seed=2)
        frac = np.mean(np.hypot(pts[:, 0], pts[:, 1]) > 1 / math.sqrt(2))
        assert 0.45 < frac < 0.55


class TestSquare:
    def test_within_bounds(self):
        pts = square_stream(2000, half_side=1.5, seed=3)
        assert np.all(np.abs(pts) <= 1.5 + 1e-9)

    def test_rotation_preserves_radius(self):
        a = square_stream(500, rotation=0.0, seed=4)
        b = square_stream(500, rotation=0.7, seed=4)
        assert np.allclose(
            np.hypot(a[:, 0], a[:, 1]), np.hypot(b[:, 0], b[:, 1])
        )


class TestEllipse:
    def test_inside_ellipse(self):
        pts = ellipse_stream(5000, a=16.0, b=1.0, seed=5)
        assert np.all((pts[:, 0] / 16.0) ** 2 + pts[:, 1] ** 2 <= 1.0 + 1e-9)

    def test_aspect_ratio_visible(self):
        pts = ellipse_stream(5000, a=16.0, b=1.0, seed=6)
        assert np.ptp(pts[:, 0]) > 8.0 * np.ptp(pts[:, 1]) * 0.9


class TestCirclePoints:
    def test_on_circle(self):
        pts = circle_points(32, radius=3.0)
        assert np.allclose(np.hypot(pts[:, 0], pts[:, 1]), 3.0)

    def test_evenly_spaced(self):
        pts = circle_points(8)
        angles = np.sort(np.arctan2(pts[:, 1], pts[:, 0]))
        gaps = np.diff(angles)
        assert np.allclose(gaps, gaps[0])

    def test_phase_rotates(self):
        a = circle_points(8)
        b = circle_points(8, phase=0.1)
        assert not np.allclose(a, b)


class TestChangingEllipse:
    def test_two_phases(self):
        pts = changing_ellipse_stream(500, seed=7)
        assert pts.shape == (1000, 2)
        first, second = pts[:500], pts[500:]
        # First phase is tall and narrow; second is wide and contains it.
        assert np.ptp(first[:, 1]) > np.ptp(first[:, 0])
        assert np.ptp(second[:, 0]) > np.ptp(second[:, 1])

    def test_second_contains_first(self):
        """The paper requires the horizontal ellipse to completely contain
        the vertical one: check the first phase's extremes satisfy the
        second ellipse's equation."""
        aspect = 16.0
        pts = changing_ellipse_stream(2000, aspect=aspect, seed=8)
        first = pts[:2000]
        a2, b2 = 1.1 * aspect * aspect, 1.1 * aspect
        vals = (first[:, 0] / a2) ** 2 + (first[:, 1] / b2) ** 2
        assert np.all(vals <= 1.0 + 1e-9)


class TestSpiral:
    def test_monotone_radius(self):
        pts = spiral_stream(200, seed=9)
        radii = np.hypot(pts[:, 0], pts[:, 1])
        assert np.all(np.diff(radii) > -1e-6)

    def test_every_point_outside_previous_hull(self):
        from repro.geometry import OnlineHull
        from repro.streams import as_tuples

        pts = list(as_tuples(spiral_stream(100, seed=10)))
        oh = OnlineHull()
        changes = sum(oh.insert(p) for p in pts)
        assert changes >= 95  # nearly every point extends the hull


class TestClusters:
    def test_near_centers(self):
        centers = [(0.0, 0.0), (100.0, 0.0)]
        pts = clusters_stream(2000, centers=centers, sigma=0.5, seed=11)
        d0 = np.hypot(pts[:, 0], pts[:, 1])
        d1 = np.hypot(pts[:, 0] - 100.0, pts[:, 1])
        assert np.all(np.minimum(d0, d1) < 5.0)

    def test_all_clusters_populated(self):
        pts = clusters_stream(3000, seed=12)
        # Default has 3 well-separated centers; each should catch ~1/3.
        labels = np.argmin(
            [
                np.hypot(pts[:, 0] - cx, pts[:, 1] - cy)
                for cx, cy in [(0.0, 0.0), (10.0, 0.0), (5.0, 8.0)]
            ],
            axis=0,
        )
        counts = np.bincount(labels, minlength=3)
        assert np.all(counts > 500)


class TestConvexPosition:
    def test_on_ellipse_boundary(self):
        pts = convex_position_stream(500, seed=13)
        vals = (pts[:, 0] / 3.0) ** 2 + pts[:, 1] ** 2
        assert np.allclose(vals, 1.0)


class TestDriftingClusters:
    def test_shape_seeded_finite(self):
        pts = drifting_clusters_stream(1000, seed=3)
        assert pts.shape == (1000, 2)
        assert np.isfinite(pts).all()
        assert np.array_equal(pts, drifting_clusters_stream(1000, seed=3))
        assert not np.array_equal(pts, drifting_clusters_stream(1000, seed=4))

    def test_centers_actually_drift(self):
        """Early and late stream segments occupy different regions —
        the property that makes stale extremes matter for windows."""
        pts = drifting_clusters_stream(
            20_000, n_clusters=2, drift=0.3, sigma=0.2, seed=7
        )
        early = pts[:2000].mean(axis=0)
        late = pts[-2000:].mean(axis=0)
        assert np.hypot(*(late - early)) > 3.0

    def test_zero_drift_stays_put(self):
        pts = drifting_clusters_stream(
            5000, n_clusters=1, drift=0.0, sigma=0.1, spread=0.0, seed=1
        )
        assert np.hypot(pts[:, 0], pts[:, 1]).max() < 1.0

    def test_rejects_bad_cluster_count(self):
        with pytest.raises(ValueError):
            drifting_clusters_stream(10, n_clusters=0)

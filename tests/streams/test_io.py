"""Tests for stream persistence and replay."""

import numpy as np
import pytest

from repro.streams import disk_stream, load_stream, replay, save_stream


class TestSaveLoadRoundtrip:
    @pytest.mark.parametrize("ext", [".npy", ".csv"])
    def test_roundtrip(self, tmp_path, ext):
        pts = disk_stream(50, seed=1)
        path = save_stream(pts, tmp_path / f"s{ext}")
        loaded = load_stream(path)
        assert np.allclose(loaded, pts)

    def test_csv_has_header(self, tmp_path):
        path = save_stream(disk_stream(3, seed=2), tmp_path / "s.csv")
        first = open(path).readline().strip()
        assert first == "x,y"

    def test_csv_without_header_loads(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("1.0,2.0\n3.0,4.0\n")
        loaded = load_stream(path)
        assert loaded.tolist() == [[1.0, 2.0], [3.0, 4.0]]

    def test_unknown_extension_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_stream(disk_stream(3, seed=3), tmp_path / "s.txt")
        with pytest.raises(ValueError):
            load_stream(tmp_path / "nothing.txt")

    def test_wrong_shape_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_stream(np.zeros((3, 3)), tmp_path / "s.npy")

    def test_malformed_csv_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0,2.0\noops,3.0\n")
        with pytest.raises(ValueError):
            load_stream(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_stream(tmp_path / "absent.npy")

    def test_empty_csv(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("x,y\n")
        loaded = load_stream(path)
        assert loaded.shape == (0, 2)


class TestReplay:
    def test_yields_indexed_tuples(self):
        pts = disk_stream(5, seed=4)
        out = list(replay(pts))
        assert len(out) == 5
        assert out[0][0] == 0
        assert out[0][1] == (float(pts[0][0]), float(pts[0][1]))

    def test_chunked_downsampling(self):
        pts = disk_stream(10, seed=5)
        out = list(replay(pts, chunk=3))
        assert [i for i, _ in out] == [0, 3, 6, 9]

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            list(replay(disk_stream(5, seed=6), chunk=0))

    def test_feeds_summary(self, tmp_path):
        from repro.core import AdaptiveHull

        pts = disk_stream(200, seed=7)
        path = save_stream(pts, tmp_path / "s.npy")
        h = AdaptiveHull(16)
        for _, p in replay(load_stream(path)):
            h.insert(p)
        assert h.points_seen == 200


class TestSummarySerialisation:
    """The JSON summary snapshot format (engine checkpointing)."""

    def _fed(self, factory, n=800, seed=21):
        from repro.streams import ellipse_stream

        s = factory()
        s.insert_many(ellipse_stream(n, rotation=0.1, seed=seed))
        return s

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: __import__("repro").UniformHull(12),
            lambda: __import__("repro").AdaptiveHull(16),
            lambda: __import__("repro").AdaptiveHull(16, queue_mode="exact"),
            lambda: __import__("repro").FixedSizeAdaptiveHull(8),
        ],
    )
    def test_round_trip_is_exact(self, factory, tmp_path):
        from repro.streams.io import load_summary, save_summary

        original = self._fed(factory)
        path = save_summary(original, tmp_path / "s.json")
        restored = load_summary(path)
        assert type(restored) is type(original)
        assert restored.hull() == original.hull()
        assert restored.samples() == original.samples()
        assert restored.points_seen == original.points_seen
        assert restored.points_processed == original.points_processed

    def test_restored_adaptive_keeps_streaming_identically(self, tmp_path):
        from repro import AdaptiveHull
        from repro.streams import ellipse_stream
        from repro.streams.io import load_summary, save_summary

        original = self._fed(lambda: AdaptiveHull(16))
        restored = load_summary(save_summary(original, tmp_path / "s.json"))
        more = ellipse_stream(500, rotation=0.1, seed=33) * 1.7
        original.insert_many(more)
        restored.insert_many(more)
        assert restored.hull() == original.hull()
        assert restored.samples() == original.samples()
        assert restored.nodes_visited == original.nodes_visited
        restored.check_invariants()

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: __import__("repro").DudleyKernelHull(16),
            lambda: __import__("repro").RadialHistogramHull(8),
            lambda: __import__("repro").PartiallyAdaptiveHull(8, train_size=100),
            lambda: __import__("repro").RandomSampleHull(10, seed=3),
        ],
    )
    def test_baseline_registry_restore_reconstructs_config(self, factory, tmp_path):
        from repro.streams.io import load_summary, save_summary

        original = self._fed(factory, n=300)
        restored = load_summary(save_summary(original, tmp_path / "b.json"))
        assert type(restored) is type(original)
        assert restored.get_config() == original.get_config()

    def test_baseline_factory_config_mismatch_rejected(self, tmp_path):
        from repro import DudleyKernelHull
        from repro.streams.io import load_summary, save_summary

        path = save_summary(self._fed(lambda: DudleyKernelHull(16), n=300),
                            tmp_path / "d.json")
        with pytest.raises(ValueError, match="different policy"):
            load_summary(path, factory=lambda: DudleyKernelHull(64))

    def test_exact_hull_replay_snapshot(self, tmp_path):
        from repro.baselines import ExactHull
        from repro.streams.io import load_summary, save_summary

        original = ExactHull()
        original.insert_many(disk_stream(300, seed=9))
        restored = load_summary(save_summary(original, tmp_path / "e.json"))
        assert restored.hull() == original.hull()
        assert restored.points_seen == original.points_seen

    def test_factory_takes_precedence_and_is_checked(self, tmp_path):
        from repro import AdaptiveHull, UniformHull
        from repro.streams.io import load_summary, save_summary

        path = save_summary(self._fed(lambda: AdaptiveHull(16)), tmp_path / "s.json")
        restored = load_summary(path, factory=lambda: AdaptiveHull(16))
        assert isinstance(restored, AdaptiveHull)
        with pytest.raises(ValueError):
            load_summary(path, factory=lambda: UniformHull(16))

    def test_factory_config_mismatch_rejected(self, tmp_path):
        from repro import AdaptiveHull
        from repro.streams.io import load_summary, save_summary

        path = save_summary(
            self._fed(lambda: AdaptiveHull(16, queue_mode="exact")),
            tmp_path / "s.json",
        )
        # Same class, different policy: must refuse, not silently
        # restore under pow2 buckets.
        with pytest.raises(ValueError, match="different policy"):
            load_summary(path, factory=lambda: AdaptiveHull(16))
        ok = load_summary(path, factory=lambda: AdaptiveHull(16, queue_mode="exact"))
        assert ok.queue_mode == "exact"

    def test_unknown_format_rejected(self):
        from repro.streams.io import summary_from_state

        with pytest.raises(ValueError):
            summary_from_state({"format": "something.else"})

    def test_empty_summary_round_trips(self, tmp_path):
        from repro import UniformHull
        from repro.streams.io import load_summary, save_summary

        restored = load_summary(save_summary(UniformHull(8), tmp_path / "u.json"))
        assert restored.hull() == []
        assert restored.samples() == []
        restored.insert((1.0, 2.0))
        assert restored.samples() == [(1.0, 2.0)]

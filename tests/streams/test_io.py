"""Tests for stream persistence and replay."""

import numpy as np
import pytest

from repro.streams import disk_stream, load_stream, replay, save_stream


class TestSaveLoadRoundtrip:
    @pytest.mark.parametrize("ext", [".npy", ".csv"])
    def test_roundtrip(self, tmp_path, ext):
        pts = disk_stream(50, seed=1)
        path = save_stream(pts, tmp_path / f"s{ext}")
        loaded = load_stream(path)
        assert np.allclose(loaded, pts)

    def test_csv_has_header(self, tmp_path):
        path = save_stream(disk_stream(3, seed=2), tmp_path / "s.csv")
        first = open(path).readline().strip()
        assert first == "x,y"

    def test_csv_without_header_loads(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("1.0,2.0\n3.0,4.0\n")
        loaded = load_stream(path)
        assert loaded.tolist() == [[1.0, 2.0], [3.0, 4.0]]

    def test_unknown_extension_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_stream(disk_stream(3, seed=3), tmp_path / "s.txt")
        with pytest.raises(ValueError):
            load_stream(tmp_path / "nothing.txt")

    def test_wrong_shape_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_stream(np.zeros((3, 3)), tmp_path / "s.npy")

    def test_malformed_csv_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0,2.0\noops,3.0\n")
        with pytest.raises(ValueError):
            load_stream(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_stream(tmp_path / "absent.npy")

    def test_empty_csv(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("x,y\n")
        loaded = load_stream(path)
        assert loaded.shape == (0, 2)


class TestReplay:
    def test_yields_indexed_tuples(self):
        pts = disk_stream(5, seed=4)
        out = list(replay(pts))
        assert len(out) == 5
        assert out[0][0] == 0
        assert out[0][1] == (float(pts[0][0]), float(pts[0][1]))

    def test_chunked_downsampling(self):
        pts = disk_stream(10, seed=5)
        out = list(replay(pts, chunk=3))
        assert [i for i, _ in out] == [0, 3, 6, 9]

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            list(replay(disk_stream(5, seed=6), chunk=0))

    def test_feeds_summary(self, tmp_path):
        from repro.core import AdaptiveHull

        pts = disk_stream(200, seed=7)
        path = save_stream(pts, tmp_path / "s.npy")
        h = AdaptiveHull(16)
        for _, p in replay(load_stream(path)):
            h.insert(p)
        assert h.points_seen == 200

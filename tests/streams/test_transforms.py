"""Tests for stream transforms."""

import math

import numpy as np
import pytest

from repro.streams import (
    as_tuples,
    concatenate,
    disk_stream,
    interleave,
    rotate,
    scale,
    shuffle,
    translate,
)


class TestRotate:
    def test_quarter_turn(self):
        pts = np.array([[1.0, 0.0]])
        out = rotate(pts, math.pi / 2.0)
        assert out[0] == pytest.approx([0.0, 1.0], abs=1e-12)

    def test_preserves_norms(self):
        pts = disk_stream(100, seed=1)
        out = rotate(pts, 0.37)
        assert np.allclose(
            np.hypot(pts[:, 0], pts[:, 1]), np.hypot(out[:, 0], out[:, 1])
        )

    def test_inverse(self):
        pts = disk_stream(50, seed=2)
        back = rotate(rotate(pts, 0.5), -0.5)
        assert np.allclose(pts, back)


class TestScaleTranslate:
    def test_scale_isotropic(self):
        out = scale(np.array([[1.0, 2.0]]), 3.0)
        assert out[0] == pytest.approx([3.0, 6.0])

    def test_scale_anisotropic(self):
        out = scale(np.array([[1.0, 2.0]]), 2.0, 0.5)
        assert out[0] == pytest.approx([2.0, 1.0])

    def test_translate(self):
        out = translate(np.array([[1.0, 1.0]]), -1.0, 2.0)
        assert out[0] == pytest.approx([0.0, 3.0])


class TestComposition:
    def test_concatenate(self):
        a = disk_stream(10, seed=3)
        b = disk_stream(20, seed=4)
        out = concatenate(a, b)
        assert out.shape == (30, 2)
        assert np.array_equal(out[:10], a)

    def test_interleave_round_robin(self):
        a = np.array([[1.0, 0.0], [2.0, 0.0]])
        b = np.array([[10.0, 0.0], [20.0, 0.0]])
        out = interleave(a, b)
        assert out[0][0] == 1.0
        assert out[1][0] == 10.0
        assert out[2][0] == 2.0
        assert out[3][0] == 20.0

    def test_interleave_empty(self):
        assert interleave().shape == (0, 2)

    def test_shuffle_is_permutation(self):
        pts = disk_stream(100, seed=5)
        out = shuffle(pts, seed=6)
        assert sorted(map(tuple, pts)) == sorted(map(tuple, out))
        assert not np.array_equal(pts, out)

    def test_shuffle_deterministic(self):
        pts = disk_stream(100, seed=7)
        assert np.array_equal(shuffle(pts, seed=8), shuffle(pts, seed=8))


class TestAsTuples:
    def test_yields_float_tuples(self):
        out = list(as_tuples(np.array([[1, 2], [3, 4]])))
        assert out == [(1.0, 2.0), (3.0, 4.0)]
        assert all(isinstance(x, float) for p in out for x in p)

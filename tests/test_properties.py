"""Cross-module property-based tests.

These tie together multiple subsystems with hypothesis-driven
invariants that must hold for *any* point stream:

* summary hulls nest: adaptive ⊆ true hull, uniform ⊆ adaptive class;
* query answers are consistent across summaries and with brute force;
* the static (Section 4) and streaming (Section 5) algorithms agree on
  their guarantees for the same data;
* geometric identities (support additivity, extent symmetry).
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ExactHull
from repro.core import AdaptiveHull, FixedSizeAdaptiveHull, UniformHull, adaptive_sample
from repro.experiments.metrics import hull_distance
from repro.geometry import (
    contains_point,
    convex_hull,
    diameter,
    point_polygon_distance,
    width,
)
from repro.geometry.vec import dist, dot, unit
from repro.queries import diameter as q_diameter
from repro.queries import extent as q_extent
from repro.queries import width as q_width

coords = st.floats(
    min_value=-50, max_value=50, allow_nan=False, allow_infinity=False
).map(lambda x: round(x, 2))
points = st.tuples(coords, coords)
streams = st.lists(points, min_size=1, max_size=60)

R = 8


def feed(summary, pts):
    for p in pts:
        summary.insert(p)
    return summary


class TestHullNesting:
    @settings(max_examples=40, deadline=None)
    @given(streams)
    def test_every_summary_inside_true_hull(self, pts):
        true = convex_hull(pts)
        if len(true) < 3:
            return
        for summary in (
            feed(UniformHull(R), pts),
            feed(AdaptiveHull(R), pts),
            feed(FixedSizeAdaptiveHull(R), pts),
        ):
            for v in summary.hull():
                assert contains_point(true, v, tol=1e-7), type(summary).__name__

    @settings(max_examples=40, deadline=None)
    @given(streams)
    def test_uniform_extrema_subset_of_adaptive_samples(self, pts):
        """The adaptive hull always contains the uniform layer's extrema."""
        ada = feed(AdaptiveHull(R), pts)
        uni_samples = set(ada.uniform_layer.samples())
        assert uni_samples <= set(ada.samples())


class TestQueryConsistency:
    @settings(max_examples=30, deadline=None)
    @given(streams)
    def test_diameter_ordering(self, pts):
        """exact >= adaptive and exact >= uniform diameters, and both
        within the Lemma 3.1 factor."""
        exact = feed(ExactHull(), pts)
        ada = feed(AdaptiveHull(R), pts)
        uni = feed(UniformHull(R), pts)
        d_true = q_diameter(exact)
        for s in (ada, uni):
            d = q_diameter(s)
            assert d <= d_true + 1e-9
            assert d >= d_true * math.cos(math.pi / R) - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(streams, st.floats(min_value=0.0, max_value=6.28))
    def test_extent_never_exceeds_brute_force(self, pts, theta):
        ada = feed(AdaptiveHull(R), pts)
        d = unit(theta)
        vals = [dot(p, d) for p in pts]
        true_ext = max(vals) - min(vals)
        assert q_extent(ada, d) <= true_ext + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(streams)
    def test_width_le_diameter_on_summaries(self, pts):
        ada = feed(AdaptiveHull(R), pts)
        if len(ada.hull()) < 3:
            return
        assert q_width(ada) <= q_diameter(ada) + 1e-9


class TestStaticStreamingAgreement:
    @settings(max_examples=25, deadline=None)
    @given(streams)
    def test_both_meet_the_same_bound(self, pts):
        true = convex_hull(pts)
        if len(true) < 3:
            return
        D = diameter(true)[0]
        bound = 16.0 * math.pi * D / (R * R) * math.pi  # P <= pi*D slack
        static_err = hull_distance(true, adaptive_sample(pts, R).hull)
        stream_err = hull_distance(true, feed(AdaptiveHull(R), pts).hull())
        assert static_err <= bound + 1e-7
        assert stream_err <= bound + 1e-7

    @settings(max_examples=25, deadline=None)
    @given(streams)
    def test_sample_budgets(self, pts):
        assert len(adaptive_sample(pts, R).samples) <= 2 * R + 1
        assert len(feed(AdaptiveHull(R), pts).samples()) <= 2 * R + 1


class TestStreamOrderInsensitivity:
    @settings(max_examples=20, deadline=None)
    @given(streams, st.integers(min_value=0, max_value=9))
    def test_uniform_summary_order_invariant(self, pts, seed):
        """The uniform hull's final state is order-independent (exact
        argmax per direction) — the anchor the adaptive layer builds on."""
        shuffled = list(pts)
        random.Random(seed).shuffle(shuffled)
        a = feed(UniformHull(R), pts)
        b = feed(UniformHull(R), shuffled)
        for j in range(R):
            assert a.support(j) == pytest.approx(b.support(j), abs=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(streams, st.integers(min_value=0, max_value=9))
    def test_adaptive_guarantee_order_invariant(self, pts, seed):
        """The adaptive hull's *structure* is order-dependent, but the
        guarantee is not: any order meets the Corollary 5.2 bound."""
        shuffled = list(pts)
        random.Random(seed).shuffle(shuffled)
        h = feed(AdaptiveHull(R), shuffled)
        hull = h.hull()
        if not hull:
            return
        bound = 16.0 * math.pi * h.perimeter / (R * R)
        assert all(
            point_polygon_distance(hull, p) <= bound + 1e-7 for p in pts
        )


class TestMonotoneGrowth:
    @settings(max_examples=20, deadline=None)
    @given(streams)
    def test_support_is_monotone_in_time(self, pts):
        """Per-direction supports never decrease as the stream advances."""
        h = UniformHull(R)
        prev = [-math.inf] * R
        for p in pts:
            h.insert(p)
            for j in range(R):
                assert h.support(j) >= prev[j] - 1e-12
                prev[j] = h.support(j)

    @settings(max_examples=20, deadline=None)
    @given(streams)
    def test_diameter_estimate_near_monotone(self, pts):
        """Sample points can be dropped by unrefinement, so the sampled
        diameter is not strictly monotone — but the opposite-direction
        supports are, so it can never fall below cos(theta0/2) of its
        running maximum (the Lemma 3.1 projection argument)."""
        h = AdaptiveHull(R)
        running_max = 0.0
        for p in pts:
            h.insert(p)
            d = diameter(h.hull())[0]
            assert d >= running_max * math.cos(math.pi / R) - 1e-9
            running_max = max(running_max, d)

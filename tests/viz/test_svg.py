"""Tests for the SVG rendering layer."""

import os

import pytest

from repro.core import AdaptiveHull, UniformHull
from repro.streams import as_tuples, ellipse_stream
from repro.viz import SvgCanvas, render_summary


@pytest.fixture
def points():
    return list(as_tuples(ellipse_stream(600, rotation=0.1, seed=5)))


class TestSvgCanvas:
    def test_fit_required_before_drawing(self):
        c = SvgCanvas()
        with pytest.raises(ValueError):
            c.circle((0.0, 0.0))

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            SvgCanvas().fit([])

    def test_document_structure(self):
        c = SvgCanvas(width=200, height=100)
        c.fit([(0.0, 0.0), (1.0, 1.0)])
        c.circle((0.5, 0.5))
        svg = c.to_svg()
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert 'width="200"' in svg
        assert "<circle" in svg

    def test_polyline_and_polygon(self):
        c = SvgCanvas()
        c.fit([(0.0, 0.0), (2.0, 2.0)])
        c.polyline([(0.0, 0.0), (1.0, 1.0)], close=False)
        c.polyline([(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)], close=True)
        svg = c.to_svg()
        assert "<polyline" in svg
        assert "<polygon" in svg

    def test_polyline_too_short_skipped(self):
        c = SvgCanvas()
        c.fit([(0.0, 0.0), (1.0, 1.0)])
        c.polyline([(0.5, 0.5)])
        assert "<polyline" not in c.to_svg()

    def test_y_axis_flipped(self):
        c = SvgCanvas(width=100, height=100, margin=0)
        c.fit([(0.0, 0.0), (1.0, 1.0)])
        c.circle((0.0, 1.0))  # top-left in world -> small SVG y
        svg = c.to_svg()
        assert 'cy="0.00"' in svg

    def test_segment_and_text(self):
        c = SvgCanvas()
        c.fit([(0.0, 0.0), (1.0, 1.0)])
        c.segment((0.0, 0.0), (1.0, 1.0))
        c.text((0.5, 0.5), "label")
        svg = c.to_svg()
        assert "<line" in svg
        assert ">label</text>" in svg

    def test_save(self, tmp_path):
        c = SvgCanvas()
        c.fit([(0.0, 0.0), (1.0, 1.0)])
        path = tmp_path / "out.svg"
        c.save(str(path))
        assert path.read_text().startswith("<svg")


class TestRenderSummary:
    def test_adaptive_render(self, points):
        h = AdaptiveHull(16)
        for p in points:
            h.insert(p)
        svg = render_summary(h, points).to_svg()
        assert "<polygon" in svg  # uncertainty triangles + hull
        assert svg.count("<circle") > 10

    def test_uniform_render(self, points):
        h = UniformHull(16)
        for p in points:
            h.insert(p)
        svg = render_summary(h, points).to_svg()
        assert "<polygon" in svg

    def test_point_subsampling(self, points):
        h = AdaptiveHull(16)
        for p in points:
            h.insert(p)
        svg = render_summary(h, points, max_points=50).to_svg()
        # At most ~50 data dots plus the sample markers.
        assert svg.count("<circle") < 150


class TestFig10:
    def test_files_written(self, tmp_path):
        from repro.experiments import make_fig10

        a, u = make_fig10(str(tmp_path), n=800)
        assert os.path.exists(a) and os.path.exists(u)
        assert open(a).read().startswith("<svg")
        assert open(u).read().startswith("<svg")

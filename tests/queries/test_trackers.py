"""Tests for the multi-stream trackers (Section 6)."""

import math

import pytest

from repro.core import AdaptiveHull
from repro.queries import (
    ContainmentTracker,
    OverlapTracker,
    SeparationTracker,
)
from repro.streams import as_tuples, disk_stream, scale, translate


def factory():
    return lambda: AdaptiveHull(16)


def feed_disk(tracker, name, n=1500, seed=0, dx=0.0, dy=0.0, s=1.0):
    pts = translate(scale(disk_stream(n, seed=seed), s), dx, dy)
    for p in as_tuples(pts):
        tracker.insert(name, p)
    return tracker


class TestMultiStreamBasics:
    def test_streams_listed(self):
        t = SeparationTracker(factory())
        feed_disk(t, "A", n=50, seed=1)
        feed_disk(t, "B", n=50, seed=2)
        assert set(t.streams()) == {"A", "B"}

    def test_missing_stream_raises(self):
        t = SeparationTracker(factory())
        with pytest.raises(KeyError):
            t.summary("nope")

    def test_hull_empty_before_data(self):
        t = SeparationTracker(factory())
        assert t.hull("ghost") == []


class TestSeparationTracker:
    def test_distance_of_separated_disks(self):
        t = SeparationTracker(factory())
        feed_disk(t, "A", seed=1, dx=-3.0)
        feed_disk(t, "B", seed=2, dx=3.0)
        d = t.distance("A", "B")
        # True gap is ~4 (disks of radius ~1 at +-3); sample hulls are
        # inside, so the reported distance is slightly larger.
        assert 3.9 < d < 4.3
        assert t.separable("A", "B")

    def test_distance_requires_data(self):
        t = SeparationTracker(factory())
        feed_disk(t, "A", n=10, seed=1)
        with pytest.raises(ValueError):
            t.distance("A", "B")

    def test_overlapping_not_separable(self):
        t = SeparationTracker(factory())
        feed_disk(t, "A", seed=3, dx=-0.2)
        feed_disk(t, "B", seed=4, dx=0.2)
        assert not t.separable("A", "B")
        assert t.distance("A", "B") == 0.0
        assert t.certificate("A", "B") is None
        assert t.witness_overlap_point("A", "B") is not None

    def test_certificate_separates_hulls(self):
        from repro.geometry.vec import dot, perp

        t = SeparationTracker(factory())
        feed_disk(t, "A", seed=5, dx=-3.0)
        feed_disk(t, "B", seed=6, dx=3.0)
        point, direction = t.certificate("A", "B")
        n = perp(direction)
        c = dot(n, point)
        sides_a = {dot(n, v) - c > 0 for v in t.hull("A")}
        sides_b = {dot(n, v) - c > 0 for v in t.hull("B")}
        assert len(sides_a) == 1 and len(sides_b) == 1
        assert sides_a != sides_b

    def test_becomes_inseparable_as_streams_drift(self):
        """Streaming scenario: B drifts toward A until they collide."""
        t = SeparationTracker(factory())
        feed_disk(t, "A", seed=7, dx=-2.0)
        state = []
        for step in range(5):
            feed_disk(t, "B", n=300, seed=8 + step, dx=4.0 - step * 1.5)
            state.append(t.separable("A", "B"))
        assert state[0] and not state[-1]


class TestContainmentTracker:
    def test_contained_nested_disks(self):
        t = ContainmentTracker(factory())
        feed_disk(t, "inner", seed=9, s=0.4)
        feed_disk(t, "outer", seed=10, s=3.0)
        assert t.contained("inner", "outer")
        assert t.containment_margin("inner", "outer") > 0

    def test_not_contained_when_disjoint(self):
        t = ContainmentTracker(factory())
        feed_disk(t, "inner", seed=11, dx=10.0)
        feed_disk(t, "outer", seed=12)
        assert not t.contained("inner", "outer")
        assert t.containment_margin("inner", "outer") < 0

    def test_not_contained_partial_overlap(self):
        t = ContainmentTracker(factory())
        feed_disk(t, "inner", seed=13, dx=0.9)
        feed_disk(t, "outer", seed=14)
        assert not t.contained("inner", "outer")

    def test_empty_streams(self):
        t = ContainmentTracker(factory())
        assert not t.contained("a", "b")
        feed_disk(t, "a", n=10, seed=15)
        with pytest.raises(ValueError):
            t.containment_margin("a", "b")

    def test_surrounded_event_detection(self):
        """The paper's 'report when A becomes surrounded by B' query."""
        t = ContainmentTracker(factory())
        feed_disk(t, "A", seed=16, s=0.5)
        # B arrives in angular sectors; containment holds only once the
        # ring closes.
        import math

        states = []
        for k in range(6):
            for i in range(200):
                ang = (k + i / 200.0) * math.pi / 3.0 * 2.0
                # ring of radius 2 around the origin, sector by sector
                t.insert("B", (2.0 * math.cos(ang), 2.0 * math.sin(ang)))
            states.append(t.contained("A", "B"))
        assert not states[0]
        assert states[-1]


class TestOverlapTracker:
    def test_disjoint_zero(self):
        t = OverlapTracker(factory())
        feed_disk(t, "A", seed=17, dx=-5.0)
        feed_disk(t, "B", seed=18, dx=5.0)
        assert t.overlap_area("A", "B") == 0.0
        assert t.jaccard("A", "B") == 0.0
        assert t.overlap_polygon("A", "B") == []

    def test_lens_overlap_area(self):
        t = OverlapTracker(factory())
        feed_disk(t, "A", seed=19, dx=-0.5)
        feed_disk(t, "B", seed=20, dx=0.5)
        area = t.overlap_area("A", "B")
        # Two unit disks at distance 1: lens area = 2*pi/3 - sqrt(3)/2
        # ~ 1.228; sample hulls sit just inside.
        assert 1.0 < area < 1.3

    def test_jaccard_identical_streams(self):
        t = OverlapTracker(factory())
        feed_disk(t, "A", seed=21)
        feed_disk(t, "B", seed=21)
        assert t.jaccard("A", "B") > 0.95

    def test_jaccard_bounds(self):
        t = OverlapTracker(factory())
        feed_disk(t, "A", seed=22, dx=-0.3)
        feed_disk(t, "B", seed=23, dx=0.3)
        assert 0.0 <= t.jaccard("A", "B") <= 1.0

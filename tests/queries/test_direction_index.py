"""Tests for the O(log r) directional-extent index."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ExactHull
from repro.core import AdaptiveHull, UniformHull
from repro.geometry.vec import dot, unit
from repro.queries import DirectionalExtentIndex
from repro.streams import as_tuples, ellipse_stream


@pytest.fixture(scope="module")
def stream_points():
    return list(as_tuples(ellipse_stream(4000, rotation=0.3, seed=17)))


@pytest.fixture(scope="module")
def adaptive_index(stream_points):
    h = AdaptiveHull(32)
    for p in stream_points:
        h.insert(p)
    return h, DirectionalExtentIndex(h)


class TestConstruction:
    def test_empty_summary_raises(self):
        with pytest.raises(ValueError):
            DirectionalExtentIndex(AdaptiveHull(16))

    def test_size_matches_directions(self, adaptive_index):
        h, idx = adaptive_index
        # At most one entry per active direction (coincident extrema of
        # different directions keep separate keys).
        assert 1 <= len(idx) <= h.active_direction_count

    def test_uniform_summary(self, stream_points):
        h = UniformHull(16)
        for p in stream_points:
            h.insert(p)
        idx = DirectionalExtentIndex(h)
        assert len(idx) == 16

    def test_generic_fallback(self, stream_points):
        h = ExactHull()
        for p in stream_points:
            h.insert(p)
        idx = DirectionalExtentIndex(h)
        assert len(idx) == len(h.hull())

    def test_single_point_summary(self):
        h = AdaptiveHull(16)
        h.insert((2.0, 3.0))
        idx = DirectionalExtentIndex(h)
        assert idx.extreme_vertex(1.0) == (2.0, 3.0)
        assert idx.extent(0.0) == pytest.approx(0.0)


class TestSupportQueries:
    def test_support_never_exceeds_true(self, adaptive_index, stream_points):
        _, idx = adaptive_index
        for theta in [0.0, 0.7, 1.9, 3.1, 4.4, 5.8]:
            true_support = max(dot(p, unit(theta)) for p in stream_points)
            assert idx.support(theta) <= true_support + 1e-9

    def test_support_within_cos_gap(self, adaptive_index, stream_points):
        _, idx = adaptive_index
        gap = idx.max_gap()
        for theta in [0.0, 0.7, 1.9, 3.1]:
            true_support = max(dot(p, unit(theta)) for p in stream_points)
            # Lemma 3.1's argument: the nearest sampled direction's
            # extremum projects within cos(gap) of the true support
            # (allow additive slack for supports near zero).
            assert idx.support(theta) >= true_support * math.cos(gap) - 0.05

    def test_extent_matches_true_extent(self, adaptive_index, stream_points):
        _, idx = adaptive_index
        for theta in [0.0, 0.5, 1.2, 2.0]:
            vals = [dot(p, unit(theta)) for p in stream_points]
            true_ext = max(vals) - min(vals)
            got = idx.extent(theta)
            assert got <= true_ext + 1e-9
            assert got >= true_ext * math.cos(idx.max_gap()) - 0.05

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=-10.0, max_value=10.0))
    def test_extent_nonnegative_any_angle(self, theta):
        h = AdaptiveHull(16)
        for p in [(0.0, 0.0), (3.0, 0.0), (1.0, 2.0), (-1.0, -2.0)]:
            h.insert(p)
        idx = DirectionalExtentIndex(h)
        assert idx.extent(theta) >= -1e-12

    def test_extreme_vertex_is_sample(self, adaptive_index):
        h, idx = adaptive_index
        samples = set(h.samples())
        for theta in [0.1, 1.3, 2.9, 5.0]:
            assert idx.extreme_vertex(theta) in samples

    def test_max_gap_bounded_by_theta0(self, adaptive_index):
        h, idx = adaptive_index
        # Uniform directions alone guarantee gaps of at most theta0.
        assert idx.max_gap() <= 2.0 * math.pi / h.r + 1e-9


class TestStalenessRefresh:
    """Regression: the index used to snapshot the summary at construction
    and silently serve stale answers after the summary mutated; it now
    detects the summary's generation counter and rebuilds."""

    def test_insert_invalidates(self):
        h = AdaptiveHull(16)
        h.insert((1.0, 0.0))
        h.insert((0.0, 1.0))
        h.insert((-1.0, -1.0))
        idx = DirectionalExtentIndex(h)
        before = idx.support(0.0)
        h.insert((50.0, 0.0))  # new extreme point along +x
        assert idx.support(0.0) == pytest.approx(50.0)
        assert idx.support(0.0) > before

    def test_merge_invalidates(self):
        a, b = UniformHull(16), UniformHull(16)
        a.insert((1.0, 0.0))
        a.insert((-1.0, 1.0))
        b.insert((0.0, 30.0))
        idx = DirectionalExtentIndex(a)
        assert idx.support(math.pi / 2.0) < 2.0
        a.merge(b)
        assert idx.support(math.pi / 2.0) == pytest.approx(30.0)

    def test_load_state_invalidates(self, stream_points):
        big = AdaptiveHull(16)
        for p in stream_points:
            big.insert(p)
        h = AdaptiveHull(16)
        h.insert((0.1, 0.1))
        idx = DirectionalExtentIndex(h)
        stale_extent = idx.extent(0.0)
        h.load_state(big.state_dict())
        assert idx.extent(0.0) > stale_extent
        assert idx.extent(0.0) == pytest.approx(
            DirectionalExtentIndex(big).extent(0.0)
        )

    def test_generation_counts_mutations_only(self):
        h = UniformHull(8)
        assert h.generation == 0
        for p in [(2.0, 0.0), (-2.0, 2.0), (-2.0, -2.0)]:
            h.insert(p)
        g1 = h.generation
        assert g1 > 0
        h.insert((0.0, 0.0))  # contained: discarded, no state change
        assert h.generation == g1

    def test_every_scheme_has_generation(self, small_disk_points):
        from repro.streams.io import scheme_registry

        kwargs = {
            "ExactHull": {},
            "PartiallyAdaptiveHull": {"r": 16, "train_size": 50},
        }
        for name, cls in scheme_registry().items():
            if name == "WindowedHullSummary":
                continue  # windowed wrapper needs a scheme argument
            s = cls(**kwargs.get(name, {"r": 16}))
            assert s.generation == 0
            s.insert_many(small_disk_points[:200])
            assert s.generation > 0

"""Tests for the O(log r) directional-extent index."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ExactHull
from repro.core import AdaptiveHull, UniformHull
from repro.geometry.vec import dot, unit
from repro.queries import DirectionalExtentIndex
from repro.streams import as_tuples, ellipse_stream


@pytest.fixture(scope="module")
def stream_points():
    return list(as_tuples(ellipse_stream(4000, rotation=0.3, seed=17)))


@pytest.fixture(scope="module")
def adaptive_index(stream_points):
    h = AdaptiveHull(32)
    for p in stream_points:
        h.insert(p)
    return h, DirectionalExtentIndex(h)


class TestConstruction:
    def test_empty_summary_raises(self):
        with pytest.raises(ValueError):
            DirectionalExtentIndex(AdaptiveHull(16))

    def test_size_matches_directions(self, adaptive_index):
        h, idx = adaptive_index
        # At most one entry per active direction (coincident extrema of
        # different directions keep separate keys).
        assert 1 <= len(idx) <= h.active_direction_count

    def test_uniform_summary(self, stream_points):
        h = UniformHull(16)
        for p in stream_points:
            h.insert(p)
        idx = DirectionalExtentIndex(h)
        assert len(idx) == 16

    def test_generic_fallback(self, stream_points):
        h = ExactHull()
        for p in stream_points:
            h.insert(p)
        idx = DirectionalExtentIndex(h)
        assert len(idx) == len(h.hull())

    def test_single_point_summary(self):
        h = AdaptiveHull(16)
        h.insert((2.0, 3.0))
        idx = DirectionalExtentIndex(h)
        assert idx.extreme_vertex(1.0) == (2.0, 3.0)
        assert idx.extent(0.0) == pytest.approx(0.0)


class TestSupportQueries:
    def test_support_never_exceeds_true(self, adaptive_index, stream_points):
        _, idx = adaptive_index
        for theta in [0.0, 0.7, 1.9, 3.1, 4.4, 5.8]:
            true_support = max(dot(p, unit(theta)) for p in stream_points)
            assert idx.support(theta) <= true_support + 1e-9

    def test_support_within_cos_gap(self, adaptive_index, stream_points):
        _, idx = adaptive_index
        gap = idx.max_gap()
        for theta in [0.0, 0.7, 1.9, 3.1]:
            true_support = max(dot(p, unit(theta)) for p in stream_points)
            # Lemma 3.1's argument: the nearest sampled direction's
            # extremum projects within cos(gap) of the true support
            # (allow additive slack for supports near zero).
            assert idx.support(theta) >= true_support * math.cos(gap) - 0.05

    def test_extent_matches_true_extent(self, adaptive_index, stream_points):
        _, idx = adaptive_index
        for theta in [0.0, 0.5, 1.2, 2.0]:
            vals = [dot(p, unit(theta)) for p in stream_points]
            true_ext = max(vals) - min(vals)
            got = idx.extent(theta)
            assert got <= true_ext + 1e-9
            assert got >= true_ext * math.cos(idx.max_gap()) - 0.05

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=-10.0, max_value=10.0))
    def test_extent_nonnegative_any_angle(self, theta):
        h = AdaptiveHull(16)
        for p in [(0.0, 0.0), (3.0, 0.0), (1.0, 2.0), (-1.0, -2.0)]:
            h.insert(p)
        idx = DirectionalExtentIndex(h)
        assert idx.extent(theta) >= -1e-12

    def test_extreme_vertex_is_sample(self, adaptive_index):
        h, idx = adaptive_index
        samples = set(h.samples())
        for theta in [0.1, 1.3, 2.9, 5.0]:
            assert idx.extreme_vertex(theta) in samples

    def test_max_gap_bounded_by_theta0(self, adaptive_index):
        h, idx = adaptive_index
        # Uniform directions alone guarantee gaps of at most theta0.
        assert idx.max_gap() <= 2.0 * math.pi / h.r + 1e-9

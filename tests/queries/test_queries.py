"""Tests for the single-stream extremal queries (Section 6)."""

import math

import pytest

from repro.core import AdaptiveHull, FixedSizeAdaptiveHull
from repro.baselines import ExactHull
from repro.geometry import convex_hull
from repro.geometry.calipers import diameter as poly_diameter
from repro.geometry.calipers import width as poly_width
from repro.geometry.vec import dist, unit
from repro.queries import (
    diameter,
    diameter_witness,
    enclosing_circle,
    extent,
    extent_in_angle,
    farthest_neighbor,
    width,
)
from repro.streams import as_tuples, ellipse_stream


@pytest.fixture
def summary(small_ellipse_points):
    h = AdaptiveHull(32)
    for p in small_ellipse_points:
        h.insert(p)
    return h


@pytest.fixture
def true_hull(small_ellipse_points):
    return convex_hull(small_ellipse_points)


class TestDiameter:
    def test_lower_bound_and_accuracy(self, summary, true_hull):
        true_d = poly_diameter(true_hull)[0]
        approx = diameter(summary)
        assert approx <= true_d + 1e-9
        # Additive error O(D/r^2) with generous constant.
        assert approx >= true_d - 64.0 * true_d / (32 * 32)

    def test_witness_is_sample_pair(self, summary):
        d, (a, b) = diameter_witness(summary)
        assert dist(a, b) == pytest.approx(d)
        samples = set(summary.samples())
        assert a in samples and b in samples

    def test_on_exact_summary(self, small_ellipse_points, true_hull):
        s = ExactHull()
        for p in small_ellipse_points:
            s.insert(p)
        assert diameter(s) == pytest.approx(poly_diameter(true_hull)[0])


class TestWidthExtent:
    def test_width_lower_bounds_true(self, summary, true_hull):
        assert width(summary) <= poly_width(true_hull) + 1e-9

    def test_width_additive_error(self, summary, true_hull):
        true_w = poly_width(true_hull)
        true_d = poly_diameter(true_hull)[0]
        # O(D/r^2) additive error bound (generous constant).
        assert width(summary) >= true_w - 64.0 * true_d / (32 * 32)

    def test_extent_known_direction(self, unit_square):
        s = ExactHull()
        for p in unit_square:
            s.insert(p)
        assert extent(s, (1.0, 0.0)) == pytest.approx(1.0)
        assert extent_in_angle(s, math.pi / 4) == pytest.approx(math.sqrt(2.0))

    def test_extent_scales_with_norm(self, summary):
        e1 = extent(summary, (1.0, 0.0))
        e2 = extent(summary, (2.0, 0.0))
        assert e2 == pytest.approx(2.0 * e1)

    def test_extent_never_exceeds_true(self, summary, small_ellipse_points):
        from repro.geometry.vec import dot

        for theta in [0.0, 0.4, 1.1, 2.3]:
            d = unit(theta)
            vals = [dot(p, d) for p in small_ellipse_points]
            true_ext = max(vals) - min(vals)
            assert extent(summary, d) <= true_ext + 1e-9


class TestFarthestNeighbor:
    def test_matches_true_farthest(self, summary, small_ellipse_points):
        q = (100.0, 50.0)
        d, witness = farthest_neighbor(summary, q)
        true_d = max(dist(q, p) for p in small_ellipse_points)
        assert d <= true_d + 1e-9
        assert d >= true_d * 0.99
        assert witness in set(summary.samples())


class TestEnclosingCircle:
    def test_encloses_all_samples(self, summary):
        (cx, cy), rad = enclosing_circle(summary)
        for v in summary.hull():
            assert dist((cx, cy), v) <= rad * (1 + 1e-7) + 1e-9

    def test_radius_close_to_true(self, summary, small_ellipse_points):
        from repro.geometry import smallest_enclosing_circle

        _, true_r = smallest_enclosing_circle(small_ellipse_points)
        _, approx_r = enclosing_circle(summary)
        assert approx_r <= true_r + 1e-7
        assert approx_r >= true_r * 0.98

    def test_empty_summary_raises(self):
        with pytest.raises(ValueError):
            enclosing_circle(AdaptiveHull(16))


class TestQueriesAcrossSchemes:
    """Query layer is scheme-agnostic: it must run on any HullSummary."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: AdaptiveHull(16),
            lambda: FixedSizeAdaptiveHull(16),
            lambda: ExactHull(),
        ],
    )
    def test_all_queries_run(self, factory, small_disk_points):
        s = factory()
        for p in small_disk_points:
            s.insert(p)
        assert diameter(s) > 0
        assert width(s) > 0
        assert extent(s, (1.0, 0.0)) > 0
        assert farthest_neighbor(s, (0.0, 0.0))[0] > 0
        assert enclosing_circle(s)[1] > 0

"""Serving with durability: WAL behind the coalescer, resize over TCP.

The serve-tier durability contract: ``durability=`` on the service
attaches the WAL to the *engine thread* (write-ahead of each apply, so
the log captures exactly the applied order even when coalescing
re-sorts arrivals), a recovered engine is served with
``durability=None`` (double-attach is refused loudly), and the ``resize``
verb carries the live ring resize through the protocol.
"""

import asyncio

import numpy as np
import pytest

from repro.durable import DurabilityConfig, WalError, recover_engine
from repro.engine import StreamEngine
from repro.serve import AsyncHullClient, AsyncHullService, HullServer
from repro.serve.client import RemoteEngineError
from repro.shard import ShardedEngine, SummarySpec

SPEC = SummarySpec("AdaptiveHull", {"r": 8})
KEYS = [f"svc-{i}" for i in range(5)]


def workload(n=400, seed=13):
    rng = np.random.default_rng(seed)
    keys = np.array([KEYS[i] for i in rng.integers(0, len(KEYS), n)])
    return keys, rng.normal(0.0, 10.0, (n, 2))


class TestServiceDurability:
    def test_served_stream_recovers_bit_identically(self, tmp_path):
        keys, pts = workload()

        async def run():
            engine = StreamEngine(SPEC.build)
            async with AsyncHullService(
                engine,
                own_engine=True,
                durability=DurabilityConfig(tmp_path / "wal"),
            ) as service:
                for lo in range(0, len(keys), 80):
                    await service.ingest_arrays(
                        keys[lo:lo + 80], pts[lo:lo + 80]
                    )
                await service.flush()
                assert service.service_stats()["wal_seq"] > 0
                return engine.snapshot_state()

        expect = asyncio.run(run())
        rec = recover_engine(tmp_path / "wal")
        try:
            assert rec.snapshot_state() == expect
        finally:
            rec.close()

    def test_wal_seq_is_none_without_durability(self):
        async def run():
            engine = StreamEngine(SPEC.build)
            async with AsyncHullService(engine, own_engine=True) as service:
                await service.ingest_arrays(*workload(50))
                await service.flush()
                return service.service_stats()["wal_seq"]

        assert asyncio.run(run()) is None

    def test_serving_a_recovered_engine_refuses_double_attach(
        self, tmp_path
    ):
        keys, pts = workload(100)
        eng = StreamEngine(
            SPEC.build, durability=DurabilityConfig(tmp_path / "wal")
        )
        eng.ingest_arrays(keys, pts)
        eng.close()

        # Recovered WITH durability: the engine already holds the
        # writer, a second attach must fail.
        rec = recover_engine(
            tmp_path / "wal", durability=DurabilityConfig(tmp_path / "wal")
        )
        with pytest.raises(WalError):
            AsyncHullService(
                rec, durability=DurabilityConfig(tmp_path / "wal")
            )
        rec.close()

        # Recovered WITHOUT durability: attaching fresh over a
        # non-empty log is refused too (it would re-log the replay).
        rec = recover_engine(tmp_path / "wal")
        with pytest.raises(WalError, match="already holds"):
            AsyncHullService(
                rec, durability=DurabilityConfig(tmp_path / "wal")
            )
        rec.close()

    def test_served_recovered_engine_continues(self, tmp_path):
        keys, pts = workload()
        half = len(keys) // 2
        eng = StreamEngine(
            SPEC.build, durability=DurabilityConfig(tmp_path / "wal")
        )
        eng.ingest_arrays(keys[:half], pts[:half])
        eng.close()

        async def run():
            # The documented pattern: recover_engine re-attaches the
            # log, the service gets durability=None.
            engine = recover_engine(
                tmp_path / "wal",
                durability=DurabilityConfig(tmp_path / "wal"),
            )
            async with AsyncHullService(
                engine, own_engine=True
            ) as service:
                await service.ingest_arrays(keys[half:], pts[half:])
                await service.flush()
                return engine.snapshot_state()

        expect = asyncio.run(run())
        with StreamEngine(SPEC.build) as ref:
            # Same batch boundaries: counters are part of the state.
            ref.ingest_arrays(keys[:half], pts[:half])
            ref.ingest_arrays(keys[half:], pts[half:])
            direct = ref.snapshot_state()
        assert expect == direct

        rec = recover_engine(tmp_path / "wal")
        try:
            assert rec.snapshot_state() == direct
        finally:
            rec.close()


class TestResizeVerb:
    def test_resize_over_tcp(self):
        keys, pts = workload()

        async def run():
            engine = ShardedEngine(SPEC, shards=2)
            async with AsyncHullService(
                engine, own_engine=True
            ) as service:
                async with HullServer(service) as server:
                    client = await AsyncHullClient.connect(
                        port=server.port
                    )
                    try:
                        await client.ingest(
                            [
                                [str(k), float(x), float(y)]
                                for k, (x, y) in zip(keys, pts)
                            ],
                            sync=True,
                        )
                        event = await client.resize(3)
                        hulls = {
                            k: await client.hull(k) for k in KEYS
                        }
                        stats = await client.stats()
                        return event, hulls, stats
                    finally:
                        await client.aclose()

        event, hulls, stats = asyncio.run(run())
        assert event["from"] == 2 and event["to"] == 3
        assert event["total_keys"] == len(KEYS)
        assert stats["shards"] == 3
        with ShardedEngine(SPEC, shards=3) as ref:
            keys_, pts_ = workload()
            ref.ingest_arrays(keys_, pts_)
            for k in KEYS:
                assert hulls[k] == ref.hull(k)

    def test_resize_requires_sharded_engine(self):
        async def run():
            engine = StreamEngine(SPEC.build)
            async with AsyncHullService(
                engine, own_engine=True
            ) as service:
                async with HullServer(service) as server:
                    client = await AsyncHullClient.connect(
                        port=server.port
                    )
                    try:
                        with pytest.raises(
                            RemoteEngineError, match="sharded"
                        ):
                            await client.resize(3)
                    finally:
                        await client.aclose()

        asyncio.run(run())

"""Bounded-lateness event time through the serving layer.

The acceptance criterion end to end: a stream shuffled within
``max_delay`` and pushed through the async facade or the TCP
client/server round trip yields **bit-identical** per-key and global
results to the sorted stream fed directly into a synchronous engine —
for both engine tiers — and beyond-lateness records are counted in the
service/engine stats (visible over TCP), never silently applied.  The
facade's coalescing queue additionally pre-sorts bounded-lateness runs
before the engine sees them.
"""

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AdaptiveHull
from repro.engine import StreamEngine
from repro.serve import AsyncHullClient, AsyncHullService, HullServer
from repro.shard import ShardedEngine, SummarySpec
from repro.streams import bounded_shuffle
from repro.streams.io import summary_from_state
from repro.window import WindowConfig

R = 8
KEYS = [f"late-{i}" for i in range(5)]
MAX_DELAY = 2.0


def _window(horizon=10.0):
    return WindowConfig(horizon=horizon, max_delay=MAX_DELAY)


def _engine(tier):
    if tier == "stream":
        return StreamEngine(lambda: AdaptiveHull(R), window=_window())
    return ShardedEngine(
        SummarySpec("AdaptiveHull", {"r": R}), shards=2, window=_window()
    )


def _workload(n, seed):
    rng = np.random.default_rng(seed)
    pts = rng.normal(0.0, 2.0, (n, 2))
    ts = np.sort(rng.uniform(0.0, 30.0, n)) + np.arange(n) * 1e-9
    keys = np.array([KEYS[i % len(KEYS)] for i in range(n)])
    return keys, pts, ts


def _reference(keys, pts, ts, final, tier="stream"):
    """Sorted-stream answers on the same tier (global reductions are
    only bit-comparable within one tier: a multi-shard ring tree-merges
    in its own deterministic order)."""
    ref = _engine(tier)
    with ref:
        ref.ingest_arrays(keys, pts, ts=ts)
        ref.advance_time(final)
        return (
            {k: ref.hull(k) for k in KEYS},
            ref.merged_hull(),
            ref.diameter(),
            ref.width(),
        )


@pytest.mark.parametrize("tier", ["stream", "sharded"])
def test_facade_shuffled_parity_and_presort(tier):
    n, batch = 600, 120
    keys, pts, ts = _workload(n, 41)
    order = bounded_shuffle(ts, MAX_DELAY, seed=42)
    final = float(ts[-1]) + 2 * MAX_DELAY
    hulls, merged, diam, width = _reference(keys, pts, ts, final, tier)

    async def run():
        engine = _engine(tier)
        async with AsyncHullService(engine, own_engine=True) as service:
            for s in range(0, n, batch):
                sl = order[s : s + batch]
                await service.ingest_arrays(keys[sl], pts[sl], ts=ts[sl])
            await service.flush()
            await service.advance_time(final)
            got = {k: await service.hull(k) for k in KEYS}
            stats = await service.stats()
            return (
                got,
                await service.merged_hull(),
                await service.diameter(),
                await service.width(),
                stats,
                await service.late_drops(),
            )

    got, got_merged, got_diam, got_width, stats, drops = asyncio.run(run())
    assert got == hulls
    assert got_merged == merged
    assert got_diam == diam and got_width == width
    assert stats.late_dropped == 0 and stats.buffered == 0
    assert drops == {}


@pytest.mark.parametrize("tier", ["stream", "sharded"])
def test_tcp_shuffled_parity_and_late_accounting(tier):
    n, batch = 500, 100
    keys, pts, ts = _workload(n, 51)
    order = bounded_shuffle(ts, MAX_DELAY, seed=52)
    final = float(ts[-1]) + 2 * MAX_DELAY
    hulls, merged, _, _ = _reference(keys, pts, ts, final, tier)

    async def run():
        engine = _engine(tier)
        async with AsyncHullService(engine, own_engine=True) as service:
            async with HullServer(service) as server:
                client = await AsyncHullClient.connect(port=server.port)
                try:
                    for s in range(0, n, batch):
                        sl = order[s : s + batch]
                        await client.ingest(
                            [
                                (
                                    str(keys[i]),
                                    float(pts[i, 0]),
                                    float(pts[i, 1]),
                                    float(ts[i]),
                                )
                                for i in sl
                            ],
                            sync=True,
                        )
                    await client.flush()
                    await client.advance_time(final)
                    got = {k: await client.hull(k) for k in KEYS}
                    got_merged = await client.merged_hull()
                    # A far-late record: counted (engine stats + TCP
                    # late_drops + service_stats), never applied.
                    await client.ingest(
                        [("straggler", 1e6, 1e6, 0.0)], sync=True
                    )
                    stats = await client.stats()
                    drops = await client.late_drops()
                    sstats = await client.service_stats()
                    after = {k: await client.hull(k) for k in KEYS}
                    return got, got_merged, stats, drops, sstats, after
                finally:
                    await client.aclose()

    got, got_merged, stats, drops, sstats, after = asyncio.run(run())
    assert got == hulls
    assert got_merged == merged
    assert stats["late_dropped"] == 1
    assert drops == {"straggler": 1}
    assert sstats["late_dropped"] == 1
    assert after == hulls  # the straggler changed nothing


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000), batch=st.integers(20, 200))
def test_facade_parity_property(seed, batch):
    # Hypothesis sweep on the in-process tier (cheap enough to run
    # many shapes): facade == sorted direct, bit-identical.
    n = 300
    keys, pts, ts = _workload(n, seed)
    order = bounded_shuffle(ts, MAX_DELAY, seed=seed + 1)
    final = float(ts[-1]) + 2 * MAX_DELAY
    hulls, merged, _, _ = _reference(keys, pts, ts, final)

    async def run():
        engine = _engine("stream")
        async with AsyncHullService(engine, own_engine=True) as service:
            for s in range(0, n, batch):
                sl = order[s : s + batch]
                await service.ingest_arrays(keys[sl], pts[sl], ts=ts[sl])
            await service.flush()
            await service.advance_time(final)
            return (
                {k: await service.hull(k) for k in KEYS},
                await service.merged_hull(),
            )

    got, got_merged = asyncio.run(run())
    assert got == hulls and got_merged == merged


def test_summary_state_fetch_over_tcp():
    keys, pts, ts = _workload(200, 61)
    final = float(ts[-1]) + 2 * MAX_DELAY

    async def run():
        engine = _engine("stream")
        async with AsyncHullService(engine, own_engine=True) as service:
            async with HullServer(service) as server:
                client = await AsyncHullClient.connect(port=server.port)
                try:
                    await client.ingest(
                        [
                            (
                                str(keys[i]),
                                float(pts[i, 0]),
                                float(pts[i, 1]),
                                float(ts[i]),
                            )
                            for i in range(len(ts))
                        ],
                        sync=True,
                    )
                    await client.advance_time(final)
                    doc = await client.summary_state(KEYS[0])
                    missing = await client.summary_state("never-fed")
                    server_hull = await client.hull(KEYS[0])
                    return doc, missing, server_hull, engine.summary_factory
                finally:
                    await client.aclose()

    doc, missing, server_hull, factory = asyncio.run(run())
    assert missing is None
    rebuilt = summary_from_state(doc, factory=factory)
    assert rebuilt.hull() == server_hull  # full state, bit-exact

"""AsyncHullService: parity, coalescing, push, ticker, drain.

The acceptance property: a stream ingested through the async facade
yields **bit-identical** per-key and global hull/diameter/width results
to the same stream fed synchronously into the underlying engine — for
both engine tiers, windowed and unwindowed.
"""

import asyncio

import numpy as np
import pytest

from repro.core import AdaptiveHull
from repro.engine import StreamEngine
from repro.serve import AsyncHullService
from repro.shard import ShardedEngine, SummarySpec
from repro.streams import drifting_clusters_stream
from repro.window import WindowConfig

R = 8
N = 900
BATCH = 150
KEYS = [f"svc-{i}" for i in range(5)]

WINDOWS = {
    "none": None,
    "count": WindowConfig(last_n=200),
    "timed": WindowConfig(horizon=3.0),
}


def make_engine(tier, window):
    if tier == "stream":
        return StreamEngine(lambda: AdaptiveHull(R), window=window)
    return ShardedEngine(
        SummarySpec("AdaptiveHull", {"r": R}), shards=2, window=window
    )


def workload():
    pts = drifting_clusters_stream(N, n_clusters=2, drift=0.1, seed=3)
    keys = np.array([KEYS[i % len(KEYS)] for i in range(N)])
    ts = np.arange(N, dtype=np.float64) / 90.0
    return keys, pts, ts


def batches(timed):
    keys, pts, ts = workload()
    for s in range(0, N, BATCH):
        yield (
            keys[s : s + BATCH],
            pts[s : s + BATCH],
            ts[s : s + BATCH] if timed else None,
        )


@pytest.mark.parametrize("tier", ["stream", "sharded"])
@pytest.mark.parametrize("mode", list(WINDOWS))
def test_async_parity_with_sync_engine(tier, mode):
    window = WINDOWS[mode]
    timed = window is not None and window.timed

    with make_engine(tier, window) as sync_engine:
        for kb, pb, tb in batches(timed):
            sync_engine.ingest_arrays(kb, pb, ts=tb)
        expected = {
            "keys": sorted(sync_engine.keys()),
            "per_key": {k: sync_engine.hull(k) for k in sync_engine.keys()},
            "merged": sync_engine.merged_hull(),
            "diameter": sync_engine.diameter(),
            "width": sync_engine.width(),
            "points": sync_engine.stats().points_ingested,
        }

    async def run():
        engine = make_engine(tier, window)
        async with AsyncHullService(engine, own_engine=True) as service:
            for kb, pb, tb in batches(timed):
                await service.ingest_arrays(kb, pb, ts=tb)
            await service.flush()
            got = {
                "keys": sorted(await service.keys()),
                "per_key": {
                    k: await service.hull(k) for k in await service.keys()
                },
                "merged": await service.merged_hull(),
                "diameter": await service.diameter(),
                "width": await service.width(),
                "points": (await service.stats()).points_ingested,
            }
            assert service.service_stats()["ingest_errors"] == 0
            return got

    got = asyncio.run(run())
    assert got == expected  # bit-identical, coalescing included


def test_coalescing_preserves_results_and_batches_fewer():
    keys, pts, _ = workload()
    with StreamEngine(lambda: AdaptiveHull(R)) as direct:
        for s in range(0, N, BATCH):
            direct.ingest_arrays(keys[s : s + BATCH], pts[s : s + BATCH])
        direct_hull = direct.merged_hull()
        direct_batches = direct.stats().batches_ingested

    async def run():
        engine = StreamEngine(lambda: AdaptiveHull(R))
        service = AsyncHullService(engine, queue_size=N // BATCH + 1)
        # Enqueue everything BEFORE starting the drain task: the first
        # drain sees the whole backlog and must coalesce it.
        await service.start()
        service._drain_task.cancel()
        try:
            await service._drain_task
        except asyncio.CancelledError:
            pass
        for s in range(0, N, BATCH):
            await service.ingest_arrays(
                keys[s : s + BATCH], pts[s : s + BATCH]
            )
        service._drain_task = asyncio.ensure_future(service._drain_loop())
        await service.flush()
        stats = service.service_stats()
        merged = engine.merged_hull()
        engine_batches = engine.stats().batches_ingested
        await service.aclose()
        return merged, engine_batches, stats

    merged, engine_batches, stats = asyncio.run(run())
    assert merged == direct_hull
    assert stats["coalesced_batches"] == N // BATCH - 1
    assert engine_batches == 1 < direct_batches


def test_backpressure_queue_is_bounded():
    async def run():
        engine = StreamEngine(lambda: AdaptiveHull(R))
        async with AsyncHullService(engine, queue_size=2) as service:
            assert service._queue.maxsize == 2
            # put suspends once the queue is full; feeding through
            # normally still lands everything.
            for s in range(0, N, BATCH):
                keys, pts, _ = workload()
                await service.ingest_arrays(
                    keys[s : s + BATCH], pts[s : s + BATCH]
                )
            await service.flush()
            return (await service.stats()).points_ingested

    assert asyncio.run(run()) == N


def test_producer_side_validation_raises_synchronously():
    async def run():
        engine = StreamEngine(lambda: AdaptiveHull(R))
        async with AsyncHullService(engine) as service:
            with pytest.raises(ValueError):
                await service.ingest_arrays(["a"], [[float("nan"), 0.0]])
            with pytest.raises(ValueError):
                await service.ingest_arrays(["a"], [[0.0, 0.0]], ts=[1.0])
            with pytest.raises(ValueError):
                await service.ingest([("a", 0.0, 0.0, 1.0)])
            assert service.service_stats()["enqueued_batches"] == 0

    asyncio.run(run())


def test_drain_time_rejection_counted_not_fatal():
    async def run():
        engine = StreamEngine(
            lambda: AdaptiveHull(R), window=WindowConfig(horizon=5.0)
        )
        async with AsyncHullService(engine) as service:
            await service.ingest([("a", 1.0, 1.0, 5.0)])
            await service.flush()
            # Stale timestamp: valid shape, rejected by the engine.
            await service.ingest([("a", 2.0, 2.0, 1.0)])
            await service.flush()
            stats = service.service_stats()
            assert stats["ingest_errors"] == 1
            assert "non-decreasing" in stats["last_error"]
            # The service keeps serving.
            await service.ingest([("a", 3.0, 3.0, 6.0)])
            await service.flush()
            return (await service.stats()).points_ingested

    assert asyncio.run(run()) == 2


def test_coalescing_never_crosses_ts_presence_boundary():
    """On a count-windowed engine a timestamped and an untimestamped
    batch may share the queue; coalescing must not drop (or fabricate)
    the timestamps (regression: mixed runs once collapsed to ts=None,
    silently accepting later stale timestamps)."""

    async def run():
        engine = StreamEngine(
            lambda: AdaptiveHull(R), window=WindowConfig(last_n=50)
        )
        service = AsyncHullService(engine, queue_size=8)
        await service.start()
        service._drain_task.cancel()
        try:
            await service._drain_task
        except asyncio.CancelledError:
            pass
        await service.ingest_arrays(["a", "a"], [[1.0, 1.0], [2.0, 2.0]],
                                    ts=[100.0, 101.0])
        await service.ingest_arrays(["b"], [[3.0, 3.0]])
        service._drain_task = asyncio.ensure_future(service._drain_loop())
        await service.flush()
        assert service.service_stats()["ingest_errors"] == 0
        assert engine.get("a").last_ts == 101.0  # ts survived the mix
        # One-by-one semantics preserved: a stale ts is still rejected.
        await service.ingest_arrays(["a"], [[4.0, 4.0]], ts=[50.0])
        await service.flush()
        assert service.service_stats()["ingest_errors"] == 1
        await service.aclose()

    asyncio.run(run())


def test_coalesced_rejection_replays_constituent_batches():
    """When a merged run is rejected, the drain replays the queued
    batches one by one, so a valid batch coalesced with a bad one is
    never lost (regression: the whole merged run was rejected
    atomically, silently dropping accepted data)."""

    async def run():
        engine = StreamEngine(
            lambda: AdaptiveHull(R), window=WindowConfig(horizon=100.0)
        )
        service = AsyncHullService(engine, queue_size=8)
        await service.start()
        service._drain_task.cancel()
        try:
            await service._drain_task
        except asyncio.CancelledError:
            pass
        # Valid batch A (ts up to 20), then batch B whose ts rewinds:
        # one-by-one semantics apply A and reject only B.
        await service.ingest_arrays(["k", "k"], [[1.0, 1.0], [2.0, 2.0]],
                                    ts=[10.0, 20.0])
        await service.ingest_arrays(["k"], [[3.0, 3.0]], ts=[15.0])
        await service.ingest_arrays(["k"], [[4.0, 4.0]], ts=[25.0])
        service._drain_task = asyncio.ensure_future(service._drain_loop())
        await service.flush()
        stats = service.service_stats()
        assert stats["ingest_errors"] == 1  # only the rewinding batch
        assert (await service.stats()).points_ingested == 3
        assert engine.get("k").last_ts == 25.0
        await service.aclose()

    asyncio.run(run())


def test_sync_ingest_attributes_rejection_to_its_own_batch():
    """sync=True re-raises exactly this batch's rejection; a concurrent
    valid sync batch is unaffected (regression: the server once
    reported a shared error-counter delta, bleeding other producers'
    failures into innocent replies)."""

    async def run():
        engine = StreamEngine(
            lambda: AdaptiveHull(R), window=WindowConfig(horizon=100.0)
        )
        async with AsyncHullService(engine) as service:
            await service.ingest([("k", 1.0, 1.0, 20.0)], sync=True)
            bad = asyncio.ensure_future(
                service.ingest([("k", 2.0, 2.0, 10.0)], sync=True)
            )
            good = asyncio.ensure_future(
                service.ingest([("k", 3.0, 3.0, 30.0)], sync=True)
            )
            with pytest.raises(ValueError, match="non-decreasing"):
                await bad
            assert await good == 1  # the innocent producer succeeds
            assert (await service.stats()).points_ingested == 2
            assert service.service_stats()["ingest_errors"] == 1

    asyncio.run(run())


def test_subscription_overflow_merges_into_tail_in_order():
    """A slow consumer sees notifications in dispatch order, with
    overflow merged into the newest pending set (regression: the merge
    once popped the queue head, reordering delivery)."""

    async def run():
        engine = StreamEngine(lambda: AdaptiveHull(R))
        async with AsyncHullService(engine) as service:
            sub = await service.subscribe(maxsize=2)
            sub._push({"a"})
            sub._push({"b"})
            sub._push({"c"})  # overflow: merges into {"b"}
            assert sub.coalesced == 1
            assert await sub.get() == {"a"}
            assert await sub.get() == {"b", "c"}
            # After draining, normal delivery resumes.
            sub._push({"d"})
            assert await sub.get() == {"d"}

    asyncio.run(run())


def test_standing_query_push_and_expiry():
    """A spike is pushed to the subscriber, then its expiry (driven by
    advance_time with no new data) is pushed too."""

    async def run():
        engine = StreamEngine(
            lambda: AdaptiveHull(R), window=WindowConfig(horizon=1.0)
        )
        async with AsyncHullService(engine) as service:
            sub = await service.subscribe()
            await service.ingest([("probe", 400.0, 400.0, 0.0)])
            await service.flush()
            touched = await asyncio.wait_for(sub.get(), 5)
            assert touched == {"probe"}
            # Ageing out with no new data also notifies.
            expired = await service.advance_time(10.0)
            assert expired >= 1
            touched = await asyncio.wait_for(sub.get(), 5)
            assert touched == {"probe"}
            assert (await service.hull("probe")) == []
            await sub.cancel()
            await service.ingest([("probe", 1.0, 1.0, 11.0)])
            await service.flush()
            assert sub._queue.empty()

    asyncio.run(run())


def test_ticker_drives_advance_time():
    async def run():
        engine = StreamEngine(
            lambda: AdaptiveHull(R), window=WindowConfig(horizon=1.0)
        )
        fake_now = [100.0]
        service = AsyncHullService(
            engine, tick_interval=0.01, clock=lambda: fake_now[0]
        )
        async with service:
            await service.ingest([("t", 1.0, 1.0, 0.5)])
            await service.flush()
            fake_now[0] = 200.0  # everything is now stale
            for _ in range(200):
                await asyncio.sleep(0.01)
                if (await service.stats()).bucket_expiries:
                    break
            stats = await service.stats()
            assert stats.bucket_expiries >= 1
            assert service.service_stats()["ticks"] >= 1

    asyncio.run(run())


def test_ticker_requires_timed_window_and_clock():
    engine = StreamEngine(lambda: AdaptiveHull(R))
    with pytest.raises(ValueError):
        AsyncHullService(engine, tick_interval=1.0, clock=lambda: 0.0)
    timed = StreamEngine(
        lambda: AdaptiveHull(R), window=WindowConfig(horizon=1.0)
    )
    with pytest.raises(ValueError):
        AsyncHullService(timed, tick_interval=1.0)


def test_aclose_drains_inline_when_drain_task_died():
    """Python 3.10's asyncio.run cancels *every* task on Ctrl-C, drain
    worker included; aclose must then apply the accepted batches
    inline (a bare queue.join() would hang with no consumer) and
    resolve waiting sync producers."""

    async def run():
        engine = StreamEngine(lambda: AdaptiveHull(R))
        service = AsyncHullService(engine, queue_size=8)
        await service.start()
        service._drain_task.cancel()
        try:
            await service._drain_task
        except asyncio.CancelledError:
            pass
        await service.ingest_arrays(["a"], [[1.0, 1.0]])
        sync_task = asyncio.ensure_future(
            service.ingest_arrays(["b"], [[2.0, 2.0]], sync=True)
        )
        await asyncio.sleep(0)  # let the sync put land
        await service.aclose()
        assert await sync_task == 1  # applied inline, future resolved
        assert engine.stats().points_ingested == 2

    asyncio.run(run())


def test_graceful_close_drains_and_snapshots(tmp_path):
    path = tmp_path / "final.json"

    async def run():
        keys, pts, _ = workload()
        engine = StreamEngine(lambda: AdaptiveHull(R))
        service = AsyncHullService(engine, own_engine=True)
        await service.start()
        for s in range(0, N, BATCH):
            await service.ingest_arrays(keys[s : s + BATCH], pts[s : s + BATCH])
        # No flush: aclose must drain the queue itself.
        await service.aclose(final_snapshot=path)
        assert engine.stats().points_ingested == N
        with pytest.raises(RuntimeError):
            await service.ingest_arrays(keys[:1], pts[:1])
        return {k: engine.hull(k) for k in engine.keys()}

    hulls = asyncio.run(run())
    with StreamEngine.restore(path, lambda: AdaptiveHull(R)) as restored:
        assert {k: restored.hull(k) for k in restored.keys()} == hulls


def test_on_result_attributes_success_and_rejection():
    """The fire-and-forget attribution hook fires on the loop with None
    on success and the rejection exception on failure — the channel the
    gateway uses to charge drain-time errors to the right tenant."""

    async def run():
        engine = StreamEngine(
            lambda: AdaptiveHull(R), window=WindowConfig(horizon=100.0)
        )
        async with AsyncHullService(engine) as service:
            results = []
            ok = await service.ingest_arrays(
                ["k"], [(1.0, 1.0)], ts=[20.0],
                on_result=results.append,
            )
            assert ok == 1
            await service.flush()
            assert results == [None]
            # A stale batch: accepted at enqueue, rejected at drain.
            await service.ingest_arrays(
                ["k"], [(2.0, 2.0)], ts=[10.0],
                on_result=results.append,
            )
            await service.flush()
            assert len(results) == 2
            assert isinstance(results[1], ValueError)
            # Empty batches resolve immediately.
            await service.ingest_arrays(
                [], np.empty((0, 2)), on_result=results.append
            )
            assert results[2] is None

    asyncio.run(run())


def test_on_result_composes_with_sync():
    async def run():
        engine = StreamEngine(
            lambda: AdaptiveHull(R), window=WindowConfig(horizon=100.0)
        )
        async with AsyncHullService(engine) as service:
            seen = []
            await service.ingest_arrays(
                ["k"], [(1.0, 1.0)], ts=[5.0],
                sync=True, on_result=seen.append,
            )
            with pytest.raises(ValueError):
                await service.ingest_arrays(
                    ["k"], [(1.0, 1.0)], ts=[1.0],
                    sync=True, on_result=seen.append,
                )
            assert seen[0] is None and isinstance(seen[1], ValueError)

    asyncio.run(run())


def test_subscribe_key_filter_scopes_delivery():
    """key_filter drops foreign keys engine-side; a notification that
    filters to the empty set is never delivered at all."""

    async def run():
        engine = StreamEngine(lambda: AdaptiveHull(R))
        async with AsyncHullService(engine) as service:
            sub = await service.subscribe(
                key_filter=lambda k: str(k).startswith("mine:")
            )
            await service.ingest(
                [("theirs:a", 1.0, 1.0)], sync=True
            )
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(sub.get(), 0.2)
            await service.ingest(
                [("mine:a", 1.0, 1.0), ("theirs:b", 2.0, 2.0)],
                sync=True,
            )
            assert await asyncio.wait_for(sub.get(), 5.0) == {"mine:a"}
            await sub.cancel()

    asyncio.run(run())

"""NDJSON TCP server + client: round-trip parity, push, errors.

The acceptance property, over the wire: a stream ingested through the
client/server loop yields bit-identical per-key and global results to
the same stream fed synchronously into the underlying engine (JSON
round-trips IEEE doubles exactly).
"""

import asyncio
import json

import numpy as np
import pytest

from repro.core import AdaptiveHull
from repro.engine import StreamEngine
from repro.serve import (
    AsyncHullClient,
    AsyncHullService,
    HullServer,
    RemoteEngineError,
)
from repro.shard import ShardedEngine, SummarySpec
from repro.streams import drifting_clusters_stream
from repro.window import WindowConfig

R = 8
N = 600
BATCH = 120
KEYS = [f"tcp-{i}" for i in range(4)]


def workload():
    pts = drifting_clusters_stream(N, n_clusters=2, drift=0.1, seed=5)
    keys = [KEYS[i % len(KEYS)] for i in range(N)]
    ts = np.arange(N, dtype=np.float64) / 80.0
    return keys, pts, ts


def records(timed):
    keys, pts, ts = workload()
    for s in range(0, N, BATCH):
        yield [
            (
                [k, float(p[0]), float(p[1]), float(t)]
                if timed
                else [k, float(p[0]), float(p[1])]
            )
            for k, p, t in zip(
                keys[s : s + BATCH], pts[s : s + BATCH], ts[s : s + BATCH]
            )
        ]


def sync_reference(engine_factory, timed):
    with engine_factory() as engine:
        for batch in records(timed):
            engine.ingest([tuple(rec) for rec in batch])
        return {
            "keys": sorted(engine.keys()),
            "per_key": {k: engine.hull(k) for k in engine.keys()},
            "merged": engine.merged_hull(),
            "diameter": engine.diameter(),
            "width": engine.width(),
        }


async def tcp_results(engine_factory):
    engine = engine_factory()
    async with AsyncHullService(engine, own_engine=True) as service:
        async with HullServer(service) as server:
            client = await AsyncHullClient.connect(port=server.port)
            try:
                timed = engine.window is not None and engine.window.timed
                for batch in records(timed):
                    await client.ingest(batch)
                await client.flush()
                return {
                    "keys": sorted(await client.keys()),
                    "per_key": {
                        k: await client.hull(k) for k in await client.keys()
                    },
                    "merged": await client.merged_hull(),
                    "diameter": await client.diameter(),
                    "width": await client.width(),
                }
            finally:
                await client.aclose()


@pytest.mark.parametrize(
    "tier,mode",
    [
        ("stream", "none"),
        ("stream", "count"),
        ("stream", "timed"),
        ("sharded", "timed"),
    ],
)
def test_tcp_round_trip_parity(tier, mode):
    window = {
        "none": None,
        "count": WindowConfig(last_n=150),
        "timed": WindowConfig(horizon=3.0),
    }[mode]

    def factory():
        if tier == "stream":
            return StreamEngine(lambda: AdaptiveHull(R), window=window)
        return ShardedEngine(
            SummarySpec("AdaptiveHull", {"r": R}), shards=2, window=window
        )

    timed = window is not None and window.timed
    expected = sync_reference(factory, timed)
    got = asyncio.run(tcp_results(factory))
    assert got == expected  # bit-identical through JSON/TCP


def test_subscribe_push_and_unsubscribe_over_tcp():
    async def run():
        engine = StreamEngine(lambda: AdaptiveHull(R))
        async with AsyncHullService(engine) as service:
            async with HullServer(service) as server:
                client = await AsyncHullClient.connect(port=server.port)
                try:
                    sub = await client.subscribe(keys=["a"])
                    await client.ingest([["b", 1.0, 1.0]], sync=True)
                    await client.ingest([["a", 2.0, 2.0]], sync=True)
                    touched = await asyncio.wait_for(sub.get(), 5)
                    assert touched == {"a"}
                    await sub.cancel()
                    await client.ingest([["a", 3.0, 3.0]], sync=True)
                    assert sub._queue.empty()
                finally:
                    await client.aclose()

    asyncio.run(run())


def test_resubscribe_replaces_key_filter():
    """A second subscribe op on the same connection replaces the old
    filter (regression: it was silently ignored)."""

    async def run():
        engine = StreamEngine(lambda: AdaptiveHull(R))
        async with AsyncHullService(engine) as service:
            async with HullServer(service) as server:
                client = await AsyncHullClient.connect(port=server.port)
                try:
                    sub = await client.subscribe(keys=["a"])
                    # Raw re-subscribe with a different filter; events
                    # keep landing in the client-side queue.
                    await client._request({"op": "subscribe", "keys": ["b"]})
                    await client.ingest([["a", 1.0, 1.0]], sync=True)
                    await client.ingest([["b", 2.0, 2.0]], sync=True)
                    touched = await asyncio.wait_for(sub.get(), 5)
                    assert touched == {"b"}  # new filter is active
                finally:
                    await client.aclose()

    asyncio.run(run())


def test_oversize_line_drops_connection_cleanly():
    from repro.serve.server import MAX_LINE

    async def run():
        engine = StreamEngine(lambda: AdaptiveHull(R))
        async with AsyncHullService(engine) as service:
            async with HullServer(service) as server:
                reader, writer = await asyncio.open_connection(
                    port=server.port
                )
                writer.write(b"x" * (MAX_LINE + 64) + b"\n")
                await writer.drain()
                # The server drops the broken framing without crashing;
                # the socket reaches EOF instead of hanging.
                assert await asyncio.wait_for(reader.read(), 10) == b""
                writer.close()
                await writer.wait_closed()
                # And the listener still accepts fresh connections.
                client = await AsyncHullClient.connect(port=server.port)
                try:
                    assert (await client.ping())["engine"] == "StreamEngine"
                finally:
                    await client.aclose()

    asyncio.run(run())


def test_remote_errors_and_bad_lines():
    async def run():
        engine = StreamEngine(
            lambda: AdaptiveHull(R), window=WindowConfig(horizon=5.0)
        )
        async with AsyncHullService(engine) as service:
            async with HullServer(service) as server:
                client = await AsyncHullClient.connect(port=server.port)
                try:
                    with pytest.raises(RemoteEngineError, match="unknown op"):
                        await client._request({"op": "nonsense"})
                    with pytest.raises(RemoteEngineError, match="unknown query"):
                        await client._query("nonsense")
                    # Producer-side validation travels back as an error.
                    with pytest.raises(RemoteEngineError, match="coercible"):
                        await client.ingest([["a", "oops", 0.0]])
                    # Engine-level rejection surfaces on sync ingest.
                    await client.ingest([["a", 1.0, 1.0, 9.0]], sync=True)
                    with pytest.raises(
                        RemoteEngineError, match="non-decreasing"
                    ):
                        await client.ingest([["a", 2.0, 2.0, 1.0]], sync=True)
                    # The connection survives all of it.
                    assert (await client.ping())["engine"] == "StreamEngine"
                finally:
                    await client.aclose()
                # A malformed JSON line gets an error reply, not a hangup.
                reader, writer = await asyncio.open_connection(
                    port=server.port
                )
                writer.write(b"this is not json\n")
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert reply["ok"] is False
                writer.write(b'{"op": "ping", "id": 1}\n')
                await writer.drain()
                assert json.loads(await reader.readline())["ok"] is True
                writer.close()
                await writer.wait_closed()

    asyncio.run(run())


def test_snapshot_over_tcp_restores_identically(tmp_path):
    async def run():
        engine = StreamEngine(lambda: AdaptiveHull(R))
        async with AsyncHullService(engine) as service:
            async with HullServer(service) as server:
                client = await AsyncHullClient.connect(port=server.port)
                try:
                    for batch in records(False):
                        await client.ingest(batch)
                    await client.flush()
                    state = await client.snapshot_state()
                    server_path = await client.snapshot(
                        tmp_path / "remote.json"
                    )
                    hulls = {k: engine.hull(k) for k in engine.keys()}
                    return state, server_path, hulls
                finally:
                    await client.aclose()

    state, server_path, hulls = asyncio.run(run())
    with StreamEngine.from_snapshot_state(
        state, lambda: AdaptiveHull(R)
    ) as restored:
        assert {k: restored.hull(k) for k in restored.keys()} == hulls
    with StreamEngine.restore(server_path, lambda: AdaptiveHull(R)) as disk:
        assert {k: disk.hull(k) for k in disk.keys()} == hulls

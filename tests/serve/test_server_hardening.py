"""HullServer hardening: connection backlog cap + subscriber cap.

An over-cap connection is turned away before it reaches the service
(one error line, then close — or a reset if the client races the
close); slots free up when connections end.  An over-cap ``subscribe``
fails as a normal per-request error and the connection stays usable;
unsubscribing frees the slot.
"""

import asyncio

import pytest

from repro.core import AdaptiveHull
from repro.engine import StreamEngine
from repro.serve import (
    AsyncHullClient,
    AsyncHullService,
    HullServer,
    RemoteEngineError,
)

R = 8


def _engine():
    return StreamEngine(lambda: AdaptiveHull(R))


def test_cap_validation():
    service = AsyncHullService(_engine())
    with pytest.raises(ValueError):
        HullServer(service, max_connections=0)
    with pytest.raises(ValueError):
        HullServer(service, max_subscribers=0)


def test_max_connections_refuses_then_recovers():
    async def run():
        async with AsyncHullService(_engine(), own_engine=True) as service:
            async with HullServer(service, max_connections=1) as server:
                c1 = await AsyncHullClient.connect(port=server.port)
                try:
                    await c1.ping()
                    assert server.connection_count == 1
                    # Second connection: refused before any request is
                    # served (error line, reset, or closed stream —
                    # whichever end of the race the client sees).
                    c2 = await AsyncHullClient.connect(port=server.port)
                    try:
                        with pytest.raises(
                            (RemoteEngineError, ConnectionError, OSError)
                        ):
                            await asyncio.wait_for(c2.ping(), 5)
                    finally:
                        await c2.aclose()
                    assert server.refused_connections == 1
                finally:
                    await c1.aclose()
                # The slot is free again once the first client left.
                for _ in range(50):
                    if server.connection_count == 0:
                        break
                    await asyncio.sleep(0.02)
                c3 = await AsyncHullClient.connect(port=server.port)
                try:
                    await asyncio.wait_for(c3.ping(), 5)
                finally:
                    await c3.aclose()

    asyncio.run(run())


def test_max_subscribers_cap_and_release():
    async def run():
        async with AsyncHullService(_engine(), own_engine=True) as service:
            async with HullServer(service, max_subscribers=1) as server:
                c1 = await AsyncHullClient.connect(port=server.port)
                c2 = await AsyncHullClient.connect(port=server.port)
                try:
                    sub = await c1.subscribe()
                    with pytest.raises(
                        RemoteEngineError, match="max_subscribers"
                    ):
                        await c2.subscribe()
                    # The refused connection stays fully usable.
                    await c2.ingest([("k", 1.0, 2.0)], sync=True)
                    assert await c2.hull("k") == [(1.0, 2.0)]
                    # The capped subscription still streams events.
                    touched = await asyncio.wait_for(sub.get(), 5)
                    assert touched == {"k"}
                    # Re-subscribing on the *same* connection replaces
                    # the filter — it must not hit the cap.
                    await c1.subscribe(keys=["k"])
                    # Unsubscribe frees the slot for the other client.
                    await sub.cancel()
                    for _ in range(50):
                        if not service._subscribers:
                            break
                        await asyncio.sleep(0.02)
                    await c2.subscribe()
                finally:
                    await c1.aclose()
                    await c2.aclose()

    asyncio.run(run())

"""Unit and property tests for convex hulls (static and online)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import OnlineHull, convex_hull, contains_point, is_convex_ccw

coords = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
).map(lambda x: round(x, 2))  # quantised: avoids 1e-14 tolerance-boundary ties
points = st.tuples(coords, coords)
point_lists = st.lists(points, min_size=0, max_size=40)


class TestStaticHullBasics:
    def test_empty(self):
        assert convex_hull([]) == []

    def test_single_point(self):
        assert convex_hull([(1.0, 2.0)]) == [(1.0, 2.0)]

    def test_duplicate_points_collapse(self):
        assert convex_hull([(1.0, 2.0)] * 5) == [(1.0, 2.0)]

    def test_two_points(self):
        h = convex_hull([(0.0, 0.0), (1.0, 1.0)])
        assert len(h) == 2

    def test_collinear_returns_extremes(self):
        h = convex_hull([(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)])
        assert h == [(0.0, 0.0), (3.0, 3.0)]

    def test_square_with_interior_point(self, unit_square):
        h = convex_hull(unit_square + [(0.5, 0.5)])
        assert set(h) == set(unit_square)

    def test_square_with_edge_midpoints_dropped(self, unit_square):
        mids = [(0.5, 0.0), (1.0, 0.5), (0.5, 1.0), (0.0, 0.5)]
        h = convex_hull(unit_square + mids)
        assert set(h) == set(unit_square)

    def test_ccw_orientation(self, unit_square):
        h = convex_hull(unit_square)
        assert is_convex_ccw(h)

    def test_starts_at_lexicographic_min(self):
        h = convex_hull([(2.0, 2.0), (0.0, 0.0), (2.0, 0.0), (0.0, 2.0)])
        assert h[0] == (0.0, 0.0)


class TestStaticHullProperties:
    @settings(max_examples=80)
    @given(point_lists)
    def test_hull_is_convex_ccw_or_degenerate(self, pts):
        h = convex_hull(pts)
        if len(h) >= 3:
            assert is_convex_ccw(h)

    @settings(max_examples=80)
    @given(point_lists)
    def test_hull_vertices_are_input_points(self, pts):
        h = convex_hull(pts)
        assert set(h) <= set(pts)

    @settings(max_examples=80)
    @given(point_lists)
    def test_all_points_inside_hull(self, pts):
        h = convex_hull(pts)
        if len(h) < 3:
            return
        for p in pts:
            assert contains_point(h, p, tol=1e-7)

    @settings(max_examples=80)
    @given(point_lists)
    def test_idempotent(self, pts):
        h = convex_hull(pts)
        assert convex_hull(h) == sorted_cycle(h)

    @settings(max_examples=50)
    @given(point_lists, st.integers(min_value=0, max_value=1000))
    def test_order_invariance(self, pts, seed):
        shuffled = list(pts)
        random.Random(seed).shuffle(shuffled)
        assert set(convex_hull(pts)) == set(convex_hull(shuffled))


def sorted_cycle(poly):
    """Rotate a polygon so it starts at the lexicographic minimum (the
    static hull's normal form); degenerate inputs are returned as is."""
    if len(poly) < 3:
        return sorted(poly)
    i = poly.index(min(poly))
    return poly[i:] + poly[:i]


class TestOnlineHull:
    def test_empty(self):
        oh = OnlineHull()
        assert oh.vertices() == []
        assert oh.size == 0

    def test_single_insert(self):
        oh = OnlineHull()
        assert oh.insert((1.0, 1.0))
        assert oh.vertices() == [(1.0, 1.0)]

    def test_duplicate_insert_no_change(self):
        oh = OnlineHull([(1.0, 1.0)])
        assert not oh.insert((1.0, 1.0))

    def test_interior_point_no_change(self, unit_square):
        oh = OnlineHull(unit_square)
        assert not oh.insert((0.5, 0.5))
        assert set(oh.vertices()) == set(unit_square)

    def test_exterior_point_changes(self, unit_square):
        oh = OnlineHull(unit_square)
        assert oh.insert((3.0, 0.5))
        assert (3.0, 0.5) in oh.vertices()

    def test_contains(self, unit_square):
        oh = OnlineHull(unit_square)
        assert oh.contains((0.5, 0.5))
        assert oh.contains((0.0, 0.0))
        assert not oh.contains((2.0, 2.0))

    def test_points_seen_counter(self):
        oh = OnlineHull()
        for i in range(10):
            oh.insert((float(i % 3), float(i % 2)))
        assert oh.points_seen == 10

    @settings(max_examples=60)
    @given(point_lists)
    def test_matches_static_hull(self, pts):
        oh = OnlineHull()
        for p in pts:
            oh.insert(p)
        assert set(oh.vertices()) == set(convex_hull(pts))

    @settings(max_examples=40)
    @given(point_lists, st.integers(min_value=0, max_value=99))
    def test_insertion_order_irrelevant(self, pts, seed):
        a = OnlineHull(pts)
        shuffled = list(pts)
        random.Random(seed).shuffle(shuffled)
        b = OnlineHull(shuffled)
        assert set(a.vertices()) == set(b.vertices())

    def test_large_random_agrees_with_static(self, small_disk_points):
        oh = OnlineHull(small_disk_points)
        assert oh.vertices() == convex_hull(small_disk_points)

    def test_convex_position_keeps_everything(self):
        # Points on a circle: every one is a hull vertex.
        pts = [
            (math.cos(2 * math.pi * k / 17), math.sin(2 * math.pi * k / 17))
            for k in range(17)
        ]
        oh = OnlineHull(pts)
        assert oh.size == 17
